//! # staged-db — a Staged Database System
//!
//! A from-scratch Rust reproduction of *"A Case for Staged Database
//! Systems"* (Harizopoulos & Ailamaki, CIDR 2003): a relational DBMS whose
//! software is decomposed into self-contained **stages** connected by
//! queues, with packets carrying each query's state through
//! connect → parse → optimize → execute → disconnect, and a staged
//! page-push execution engine (fscan / iscan / sort / join / aggregate /
//! send) with shared scans.
//!
//! This umbrella crate re-exports the workspace members; see README.md for
//! the quickstart and DESIGN.md / EXPERIMENTS.md for the reproduction
//! details.
//!
//! ```
//! use staged_db::server::{StagedServer, ServerConfig};
//! use staged_db::storage::{BufferPool, Catalog, MemDisk};
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256)));
//! let server = StagedServer::new(catalog, ServerConfig::default());
//! server.execute_sql("CREATE TABLE kv (k INT, v VARCHAR(16))").unwrap();
//! server.execute_sql("INSERT INTO kv VALUES (1, 'one')").unwrap();
//! let out = server.execute_sql("SELECT v FROM kv WHERE k = 1").unwrap();
//! assert_eq!(out.rows.len(), 1);
//! server.shutdown();
//! ```

/// The staging runtime (stages, queues, packets, policies, autotuning).
pub use staged_core as core;

/// Software cache models and Table-1 reference classification.
pub use staged_cachesim as cachesim;

/// Discrete-event simulators for the paper's experiments.
pub use staged_sim as sim;

/// Storage manager (pages, buffer pool, heap files, B+tree, WAL, catalog).
pub use staged_storage as storage;

/// SQL front end (lexer, parser, binder, rewriter).
pub use staged_sql as sql;

/// Query optimizer (cost model, join ordering, physical plans).
pub use staged_planner as planner;

/// Execution engines (Volcano baseline and staged page-push).
pub use staged_engine as engine;

/// The assembled servers (staged pipeline and thread-pool baseline).
pub use staged_server as server;

/// The text wire protocol (framing, commands, error codes) — PROTOCOL.md.
pub use staged_wire as wire;

/// TCP client library for the wire protocol (and the `dbsh` shell).
pub use staged_dbclient as dbclient;

/// Wisconsin-style workload generators.
pub use staged_workload as workload;
