//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the rand 0.8 API surface the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, `rngs::StdRng`, `gen::<f64>()`,
//! `gen_range(..)` over integer ranges and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which is
//! all the simulators require (no test depends on rand's exact streams).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `[0, span)` via Lemire's widening-multiply method (bias < 2^-64).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + sample_span(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let x = rng.gen_range(0..4u32);
            seen[x as usize] = true;
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0..=0usize);
            assert_eq!(z, 0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
