//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the subset `benches/micro.rs` uses — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — as a simple wall-clock
//! timer: each benchmark is warmed up briefly, then timed over a fixed
//! number of batches and reported as mean ns/iter on stdout. No statistics,
//! plots, or CLI; enough for `cargo bench` to run and stay honest.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters_per_batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters_per_batch: u64) -> Self {
        Self { iters_per_batch, samples: Vec::new() }
    }

    /// Time `routine` over repeated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SAMPLES {
            let mut total = Duration::ZERO;
            for _ in 0..self.iters_per_batch {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            self.samples.push(total);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let iters = self.iters_per_batch.max(1) * self.samples.len() as u64;
        let total: Duration = self.samples.iter().sum();
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        println!("{name:<40} {mean_ns:>14.1} ns/iter ({iters} iters)");
    }
}

const SAMPLES: usize = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower/raise the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.as_ref()), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: run once with a single iteration to size batches so one
    // sample lands near ~5ms (keeps total runtime bounded for slow benches).
    let mut probe = Bencher::new(1);
    let start = Instant::now();
    f(&mut probe);
    let elapsed = start.elapsed().max(Duration::from_nanos(1));
    let per_iter = elapsed.as_nanos() as u64 / (SAMPLES as u64).max(1);
    let target_ns = 5_000_000u64;
    let iters = (target_ns / per_iter.max(1)).clamp(1, 100_000 * sample_size as u64);
    let mut b = Bencher::new(iters);
    f(&mut b);
    b.report(name);
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut n = 0u32;
        g.bench_function("count", |b| {
            n += 1;
            b.iter_batched(|| 3u32, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(n >= 1);
    }
}
