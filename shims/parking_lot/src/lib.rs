//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds on machines with no access to crates.io, so the
//! handful of external crates the sources use are provided as minimal
//! std-backed shims (see `shims/README.md`). This one covers the subset of
//! `parking_lot` the workspace uses: [`Mutex`], [`RwLock`] and [`Condvar`]
//! with parking_lot's panic-on-poison-free signatures (`lock()` returns the
//! guard directly). Poisoned std locks are recovered with `into_inner`,
//! matching parking_lot's behaviour of not propagating poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can move
/// the underlying std guard out and back in around the blocking wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on a [`MutexGuard`] in place, like
/// parking_lot's (std's consumes and returns the guard instead).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard taken during condvar wait");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard taken during condvar wait");
        let (g, res) = self.0.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }
}
