//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Generate-only property testing: strategies produce random values from a
//! deterministic [`rand::rngs::StdRng`], the `proptest!` macro runs each
//! test body over `ProptestConfig::cases` generated cases, and the
//! `prop_assert*` macros are plain panicking asserts. There is **no
//! shrinking** — a failing case reports the panic directly. The supported
//! strategy combinators are the ones this workspace's tests use: integer /
//! float ranges, `any::<T>()`, `Just`, `prop_map`, `prop_oneof!`, tuples,
//! `prop::collection::vec`, and character-class string patterns like
//! `"[a-z][a-z0-9_]{0,8}"`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values (the shim collapses proptest's value-tree
/// model to direct generation; no shrinking).
pub trait Strategy {
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String patterns: a sequence of character classes, each optionally
/// followed by a `{lo,hi}` repetition (the subset of regex syntax the
/// workspace's tests use, e.g. `"[a-z][a-z0-9_]{0,8}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parse a pattern into (character set, min repeats, max repeats) atoms.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut atoms = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                for d in it.by_ref() {
                    match d {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range like a-z: peek handled on next iteration
                            // by storing a marker; emit below.
                            class.push('\u{0}'); // range marker
                        }
                        d => {
                            if class.last() == Some(&'\u{0}') {
                                class.pop();
                                let lo = prev.expect("range start");
                                class.pop();
                                for ch in lo..=d {
                                    class.push(ch);
                                }
                                prev = None;
                            } else {
                                class.push(d);
                                prev = Some(d);
                            }
                        }
                    }
                }
                class
            }
            lit => vec![lit],
        };
        let (lo, hi) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&d| d != '}').collect();
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition min"),
                    b.trim().parse().expect("bad repetition max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((chars, lo, hi));
    }
    atoms
}

macro_rules! strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct OneOf<V>(pub Vec<Box<dyn Strategy<Value = V>>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Vec of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prop` (the crate root) for `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop imports, like the real crate's prelude.

    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Deterministic per-test RNG, seeded from an FNV-1a hash of the test name
/// (used by the `proptest!` expansion; public so the macro can reach it).
#[doc(hidden)]
pub fn test_rng(name: &str) -> StdRng {
    let seed =
        name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
    StdRng::seed_from_u64(seed)
}

/// Run named property tests over generated cases.
///
/// Supports an optional leading `#![proptest_config(..)]`, then any number
/// of `fn name(binding in strategy, ...) { body }` items with attributes
/// (including `#[test]`, which passes through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Panic unless the condition holds (no shrinking, so a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Panic unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniformly choose one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![
            $(Box::new($s) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_ident_like() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn pattern_class_with_space() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vec_respects_len_range() {
        let strat = collection::vec(any::<u8>(), 2..5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0i64..100, pair in (0u16..4, -5i64..5)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((-5..5).contains(&pair.1));
        }
    }
}
