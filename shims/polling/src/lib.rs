//! Offline shim standing in for a readiness-polling crate: a thin, safe
//! wrapper over the classic `poll(2)` system call, written against raw
//! file descriptors so it needs neither `libc` nor `mio` (this workspace
//! builds with no network access; see `shims/README.md`).
//!
//! The API is the smallest surface an event loop needs:
//!
//! - [`PollFd`] pairs a raw fd with the *interest* you register
//!   ([`Interest::READ`], [`Interest::WRITE`], or both).
//! - [`poll`] blocks up to a timeout and fills in each entry's revents;
//!   afterwards [`PollFd::readable`], [`PollFd::writable`] and
//!   [`PollFd::hangup`] report what the kernel saw.
//! - [`raise_nofile_limit`] bumps `RLIMIT_NOFILE` to its hard cap, so the
//!   connection-scale tests can open thousands of sockets on boxes whose
//!   soft default is 1024.
//!
//! Only Unix is supported for real; on other targets [`poll`] returns an
//! error so callers can degrade gracefully (none of this repo's CI targets
//! hit that path).

#![deny(missing_docs)]

use std::io;

/// What to watch a descriptor for. Combine with [`Interest::and`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(i16);

impl Interest {
    /// Wake when the descriptor is readable (`POLLIN`).
    pub const READ: Interest = Interest(POLLIN);
    /// Wake when the descriptor is writable (`POLLOUT`).
    pub const WRITE: Interest = Interest(POLLOUT);
    /// Watch for nothing actively; errors and hangups are always reported.
    pub const NONE: Interest = Interest(0);

    /// Union of two interests.
    #[must_use]
    pub fn and(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// One registered descriptor: the fd, the interest, and (after a
/// [`poll`] call) the readiness the kernel reported.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Register `fd` with the given interest.
    pub fn new(fd: i32, interest: Interest) -> PollFd {
        PollFd { fd, events: interest.0, revents: 0 }
    }

    /// The raw descriptor this entry watches.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// True if the last [`poll`] reported the fd readable (or in an
    /// error/hangup state, which a read will surface as EOF/error —
    /// exactly what a read-driven loop wants).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True if the last [`poll`] reported the fd writable.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True if the peer hung up or the fd is in an error state.
    pub fn hangup(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True if any readiness at all was reported.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: PollFd is #[repr(C)] with the exact pollfd layout
        // (int fd; short events; short revents) and the slice length is
        // passed as nfds, so the kernel writes only within bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    const RLIMIT_NOFILE: i32 = 7; // Linux; macOS uses 8 but CI targets Linux.

    pub fn raise_nofile_impl() -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: plain C struct out-parameter of the documented shape.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur < lim.max {
            let want = RLimit { cur: lim.max, max: lim.max };
            // SAFETY: raising the soft limit to the hard limit is always
            // permitted for an unprivileged process.
            if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
                return Err(io::Error::last_os_error());
            }
            return Ok(lim.max);
        }
        Ok(lim.cur)
    }
}

/// Block until at least one registered fd is ready or `timeout_ms`
/// elapses (`0` = return immediately, negative = wait forever). Returns
/// the number of entries with any readiness set; inspect each
/// [`PollFd`]'s accessors afterwards. `EINTR` is swallowed and reported
/// as zero ready fds so callers can simply loop.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    #[cfg(unix)]
    {
        sys::poll_impl(fds, timeout_ms)
    }
    #[cfg(not(unix))]
    {
        let _ = (fds, timeout_ms);
        Err(io::Error::new(io::ErrorKind::Unsupported, "polling shim requires unix"))
    }
}

/// Raise the process `RLIMIT_NOFILE` soft limit to its hard cap and
/// return the resulting limit. Used by the connection-scale tests and
/// benches, which open a few thousand loopback sockets.
pub fn raise_nofile_limit() -> io::Result<u64> {
    #[cfg(unix)]
    {
        sys::raise_nofile_impl()
    }
    #[cfg(not(unix))]
    {
        Err(io::Error::new(io::ErrorKind::Unsupported, "polling shim requires unix"))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn timeout_returns_zero_when_nothing_is_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), Interest::READ)];
        let n = poll(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn data_arrival_reports_readable_and_eof_reports_hangup_or_read() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();

        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(served.as_raw_fd(), Interest::READ)];
        let n = poll(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 1);

        drop(client);
        let mut fds = [PollFd::new(served.as_raw_fd(), Interest::READ)];
        poll(&mut fds, 1000).unwrap();
        // EOF shows up as readable (read returns 0) and usually as hangup.
        assert!(fds[0].readable());
        assert_eq!(served.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn connected_socket_is_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(client.as_raw_fd(), Interest::WRITE)];
        let n = poll(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn nofile_limit_is_raised_to_the_hard_cap() {
        let lim = raise_nofile_limit().unwrap();
        assert!(lim >= 1024);
        // Idempotent: a second call reports the same (now-raised) limit.
        assert_eq!(raise_nofile_limit().unwrap(), lim);
    }
}
