//! Offline stand-in for the `bytes` crate (see `shims/README.md`).
//!
//! Provides the [`Buf`] / [`BufMut`] extension traits for `&[u8]` cursors
//! and `Vec<u8>` sinks — the little-endian accessors the storage crate's
//! tuple/value codecs use. Reads panic on underflow, matching `bytes`.

/// Reading side: a cursor over bytes that advances as values are taken.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out the next `n` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Writing side: an append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        buf.put_slice(b"ab");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        let mut s = [0u8; 2];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"ab");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        r.get_u16_le();
    }
}
