//! Offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! The workspace only uses `#[derive(serde::Serialize)]` as a marker on
//! metrics/stats structs — nothing actually serializes them yet. The shim
//! therefore ships a marker [`Serialize`] trait with a blanket impl and a
//! no-op derive macro, so the derives compile and a future PR can swap in
//! the real serde without touching the sources.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

// Re-export the derive macro under the same path as the real crate, so
// `#[derive(serde::Serialize)]` resolves (macro and trait namespaces are
// distinct, so both names coexist).
pub use serde_derive::Serialize;
