//! MPMC channels: `bounded` / `unbounded`, cloneable [`Sender`] and
//! [`Receiver`], blocking `send`/`recv` with back-pressure, timeouts, and
//! disconnection when the last handle on either side drops.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Sending on a channel with no remaining receivers returns the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Why a `try_send` delivered nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the value is handed back.
    Full(T),
    /// All receivers are gone; the value is handed back.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Receiving from an empty channel with no remaining senders fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Why a `try_recv` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel is empty but senders remain.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

/// Why a `recv_timeout` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with senders still connected.
    Timeout,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

/// Callback fired after a message is delivered (or the channel
/// disconnects): lets a poll(2)-style event loop sleep on file
/// descriptors yet wake instantly when a channel it watches becomes
/// ready. Real crossbeam solves this with `Select`; the shim exposes
/// this narrower hook instead.
pub type WakeHook = Arc<dyn Fn() + Send + Sync>;

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    wake: Option<WakeHook>,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers once every clone is dropped.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a channel. Cloneable (MPMC); the channel
/// disconnects for senders once every clone is dropped.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Channel that holds at most `cap` in-flight messages; `send` blocks while
/// full (back-pressure).
///
/// Unlike real crossbeam, `cap == 0` (rendezvous hand-off) is not supported
/// by this shim and panics rather than silently buffering.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported by the offline shim");
    new_channel(Some(cap))
}

/// Channel with no capacity bound; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1, wake: None }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Sender<T> {
    /// Deliver `value`, blocking while a bounded channel is at capacity.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.lock();
        if let Some(cap) = self.0.capacity {
            while inner.queue.len() >= cap && inner.receivers > 0 {
                inner = self.0.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
        }
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        let wake = inner.wake.clone();
        drop(inner);
        self.0.not_empty.notify_one();
        if let Some(wake) = wake {
            wake();
        }
        Ok(())
    }

    /// Deliver `value` without blocking: a bounded channel at capacity
    /// hands the value back as [`TrySendError::Full`] instead of waiting
    /// for space.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.0.capacity {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        inner.queue.push_back(value);
        let wake = inner.wake.clone();
        drop(inner);
        self.0.not_empty.notify_one();
        if let Some(wake) = wake {
            wake();
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.lock();
        inner.senders -= 1;
        if inner.senders == 0 {
            let wake = inner.wake.clone();
            drop(inner);
            self.0.not_empty.notify_all();
            // Disconnection is a readiness event too: a watcher must learn
            // that `recv` would now fail rather than sleep through it.
            if let Some(wake) = wake {
                wake();
            }
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking until one arrives or every sender is
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Take the next message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.lock();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Take the next message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.0.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, res) = self
                .0
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = g;
            if res.timed_out() && inner.queue.is_empty() {
                return Err(if inner.senders == 0 {
                    RecvTimeoutError::Disconnected
                } else {
                    RecvTimeoutError::Timeout
                });
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    /// True when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages; ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Attach a [`WakeHook`] fired after every delivery on this channel
    /// (and on sender-side disconnection). One hook per channel; a second
    /// call replaces the first. The hook runs on the **sender's** thread,
    /// outside the channel lock — keep it as cheap as a pipe write.
    pub fn set_wake_hook(&self, hook: WakeHook) {
        self.0.lock().wake = Some(hook);
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.lock();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.0.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Borrowing iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning iterator: ends when the channel disconnects.
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).is_ok());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn mpmc_clones_share_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn wake_hook_fires_on_send_and_disconnect() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (tx, rx) = unbounded();
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        rx.set_wake_hook(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        drop(tx);
        assert_eq!(fired.load(Ordering::SeqCst), 3, "disconnect must wake too");
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn iter_drains_then_ends() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
