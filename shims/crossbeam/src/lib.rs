//! Offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Provides `crossbeam::channel` — multi-producer **multi-consumer**
//! channels with the crossbeam API shape (`bounded`, `unbounded`, cloneable
//! `Sender`/`Receiver`, disconnect-on-last-drop). Implemented from scratch on
//! `std::sync` because std's mpsc receiver is not cloneable.

pub mod channel;
