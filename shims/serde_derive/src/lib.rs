//! No-op `Serialize` derive for the offline serde shim: the trait it would
//! implement has a blanket impl in `shims/serde`, so the macro emits nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
