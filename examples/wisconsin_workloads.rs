//! The paper's Workload A / Workload B scenario (§3.1.1) on the real
//! engine: the staged server and the thread-pool baseline run the same
//! Wisconsin-style query streams.
//!
//! ```sh
//! cargo run --release --example wisconsin_workloads
//! ```

use staged_db::planner::PlannerConfig;
use staged_db::server::{ServerConfig, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use staged_db::workload::{
    drive_staged, drive_threaded, load_wisconsin_table, WorkloadA, WorkloadB,
};
use std::sync::Arc;

fn fresh_catalog() -> Arc<Catalog> {
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 4096)));
    load_wisconsin_table(&cat, "wisc1", 10_000, 1).unwrap();
    load_wisconsin_table(&cat, "wisc2", 10_000, 2).unwrap();
    cat
}

fn main() {
    let queries = 200;
    let clients = 8;

    println!("Workload A: short selections/aggregations ({queries} queries, {clients} clients)");
    let threaded = ThreadedServer::new(fresh_catalog(), 8, PlannerConfig::default());
    let mut wa = WorkloadA::new("wisc1", 10_000, 7);
    let t = drive_threaded(&threaded, || wa.next_query(), queries, clients);
    threaded.shutdown();
    println!("  thread-pool baseline: {:>7.1} q/s", queries as f64 / t);

    let staged = StagedServer::new(fresh_catalog(), ServerConfig::default());
    let mut wa = WorkloadA::new("wisc1", 10_000, 7);
    let t = drive_staged(&staged, || wa.next_query(), queries, clients);
    println!("  staged server:        {:>7.1} q/s", queries as f64 / t);
    staged.shutdown();

    let join_queries = 40;
    println!("\nWorkload B: join queries ({join_queries} queries, {clients} clients)");
    let threaded = ThreadedServer::new(fresh_catalog(), 8, PlannerConfig::default());
    let mut wb = WorkloadB::new("wisc1", "wisc2", 7);
    let t = drive_threaded(&threaded, || wb.next_query(), join_queries, clients);
    threaded.shutdown();
    println!("  thread-pool baseline: {:>7.1} q/s", join_queries as f64 / t);

    let staged = StagedServer::new(fresh_catalog(), ServerConfig::default());
    let mut wb = WorkloadB::new("wisc1", "wisc2", 7);
    let t = drive_staged(&staged, || wb.next_query(), join_queries, clients);
    println!("  staged server:        {:>7.1} q/s", join_queries as f64 / t);

    println!("\nExecution-engine stage activity during workload B on the staged server:");
    for s in staged.engine_stats() {
        if s.processed > 0 {
            println!("  {:<7} task-quanta processed: {}", s.name, s.processed);
        }
    }
    staged.shutdown();
}
