//! Quickstart: spin up the staged DBMS, run SQL, inspect the stages.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use staged_db::server::{ServerConfig, StagedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use std::sync::Arc;

fn main() {
    // A catalog over an in-memory disk with a 256-frame buffer pool.
    let catalog = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256)));
    let server = StagedServer::new(catalog, ServerConfig::default());

    for sql in [
        "CREATE TABLE employee (id INT, name VARCHAR(32), dept INT, salary FLOAT)",
        "CREATE TABLE dept (id INT, dname VARCHAR(32))",
        "INSERT INTO dept VALUES (1, 'engineering'), (2, 'marketing')",
        "INSERT INTO employee VALUES \
           (1, 'ada', 1, 120.5), (2, 'grace', 1, 130.0), \
           (3, 'edsger', 1, 125.0), (4, 'don', 2, 110.0)",
        "CREATE INDEX emp_id ON employee (id)",
        "ANALYZE employee",
    ] {
        let out = server.execute_sql(sql).expect(sql);
        println!("> {sql}\n  {}", out.message);
    }

    println!("\n> join + aggregate through all five stages:");
    let out = server
        .execute_sql(
            "SELECT dept.dname, COUNT(*), AVG(employee.salary) \
             FROM employee, dept WHERE employee.dept = dept.id \
             GROUP BY dept.dname ORDER BY dept.dname",
        )
        .unwrap();
    for row in &out.rows {
        println!("  {row}");
    }

    println!("\n> EXPLAIN shows the optimizer's physical plan:");
    let out = server.execute_sql("EXPLAIN SELECT name FROM employee WHERE id = 2").unwrap();
    for row in &out.rows {
        println!("  {row}");
    }

    // Prepared statements route connect → execute, skipping parse/optimize.
    server
        .prepare("top_paid", "SELECT name, salary FROM employee ORDER BY salary DESC LIMIT 2")
        .unwrap();
    let out = server.execute_prepared("top_paid").recv().unwrap().unwrap();
    println!(
        "\n> prepared fast-path result: {:?}",
        out.rows.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );

    println!("\nPer-stage monitoring (paper §5.2 — every stage self-reports):");
    for s in server.stage_stats() {
        println!(
            "  {:<11} processed={:<5} errors={} max-queue={}",
            s.name, s.processed, s.errors, s.queue.max_depth
        );
    }
    server.shutdown();
}
