//! Run-time multi-query optimization (paper §5.4): concurrent queries over
//! the same table share one circular scan.
//!
//! ```sh
//! cargo run --release --example shared_scans
//! ```

use staged_db::engine::context::ExecContext;
use staged_db::engine::staged::{EngineConfig, StagedEngine};
use staged_db::planner::{plan_select, PlannerConfig};
use staged_db::sql::binder::{BindContext, Binder};
use staged_db::sql::parser::parse_statement;
use staged_db::sql::Statement;
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use staged_db::workload::load_wisconsin_table;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A pool far smaller than the table plus a 50 µs/page disk: scans are
    // genuinely I/O-bound.
    let disk = MemDisk::new().with_latency(Duration::from_micros(50));
    let catalog = Arc::new(Catalog::new(BufferPool::new(Arc::new(disk), 64)));
    load_wisconsin_table(&catalog, "big", 30_000, 3).unwrap();

    let engine = StagedEngine::new(
        ExecContext::new(Arc::clone(&catalog)),
        EngineConfig { workers_per_stage: 2, ..Default::default() },
    );
    let plan_for = |sql: &str| {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let bound = Binder::new(BindContext::new(&catalog)).bind_select(sel).unwrap();
        plan_select(&bound, &catalog, &PlannerConfig::default()).unwrap()
    };

    // Six aggregation queries arrive staggered; each needs a full scan of
    // `big`, but the fscan stage convoys them onto one circular scan.
    let reads_before = catalog.pool().disk().stats().reads;
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let h = engine.execute(&plan_for(&format!(
                "SELECT COUNT(*), MIN(unique2) FROM big WHERE twenty = {i}"
            )));
            std::thread::sleep(Duration::from_millis(15));
            h
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let rows = h.collect().unwrap();
        println!("query {i}: {}", rows[0]);
    }
    let reads = catalog.pool().disk().stats().reads - reads_before;
    let convoys = engine.registry.stats.groups_started.load(std::sync::atomic::Ordering::Relaxed);
    let attaches = engine.registry.stats.attaches.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "\n6 full scans of a {}-page table cost {reads} physical page reads \
         ({convoys} convoy(s), {attaches} late attach(es)).",
        catalog.table("big").unwrap().heap.num_pages()
    );
    println!("Without sharing this would be ≈ 6× the table's page count.");
    engine.shutdown();
}
