//! The scheduling trade-off of paper §4.2 in miniature: compare the five
//! policies on the production-line model at a few module-load fractions.
//!
//! ```sh
//! cargo run --release --example scheduling_policies
//! ```

use staged_db::core::policy::Policy;
use staged_db::sim::prodline::figure5_sweep;

fn main() {
    let fractions = [0.0, 0.1, 0.3, 0.6];
    let series = figure5_sweep(&fractions, &Policy::figure5_set(), 7, 300.0);
    println!("mean response time (s) at 95% load — miniature Figure 5");
    print!("{:>14}", "policy");
    for f in fractions {
        print!(" {:>9}", format!("l={:.0}%", f * 100.0));
    }
    println!();
    for s in &series {
        print!("{:>14}", s.policy);
        for (_, rt) in &s.points {
            if *rt > 99.0 {
                print!(" {:>9}", ">99");
            } else {
                print!(" {rt:>9.3}");
            }
        }
        println!();
    }
    println!(
        "\nThe staged policies batch queries per module and pay each module's cache\n\
         load once per batch; PS re-fetches it on almost every quantum. See\n\
         `cargo run -p staged-bench --bin repro_fig5 --release` for the full figure."
    );
}
