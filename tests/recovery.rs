//! Failure injection and WAL-based redo recovery.

use staged_db::engine::context::ExecContext;
use staged_db::engine::dml;
use staged_db::storage::wal::{LogRecord, Wal};
use staged_db::storage::{
    BufferPool, Catalog, Column, DataType, MemDisk, Schema, StorageError, Tuple, Value,
};
use std::sync::Arc;

fn setup() -> (ExecContext, Arc<staged_db::storage::catalog::TableInfo>, Wal) {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
    let catalog = Arc::new(Catalog::new(pool));
    let t = catalog
        .create_table(
            "t",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
        )
        .unwrap();
    (ExecContext::new(catalog), t, Wal::new(Arc::new(MemDisk::new())))
}

#[test]
fn redo_replay_rebuilds_table_contents() {
    let (ctx, t, wal) = setup();
    let rows: Vec<Tuple> =
        (0..50).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * i)])).collect();
    dml::insert_rows(&ctx, &t, rows, Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    let id_col = staged_db::sql::Expr::Column(staged_db::sql::ast::ColumnRef {
        table: None,
        name: "id".into(),
        index: Some(0),
    });
    dml::delete_rows(
        &ctx,
        &t,
        &Some(staged_db::sql::Expr::binary(
            id_col,
            staged_db::sql::ast::BinOp::Lt,
            staged_db::sql::Expr::int(10),
        )),
        Some(&dml::DmlLog::wal_only(&wal, 1)),
    )
    .unwrap();
    wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

    // "Crash": replay the log into a fresh table and compare.
    let pool2 = BufferPool::new(Arc::new(MemDisk::new()), 256);
    let catalog2 = Arc::new(Catalog::new(pool2));
    let t2 = catalog2
        .create_table(
            "t",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
        )
        .unwrap();
    let mut rid_map = std::collections::HashMap::new();
    for rec in wal.read_all().unwrap() {
        match rec {
            LogRecord::Insert { rid, bytes, .. } => {
                let tuple = Tuple::decode(&bytes).unwrap();
                let new_rid = t2.heap.insert(&tuple).unwrap();
                rid_map.insert(rid, new_rid);
            }
            LogRecord::Delete { rid, .. } => {
                let new_rid = rid_map.remove(&rid).expect("delete of logged insert");
                t2.heap.delete(new_rid).unwrap();
            }
            _ => {}
        }
    }
    let survivors: Vec<i64> =
        t2.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
    assert_eq!(survivors.len(), 40);
    assert!(survivors.iter().all(|&i| i >= 10));
    // Matches the live table.
    assert_eq!(t.heap.count().unwrap(), 40);
}

#[test]
fn redo_rebuilds_partitioned_table_and_indexes_byte_for_byte() {
    let parts = 4usize;
    let mk_catalog = || {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 512);
        let catalog = Arc::new(Catalog::new(pool));
        catalog
            .create_table_partitioned(
                "p",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
                parts,
                0,
            )
            .unwrap();
        catalog.create_index("p_id", "p", "id").unwrap();
        ExecContext::new(catalog)
    };
    let ctx = mk_catalog();
    let t = ctx.catalog.table("p").unwrap();
    let wal = Wal::new(Arc::new(MemDisk::new()));
    let rows: Vec<Tuple> =
        (0..200).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 3)])).collect();
    dml::insert_rows(&ctx, &t, rows, Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    // Mixed workload: a ranged delete and a keyed update, all WAL-logged.
    let id_col = staged_db::sql::Expr::Column(staged_db::sql::ast::ColumnRef {
        table: None,
        name: "id".into(),
        index: Some(0),
    });
    let lt = |n| {
        Some(staged_db::sql::Expr::binary(
            id_col.clone(),
            staged_db::sql::ast::BinOp::Lt,
            staged_db::sql::Expr::int(n),
        ))
    };
    dml::delete_rows(&ctx, &t, &lt(30), Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    let eq_77 = Some(staged_db::sql::Expr::binary(
        id_col.clone(),
        staged_db::sql::ast::BinOp::Eq,
        staged_db::sql::Expr::int(77),
    ));
    // Key 77 → 501: the row must hop to partition hash(501).
    dml::update_rows(
        &ctx,
        &t,
        &[(0, staged_db::sql::Expr::int(501))],
        &eq_77,
        Some(&dml::DmlLog::wal_only(&wal, 1)),
    )
    .unwrap();
    wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

    // "Crash": fresh catalog of the same shape, then WAL redo.
    let ctx2 = mk_catalog();
    let applied = dml::redo(&ctx2, &wal).unwrap();
    assert!(applied >= 200, "redo applied only {applied} records");
    let t2 = ctx2.catalog.table("p").unwrap();

    // Byte-for-byte per partition: identical sorted encodings.
    assert_eq!(t2.heap.partitions(), parts);
    for p in 0..parts {
        let enc = |heap: &staged_db::storage::PartitionedHeap| {
            let mut v: Vec<Vec<u8>> =
                heap.scan_partition(p).map(|r| r.unwrap().1.encode()).collect();
            v.sort();
            v
        };
        assert_eq!(enc(&t.heap), enc(&t2.heap), "partition {p} differs after redo");
    }
    // Per-partition index entries came back too: every surviving key is in
    // exactly the partition its row hashed to, in both catalogs.
    let ix = ctx2.catalog.index_on(t2.id, 0).unwrap();
    let live: Vec<i64> = (30..200).filter(|k| *k != 77).chain([501]).collect();
    for k in live {
        let p = staged_db::storage::partition_of_value(&Value::Int(k), parts);
        assert_eq!(ix.btree_for(p).search(k).unwrap().len(), 1, "key {k}");
        for q in (0..parts).filter(|q| *q != p) {
            assert!(ix.btree_for(q).search(k).unwrap().is_empty(), "key {k} leaked");
        }
    }
    assert!(ix.search(12).unwrap().is_empty(), "deleted key resurrected");
    assert!(ix.search(77).unwrap().is_empty(), "pre-update key resurrected");
    assert_eq!(t2.heap.count().unwrap(), 170);
}

/// A crash landing between `Begin` and `Commit` must erase the in-flight
/// transaction: redo replays only transactions with a durable commit
/// record, at every partition count.
#[test]
fn crash_between_begin_and_commit_replays_only_committed_txns() {
    for parts in [1usize, 2, 4] {
        let mk_catalog = || {
            let pool = BufferPool::new(Arc::new(MemDisk::new()), 512);
            let catalog = Arc::new(Catalog::new(pool));
            catalog
                .create_table_partitioned(
                    "p",
                    Schema::new(vec![
                        Column::new("id", DataType::Int),
                        Column::new("v", DataType::Int),
                    ]),
                    parts,
                    0,
                )
                .unwrap();
            catalog.create_index("p_id", "p", "id").unwrap();
            ExecContext::new(catalog)
        };
        let ctx = mk_catalog();
        let t = ctx.catalog.table("p").unwrap();
        let wal = Wal::new(Arc::new(MemDisk::new()));

        // Transaction 1 commits 100 rows.
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        let rows: Vec<Tuple> =
            (0..100).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i)])).collect();
        dml::insert_rows(&ctx, &t, rows, Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

        // Transaction 2 inserts new rows AND deletes committed ones — then
        // the "crash" happens before its commit record.
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        let more: Vec<Tuple> =
            (1000..1020).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0)])).collect();
        let log2 = dml::DmlLog::wal_only(&wal, 2);
        dml::insert_rows(&ctx, &t, more, Some(&log2)).unwrap();
        let id_col = staged_db::sql::Expr::Column(staged_db::sql::ast::ColumnRef {
            table: None,
            name: "id".into(),
            index: Some(0),
        });
        let lt_10 = Some(staged_db::sql::Expr::binary(
            id_col,
            staged_db::sql::ast::BinOp::Lt,
            staged_db::sql::Expr::int(10),
        ));
        dml::delete_rows(&ctx, &t, &lt_10, Some(&log2)).unwrap();
        wal.flush().unwrap(); // records are durable, the commit is not

        // Transaction 3 aborted explicitly; equally invisible to redo.
        wal.append(&LogRecord::Begin { xid: 3 }).unwrap();
        let aborted: Vec<Tuple> =
            (2000..2005).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0)])).collect();
        dml::insert_rows(&ctx, &t, aborted, Some(&dml::DmlLog::wal_only(&wal, 3))).unwrap();
        wal.append(&LogRecord::Abort { xid: 3 }).unwrap();
        wal.flush().unwrap();

        let ctx2 = mk_catalog();
        let applied = dml::redo(&ctx2, &wal).unwrap();
        assert_eq!(applied, 100, "{parts} partitions: exactly txn 1's inserts replay");
        let t2 = ctx2.catalog.table("p").unwrap();
        assert_eq!(t2.heap.count().unwrap(), 100, "{parts} partitions");
        let ids: std::collections::HashSet<i64> =
            t2.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, (0..100).collect(), "{parts} partitions: uncommitted writes leaked");
        // The uncommitted delete of rows 0..10 must not have replayed, and
        // their index entries must be intact in the partition they hash to.
        let ix = ctx2.catalog.index_on(t2.id, 0).unwrap();
        for k in 0..10 {
            assert_eq!(ix.search(k).unwrap().len(), 1, "{parts} partitions: key {k}");
        }
        assert!(ix.search(1000).unwrap().is_empty());
        assert!(ix.search(2000).unwrap().is_empty());
    }
}

#[test]
fn disk_full_surfaces_cleanly_mid_insert() {
    let pool = BufferPool::new(Arc::new(MemDisk::new().with_capacity(3)), 8);
    let catalog = Arc::new(Catalog::new(pool));
    let t = catalog.create_table("t", Schema::new(vec![Column::new("x", DataType::Str)])).unwrap();
    let big_row = Tuple::new(vec![Value::Str("y".repeat(4000))]);
    let mut inserted = 0;
    let err = loop {
        match t.heap.insert(&big_row) {
            Ok(_) => inserted += 1,
            Err(e) => break e,
        }
    };
    assert_eq!(err, StorageError::DiskFull);
    assert!(inserted >= 3, "three pages × ~2 rows fit before the disk fills");
    // Existing data remains readable.
    assert_eq!(t.heap.count().unwrap(), inserted);
}

#[test]
fn torn_page_is_reported_as_corruption() {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 8);
    let catalog = Arc::new(Catalog::new(Arc::clone(&pool)));
    let t = catalog.create_table("t", Schema::new(vec![Column::new("x", DataType::Int)])).unwrap();
    let rid = t.heap.insert(&Tuple::new(vec![Value::Int(1)])).unwrap();
    // Corrupt the record bytes in place (simulated torn write): the slot
    // now points at garbage that fails tuple decoding.
    let guard = pool.fetch(rid.page).unwrap();
    guard.write(|d| {
        for b in d[8100..].iter_mut() {
            *b = 0xFF;
        }
    });
    drop(guard);
    match t.heap.get(rid) {
        Err(StorageError::Corrupt(_)) => {}
        other => panic!("expected corruption error, got {other:?}"),
    }
}
