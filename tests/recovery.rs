//! Failure injection and WAL-based redo recovery.

use staged_db::engine::context::ExecContext;
use staged_db::engine::dml;
use staged_db::storage::wal::{LogRecord, Wal};
use staged_db::storage::{
    BufferPool, Catalog, Column, DataType, MemDisk, Schema, StorageError, Tuple, Value,
};
use std::sync::Arc;

fn setup() -> (ExecContext, Arc<staged_db::storage::catalog::TableInfo>, Wal) {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
    let catalog = Arc::new(Catalog::new(pool));
    let t = catalog
        .create_table(
            "t",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
        )
        .unwrap();
    (ExecContext::new(catalog), t, Wal::in_memory())
}

#[test]
fn redo_replay_rebuilds_table_contents() {
    let (ctx, t, wal) = setup();
    let rows: Vec<Tuple> =
        (0..50).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * i)])).collect();
    dml::insert_rows(&ctx, &t, rows, Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    let id_col = staged_db::sql::Expr::Column(staged_db::sql::ast::ColumnRef {
        table: None,
        name: "id".into(),
        index: Some(0),
    });
    dml::delete_rows(
        &ctx,
        &t,
        &Some(staged_db::sql::Expr::binary(
            id_col,
            staged_db::sql::ast::BinOp::Lt,
            staged_db::sql::Expr::int(10),
        )),
        Some(&dml::DmlLog::wal_only(&wal, 1)),
    )
    .unwrap();
    wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

    // "Crash": replay the log into a fresh table and compare.
    let pool2 = BufferPool::new(Arc::new(MemDisk::new()), 256);
    let catalog2 = Arc::new(Catalog::new(pool2));
    let t2 = catalog2
        .create_table(
            "t",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
        )
        .unwrap();
    let mut rid_map = std::collections::HashMap::new();
    for (_, rec) in wal.read_all().unwrap() {
        match rec {
            LogRecord::Insert { rid, bytes, .. } => {
                let tuple = Tuple::decode(&bytes).unwrap();
                let new_rid = t2.heap.insert(&tuple).unwrap();
                rid_map.insert(rid, new_rid);
            }
            LogRecord::Delete { rid, .. } => {
                let new_rid = rid_map.remove(&rid).expect("delete of logged insert");
                t2.heap.delete(new_rid).unwrap();
            }
            _ => {}
        }
    }
    let survivors: Vec<i64> =
        t2.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
    assert_eq!(survivors.len(), 40);
    assert!(survivors.iter().all(|&i| i >= 10));
    // Matches the live table.
    assert_eq!(t.heap.count().unwrap(), 40);
}

#[test]
fn redo_rebuilds_partitioned_table_and_indexes_byte_for_byte() {
    let parts = 4usize;
    let mk_catalog = || {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 512);
        let catalog = Arc::new(Catalog::new(pool));
        catalog
            .create_table_partitioned(
                "p",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
                parts,
                0,
            )
            .unwrap();
        catalog.create_index("p_id", "p", "id").unwrap();
        ExecContext::new(catalog)
    };
    let ctx = mk_catalog();
    let t = ctx.catalog.table("p").unwrap();
    let wal = Wal::in_memory();
    let rows: Vec<Tuple> =
        (0..200).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 3)])).collect();
    dml::insert_rows(&ctx, &t, rows, Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    // Mixed workload: a ranged delete and a keyed update, all WAL-logged.
    let id_col = staged_db::sql::Expr::Column(staged_db::sql::ast::ColumnRef {
        table: None,
        name: "id".into(),
        index: Some(0),
    });
    let lt = |n| {
        Some(staged_db::sql::Expr::binary(
            id_col.clone(),
            staged_db::sql::ast::BinOp::Lt,
            staged_db::sql::Expr::int(n),
        ))
    };
    dml::delete_rows(&ctx, &t, &lt(30), Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    let eq_77 = Some(staged_db::sql::Expr::binary(
        id_col.clone(),
        staged_db::sql::ast::BinOp::Eq,
        staged_db::sql::Expr::int(77),
    ));
    // Key 77 → 501: the row must hop to partition hash(501).
    dml::update_rows(
        &ctx,
        &t,
        &[(0, staged_db::sql::Expr::int(501))],
        &eq_77,
        Some(&dml::DmlLog::wal_only(&wal, 1)),
    )
    .unwrap();
    wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

    // "Crash": fresh catalog of the same shape, then WAL redo.
    let ctx2 = mk_catalog();
    let applied = dml::redo(&ctx2, &wal).unwrap();
    assert!(applied >= 200, "redo applied only {applied} records");
    let t2 = ctx2.catalog.table("p").unwrap();

    // Byte-for-byte per partition: identical sorted encodings.
    assert_eq!(t2.heap.partitions(), parts);
    for p in 0..parts {
        let enc = |heap: &staged_db::storage::PartitionedHeap| {
            let mut v: Vec<Vec<u8>> =
                heap.scan_partition(p).map(|r| r.unwrap().1.encode()).collect();
            v.sort();
            v
        };
        assert_eq!(enc(&t.heap), enc(&t2.heap), "partition {p} differs after redo");
    }
    // Per-partition index entries came back too: every surviving key is in
    // exactly the partition its row hashed to, in both catalogs.
    let ix = ctx2.catalog.index_on(t2.id, 0).unwrap();
    let live: Vec<i64> = (30..200).filter(|k| *k != 77).chain([501]).collect();
    for k in live {
        let p = staged_db::storage::partition_of_value(&Value::Int(k), parts);
        assert_eq!(ix.btree_for(p).search(k).unwrap().len(), 1, "key {k}");
        for q in (0..parts).filter(|q| *q != p) {
            assert!(ix.btree_for(q).search(k).unwrap().is_empty(), "key {k} leaked");
        }
    }
    assert!(ix.search(12).unwrap().is_empty(), "deleted key resurrected");
    assert!(ix.search(77).unwrap().is_empty(), "pre-update key resurrected");
    assert_eq!(t2.heap.count().unwrap(), 170);
}

/// A crash landing between `Begin` and `Commit` must erase the in-flight
/// transaction: redo replays only transactions with a durable commit
/// record, at every partition count.
#[test]
fn crash_between_begin_and_commit_replays_only_committed_txns() {
    for parts in [1usize, 2, 4] {
        let mk_catalog = || {
            let pool = BufferPool::new(Arc::new(MemDisk::new()), 512);
            let catalog = Arc::new(Catalog::new(pool));
            catalog
                .create_table_partitioned(
                    "p",
                    Schema::new(vec![
                        Column::new("id", DataType::Int),
                        Column::new("v", DataType::Int),
                    ]),
                    parts,
                    0,
                )
                .unwrap();
            catalog.create_index("p_id", "p", "id").unwrap();
            ExecContext::new(catalog)
        };
        let ctx = mk_catalog();
        let t = ctx.catalog.table("p").unwrap();
        let wal = Wal::in_memory();

        // Transaction 1 commits 100 rows.
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        let rows: Vec<Tuple> =
            (0..100).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i)])).collect();
        dml::insert_rows(&ctx, &t, rows, Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

        // Transaction 2 inserts new rows AND deletes committed ones — then
        // the "crash" happens before its commit record.
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        let more: Vec<Tuple> =
            (1000..1020).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0)])).collect();
        let log2 = dml::DmlLog::wal_only(&wal, 2);
        dml::insert_rows(&ctx, &t, more, Some(&log2)).unwrap();
        let id_col = staged_db::sql::Expr::Column(staged_db::sql::ast::ColumnRef {
            table: None,
            name: "id".into(),
            index: Some(0),
        });
        let lt_10 = Some(staged_db::sql::Expr::binary(
            id_col,
            staged_db::sql::ast::BinOp::Lt,
            staged_db::sql::Expr::int(10),
        ));
        dml::delete_rows(&ctx, &t, &lt_10, Some(&log2)).unwrap();
        wal.flush().unwrap(); // records are durable, the commit is not

        // Transaction 3 aborted explicitly; equally invisible to redo.
        wal.append(&LogRecord::Begin { xid: 3 }).unwrap();
        let aborted: Vec<Tuple> =
            (2000..2005).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0)])).collect();
        dml::insert_rows(&ctx, &t, aborted, Some(&dml::DmlLog::wal_only(&wal, 3))).unwrap();
        wal.append(&LogRecord::Abort { xid: 3 }).unwrap();
        wal.flush().unwrap();

        let ctx2 = mk_catalog();
        let applied = dml::redo(&ctx2, &wal).unwrap();
        assert_eq!(applied, 100, "{parts} partitions: exactly txn 1's inserts replay");
        let t2 = ctx2.catalog.table("p").unwrap();
        assert_eq!(t2.heap.count().unwrap(), 100, "{parts} partitions");
        let ids: std::collections::HashSet<i64> =
            t2.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, (0..100).collect(), "{parts} partitions: uncommitted writes leaked");
        // The uncommitted delete of rows 0..10 must not have replayed, and
        // their index entries must be intact in the partition they hash to.
        let ix = ctx2.catalog.index_on(t2.id, 0).unwrap();
        for k in 0..10 {
            assert_eq!(ix.search(k).unwrap().len(), 1, "{parts} partitions: key {k}");
        }
        assert!(ix.search(1000).unwrap().is_empty());
        assert!(ix.search(2000).unwrap().is_empty());
    }
}

#[test]
fn disk_full_surfaces_cleanly_mid_insert() {
    let pool = BufferPool::new(Arc::new(MemDisk::new().with_capacity(3)), 8);
    let catalog = Arc::new(Catalog::new(pool));
    let t = catalog.create_table("t", Schema::new(vec![Column::new("x", DataType::Str)])).unwrap();
    let big_row = Tuple::new(vec![Value::Str("y".repeat(4000))]);
    let mut inserted = 0;
    let err = loop {
        match t.heap.insert(&big_row) {
            Ok(_) => inserted += 1,
            Err(e) => break e,
        }
    };
    assert_eq!(err, StorageError::DiskFull);
    assert!(inserted >= 3, "three pages × ~2 rows fit before the disk fills");
    // Existing data remains readable.
    assert_eq!(t.heap.count().unwrap(), inserted);
}

#[test]
fn torn_page_is_reported_as_corruption() {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 8);
    let catalog = Arc::new(Catalog::new(Arc::clone(&pool)));
    let t = catalog.create_table("t", Schema::new(vec![Column::new("x", DataType::Int)])).unwrap();
    let rid = t.heap.insert(&Tuple::new(vec![Value::Int(1)])).unwrap();
    // Corrupt the record bytes in place (simulated torn write): the slot
    // now points at garbage that fails tuple decoding.
    let guard = pool.fetch(rid.page).unwrap();
    guard.write(|d| {
        for b in d[8100..].iter_mut() {
            *b = 0xFF;
        }
    });
    drop(guard);
    match t.heap.get(rid) {
        Err(StorageError::Corrupt(_)) => {}
        other => panic!("expected corruption error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Checkpointed recovery: snapshot + tail replay, crash torture, torn logs
// ---------------------------------------------------------------------------

use staged_db::engine::checkpoint;
use staged_db::storage::{
    DiskManager, MemSegmentStore, MemSnapshotStore, SegmentStore, SnapshotStore,
};

/// A fresh context with the standard partitioned table + index used by the
/// checkpoint tests.
fn part_ctx(parts: usize) -> ExecContext {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 512);
    let catalog = Arc::new(Catalog::new(pool));
    catalog
        .create_table_partitioned(
            "p",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
            parts,
            0,
        )
        .unwrap();
    catalog.create_index("p_id", "p", "id").unwrap();
    ExecContext::new(catalog)
}

/// A bare (table-less) context for recovery paths where the snapshot
/// recreates the DDL.
fn empty_ctx() -> ExecContext {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 512);
    ExecContext::new(Arc::new(Catalog::new(pool)))
}

/// One committed transaction inserting `ids` (id, id * 10) rows.
fn commit_rows(ctx: &ExecContext, wal: &Wal, xid: u64, ids: std::ops::Range<i64>) {
    let t = ctx.catalog.table("p").unwrap();
    wal.append(&LogRecord::Begin { xid }).unwrap();
    let rows: Vec<Tuple> =
        ids.map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 10)])).collect();
    dml::insert_rows(ctx, &t, rows, Some(&dml::DmlLog::wal_only(wal, xid))).unwrap();
    wal.append(&LogRecord::Commit { xid }).unwrap();
}

fn sorted_ids(ctx: &ExecContext) -> Vec<i64> {
    let t = ctx.catalog.table("p").unwrap();
    let mut ids: Vec<i64> = t.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
    ids.sort_unstable();
    ids
}

/// The acceptance test of the checkpoint path: after a checkpoint, the
/// segments below the checkpoint LSN are *gone*, and recovery reads
/// strictly fewer log pages than a full-history replay of the identical
/// workload — proof that it replays only the tail.
#[test]
fn checkpoint_truncates_history_and_recovery_reads_only_the_tail() {
    // Two identical histories: one checkpointed, one not.
    let run = |checkpointed: bool| -> (Arc<MemSegmentStore>, MemSnapshotStore, u64) {
        let segments = Arc::new(MemSegmentStore::new());
        let snapshots = MemSnapshotStore::new();
        let ctx = part_ctx(2);
        // One page per segment: the 400-row history spreads over many
        // segments, so truncation has something to bite on.
        let wal = Wal::open_with_segment_pages(Arc::clone(&segments) as _, 1).unwrap();
        commit_rows(&ctx, &wal, 1, 0..2000);
        let mut deleted = 0;
        if checkpointed {
            let outcome = checkpoint::checkpoint(&ctx.catalog, &wal, &snapshots).unwrap();
            deleted = outcome.segments_deleted;
            // Every segment below the checkpoint LSN is gone from the store.
            let live = segments.list().unwrap();
            assert!(
                live.iter().all(|&id| id >= outcome.lsn.segment),
                "segments below the checkpoint LSN must be deleted, store holds {live:?}"
            );
        }
        commit_rows(&ctx, &wal, 2, 2000..2040);
        wal.flush().unwrap();
        (segments, snapshots, deleted)
    };

    let (cp_segments, cp_snapshots, deleted) = run(true);
    let (full_segments, full_snapshots, _) = run(false);
    assert!(deleted >= 5, "the 2000-row history must span many deleted segments, got {deleted}");

    // Recover both, metering segment-store page reads across recovery only.
    let cp_ctx = empty_ctx(); // snapshot recreates the DDL
    let before = cp_segments.io_stats().reads;
    let (_, cp_report) =
        checkpoint::recover(&cp_ctx, Arc::clone(&cp_segments) as _, &cp_snapshots, 1).unwrap();
    let cp_reads = cp_segments.io_stats().reads - before;

    let full_ctx = part_ctx(2); // no snapshot: recovery needs the DDL in place
    let before = full_segments.io_stats().reads;
    let (_, full_report) =
        checkpoint::recover(&full_ctx, Arc::clone(&full_segments) as _, &full_snapshots, 1)
            .unwrap();
    let full_reads = full_segments.io_stats().reads - before;

    // Same end state either way...
    assert_eq!(sorted_ids(&cp_ctx), (0..2040).collect::<Vec<i64>>());
    assert_eq!(sorted_ids(&full_ctx), (0..2040).collect::<Vec<i64>>());
    assert_eq!(cp_report.snapshot_rows, 2000);
    assert!(cp_report.corruption.is_none());
    assert_eq!(full_report.snapshot_rows, 0);
    // ...but the checkpointed store served strictly fewer log-page reads.
    assert!(
        cp_reads < full_reads,
        "tail replay must read fewer log pages than full history ({cp_reads} vs {full_reads})"
    );
    // And the snapshotted rows are reachable through the restored index.
    let t = cp_ctx.catalog.table("p").unwrap();
    let ix = cp_ctx.catalog.index_on(t.id, 0).unwrap();
    assert_eq!(ix.search(123).unwrap().len(), 1);
}

/// Kill the checkpoint protocol between each pair of steps — after the
/// snapshot is captured but not saved, after it is saved but nothing is
/// truncated, and halfway through truncation — at 1, 2 and 4 partitions.
/// Every crash point must recover the full committed state.
#[test]
fn crash_during_checkpoint_recovers_at_every_step_boundary() {
    for parts in [1usize, 2, 4] {
        // Crash point A: rotated + captured, never saved. The snapshot is
        // lost; the whole log survives and replays.
        {
            let segments = Arc::new(MemSegmentStore::new());
            let snapshots = MemSnapshotStore::new();
            let ctx = part_ctx(parts);
            let wal = Wal::open_with_segment_pages(Arc::clone(&segments) as _, 1).unwrap();
            commit_rows(&ctx, &wal, 1, 0..60);
            let (_lsn, snap) = checkpoint::snapshot_catalog(&ctx.catalog, &wal).unwrap();
            drop(snap); // "crash" before snapshots.save
            commit_rows(&ctx, &wal, 2, 60..80);
            wal.flush().unwrap();
            let ctx2 = part_ctx(parts); // no snapshot -> DDL must pre-exist
            let (_, report) =
                checkpoint::recover(&ctx2, Arc::clone(&segments) as _, &snapshots, 1).unwrap();
            assert!(report.corruption.is_none(), "{parts} partitions, crash A");
            assert_eq!(sorted_ids(&ctx2), (0..80).collect::<Vec<i64>>(), "{parts} parts, A");
        }
        // Crash point B: snapshot saved, nothing truncated. Recovery must
        // anchor at the snapshot and skip the stale segments cleanly.
        {
            let segments = Arc::new(MemSegmentStore::new());
            let snapshots = MemSnapshotStore::new();
            let ctx = part_ctx(parts);
            let wal = Wal::open_with_segment_pages(Arc::clone(&segments) as _, 1).unwrap();
            commit_rows(&ctx, &wal, 1, 0..60);
            let (lsn, snap) = checkpoint::snapshot_catalog(&ctx.catalog, &wal).unwrap();
            snapshots.save(&snap.encode()).unwrap(); // "crash" before truncate
            commit_rows(&ctx, &wal, 2, 60..80);
            wal.flush().unwrap();
            let ctx2 = empty_ctx();
            let (_, report) =
                checkpoint::recover(&ctx2, Arc::clone(&segments) as _, &snapshots, 1).unwrap();
            assert!(report.corruption.is_none(), "{parts} partitions, crash B");
            assert_eq!(report.checkpoint_lsn, lsn, "{parts} partitions, crash B");
            assert_eq!(report.snapshot_rows, 60, "{parts} partitions, crash B");
            assert_eq!(sorted_ids(&ctx2), (0..80).collect::<Vec<i64>>(), "{parts} parts, B");
        }
        // Crash point C: truncation killed halfway. truncate_below deletes
        // oldest-first, so the survivors are a contiguous suffix; recovery
        // skips them regardless.
        {
            let segments = Arc::new(MemSegmentStore::new());
            let snapshots = MemSnapshotStore::new();
            let ctx = part_ctx(parts);
            let wal = Wal::open_with_segment_pages(Arc::clone(&segments) as _, 1).unwrap();
            commit_rows(&ctx, &wal, 1, 0..600);
            let (lsn, snap) = checkpoint::snapshot_catalog(&ctx.catalog, &wal).unwrap();
            snapshots.save(&snap.encode()).unwrap();
            // Partial truncation: only the oldest half of the doomed
            // segments is gone when the "crash" lands.
            let doomed: Vec<u64> =
                segments.list().unwrap().into_iter().filter(|&id| id < lsn.segment).collect();
            assert!(doomed.len() >= 2, "{parts} partitions: need segments to half-delete");
            for &id in &doomed[..doomed.len() / 2] {
                segments.delete(id).unwrap();
            }
            commit_rows(&ctx, &wal, 2, 600..680);
            wal.flush().unwrap();
            let ctx2 = empty_ctx();
            let (_, report) =
                checkpoint::recover(&ctx2, Arc::clone(&segments) as _, &snapshots, 1).unwrap();
            assert!(report.corruption.is_none(), "{parts} partitions, crash C");
            assert_eq!(sorted_ids(&ctx2), (0..680).collect::<Vec<i64>>(), "{parts} parts, C");
        }
    }
}

/// A torn write on the final log page is the end of the log, not an
/// error: recovery applies everything before it and reports no damage.
#[test]
fn torn_tail_page_recovers_the_committed_prefix_silently() {
    let segments = Arc::new(MemSegmentStore::new());
    let snapshots = MemSnapshotStore::new();
    let ctx = part_ctx(2);
    let wal = Wal::open_with_segment_pages(Arc::clone(&segments) as _, 64).unwrap();
    // Six separate committed transactions of 100 rows each: tearing the
    // final page must lose whole *suffix* transactions, never earlier ones.
    for xid in 0..6u64 {
        commit_rows(&ctx, &wal, xid + 1, (xid as i64 * 100)..((xid as i64 + 1) * 100));
    }
    // Tear the last written page of the final segment: flip a byte so its
    // checksum fails, the way a half-written sector looks after a crash.
    let last = *segments.list().unwrap().last().unwrap();
    let disk = segments.disk(last).unwrap();
    let pages = disk.num_pages();
    assert!(pages >= 2, "need a multi-page log, got {pages}");
    let mut page = vec![0u8; staged_db::storage::PAGE_SIZE];
    disk.read_page(staged_db::storage::PageId(pages - 1), &mut page).unwrap();
    page[100] ^= 0xFF;
    disk.write_page(staged_db::storage::PageId(pages - 1), &page).unwrap();

    let ctx2 = part_ctx(2);
    let (wal2, report) =
        checkpoint::recover(&ctx2, Arc::clone(&segments) as _, &snapshots, 64).unwrap();
    assert!(report.corruption.is_none(), "a torn tail is the end of the log, not damage");
    // A whole-transaction prefix survived; the torn page's txns are gone.
    let ids = sorted_ids(&ctx2);
    assert!(!ids.is_empty() && ids.len() < 600, "prefix expected, got {} rows", ids.len());
    assert_eq!(ids.len() % 100, 0, "partial transactions must never replay");
    assert_eq!(ids, (0..ids.len() as i64).collect::<Vec<i64>>());
    // The repaired log accepts new appends after the tear.
    wal2.append(&LogRecord::Commit { xid: 99 }).unwrap();
    assert!(wal2.committed_xids().unwrap().contains(&99));
}

/// Corruption *in front of* valid log pages is damage, never a panic:
/// recovery applies the pre-corruption committed prefix and reports the
/// error in the recovery report.
#[test]
fn corruption_before_valid_pages_is_reported_with_prefix_intact() {
    let segments = Arc::new(MemSegmentStore::new());
    let snapshots = MemSnapshotStore::new();
    let ctx = part_ctx(1);
    let wal = Wal::open_with_segment_pages(Arc::clone(&segments) as _, 64).unwrap();
    commit_rows(&ctx, &wal, 1, 0..500);
    commit_rows(&ctx, &wal, 2, 500..1000);
    wal.flush().unwrap();
    let last = *segments.list().unwrap().last().unwrap();
    let disk = segments.disk(last).unwrap();
    let pages = disk.num_pages();
    assert!(pages >= 3, "need interior pages to corrupt, got {pages}");
    // Corrupt an interior page: valid pages follow it, so this cannot be a
    // torn tail and must be reported.
    let mut page = vec![0u8; staged_db::storage::PAGE_SIZE];
    disk.read_page(staged_db::storage::PageId(1), &mut page).unwrap();
    page[200] ^= 0xFF;
    disk.write_page(staged_db::storage::PageId(1), &page).unwrap();

    let ctx2 = part_ctx(1);
    let (_, report) =
        checkpoint::recover(&ctx2, Arc::clone(&segments) as _, &snapshots, 64).unwrap();
    match report.corruption {
        Some(StorageError::Corrupt(_)) => {}
        other => panic!("expected corruption report, got {other:?}"),
    }
    // Only records from the intact prefix (page 0) applied; nothing panicked.
    let ids = sorted_ids(&ctx2);
    assert!(ids.len() < 1000, "corrupted page's records must not replay");
}

/// A tuple close to the 8 KiB page limit logs as a WAL record *larger*
/// than a page (record header + row bytes); it must round-trip through
/// continuation frames and redo byte-exactly.
#[test]
fn wide_tuple_near_page_size_survives_wal_and_redo() {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 64);
    let catalog = Arc::new(Catalog::new(pool));
    let t = catalog.create_table("w", Schema::new(vec![Column::new("x", DataType::Str)])).unwrap();
    let ctx = ExecContext::new(Arc::clone(&catalog));
    let segments = Arc::new(MemSegmentStore::new());
    let wal = Wal::open(Arc::clone(&segments) as _).unwrap();
    // The heap takes tuples up to PAGE_SIZE - 8; aim just under it so the
    // WAL record (record header + encoded row) exceeds one log page.
    let payload = "y".repeat(8100);
    let wide = Tuple::new(vec![Value::Str(payload.clone())]);
    wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
    dml::insert_rows(&ctx, &t, vec![wide], Some(&dml::DmlLog::wal_only(&wal, 1))).unwrap();
    wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

    let pool2 = BufferPool::new(Arc::new(MemDisk::new()), 64);
    let catalog2 = Arc::new(Catalog::new(pool2));
    catalog2.create_table("w", Schema::new(vec![Column::new("x", DataType::Str)])).unwrap();
    let ctx2 = ExecContext::new(Arc::clone(&catalog2));
    let applied = dml::redo(&ctx2, &wal).unwrap();
    assert_eq!(applied, 1);
    let t2 = catalog2.table("w").unwrap();
    let rows: Vec<Tuple> = t2.heap.scan().map(|r| r.unwrap().1).collect();
    assert_eq!(rows.len(), 1);
    match rows[0].get(0) {
        Value::Str(s) => assert_eq!(s, &payload),
        other => panic!("wrong value {other:?}"),
    }
}
