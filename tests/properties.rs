//! Property-based tests on core invariants (proptest).

use proptest::prelude::*;
use staged_db::core::coop::{CoopConfig, CoopExecutor, Job};
use staged_db::core::policy::Policy;
use staged_db::sql::parser::parse_statement;
use staged_db::storage::btree::BTree;
use staged_db::storage::page::{SlottedPage, PAGE_SIZE};
use staged_db::storage::{
    partition_of_value, BufferPool, MemDisk, PageId, PartitionedHeap, Rid, Tuple, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tuples survive encode → decode for arbitrary value mixes.
    #[test]
    fn tuple_roundtrip(values in prop::collection::vec(arb_value(), 0..12)) {
        let t = Tuple::new(values);
        let decoded = Tuple::decode(&t.encode()).unwrap();
        prop_assert_eq!(t, decoded);
    }

    /// Slotted pages return exactly what was inserted, in slot order, and
    /// never overflow their byte budget.
    #[test]
    fn slotted_page_roundtrip(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..300), 1..40)
    ) {
        let mut page = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut page);
        let mut accepted = Vec::new();
        for r in &records {
            if let Some(slot) = SlottedPage::insert(&mut page, r) {
                accepted.push((slot, r.clone()));
            }
        }
        prop_assert!(!accepted.is_empty());
        for (slot, bytes) in &accepted {
            prop_assert_eq!(SlottedPage::get(&page, PageId(0), *slot).unwrap(), &bytes[..]);
        }
        let live: Vec<(u16, Vec<u8>)> =
            SlottedPage::iter(&page).map(|(s, b)| (s, b.to_vec())).collect();
        prop_assert_eq!(live, accepted);
    }

    /// The page-backed B+tree agrees with a BTreeMap model under random
    /// insert/delete/range workloads.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(
        (any::<bool>(), -200i64..200, 0u16..4), 1..300)
    ) {
        let tree = BTree::create(BufferPool::new(Arc::new(MemDisk::new()), 512)).unwrap();
        // Duplicates are allowed, so the model is a multiset.
        let mut model: BTreeMap<(i64, Rid), usize> = BTreeMap::new();
        for (is_insert, key, slot) in ops {
            let rid = Rid::new(PageId(7), slot);
            if is_insert {
                tree.insert(key, rid).unwrap();
                *model.entry((key, rid)).or_insert(0) += 1;
            } else {
                let present = match model.get_mut(&(key, rid)) {
                    Some(c) => {
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(key, rid));
                        }
                        true
                    }
                    None => false,
                };
                prop_assert_eq!(tree.delete(key, rid).unwrap(), present);
            }
        }
        let got = tree.range(None, None).unwrap();
        let want: Vec<(i64, Rid)> = model
            .iter()
            .flat_map(|((k, r), c)| std::iter::repeat_n((*k, *r), *c))
            .collect();
        prop_assert_eq!(got.len(), want.len());
        // Keys come back sorted; rids per key may be in insertion order, so
        // compare as multisets per key.
        let mut got_sorted = got.clone();
        got_sorted.sort();
        prop_assert_eq!(got_sorted, want);
    }

    /// Partition-parallel storage invariant 1: every inserted row lands in
    /// exactly one partition, and invariant 2: the union of per-partition
    /// scans is exactly the unpartitioned table (same multiset of rows).
    #[test]
    fn partitioned_heap_routes_each_row_to_exactly_one_partition(
        keys in prop::collection::vec(any::<i64>(), 1..150),
        parts in 1usize..9,
    ) {
        let ph = PartitionedHeap::create(
            BufferPool::new(Arc::new(MemDisk::new()), 256), parts, 0);
        let flat = PartitionedHeap::create(
            BufferPool::new(Arc::new(MemDisk::new()), 256), 1, 0);
        for (i, k) in keys.iter().enumerate() {
            let row = Tuple::new(vec![Value::Int(*k), Value::Int(i as i64)]);
            let (p, _) = ph.insert_routed(&row).unwrap();
            prop_assert_eq!(p, partition_of_value(&Value::Int(*k), parts));
            flat.insert(&row).unwrap();
        }
        // Exactly-once: per-partition counts sum to the total, and each
        // row id (the second column, unique per row) shows up once.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for p in 0..parts {
            for item in ph.scan_partition(p) {
                let (_, t) = item.unwrap();
                prop_assert!(seen.insert(t.get(1).as_int().unwrap()),
                    "row emitted by two partitions");
                total += 1;
            }
        }
        prop_assert_eq!(total, keys.len());
        // Union == unpartitioned table, as multisets.
        let mut union: Vec<String> = ph.scan().map(|r| r.unwrap().1.to_string()).collect();
        let mut plain: Vec<String> = flat.scan().map(|r| r.unwrap().1.to_string()).collect();
        union.sort();
        plain.sort();
        prop_assert_eq!(union, plain);
    }

    /// Partition-parallel storage invariant 3: pruning to the hash
    /// partition of a probe key never drops a qualifying row — every row
    /// whose key equals the probe is found in that single partition.
    #[test]
    fn partition_pruning_never_drops_a_qualifying_row(
        keys in prop::collection::vec(-40i64..40, 1..150),
        probe in -40i64..40,
        parts in 1usize..9,
    ) {
        let ph = PartitionedHeap::create(
            BufferPool::new(Arc::new(MemDisk::new()), 256), parts, 0);
        for (i, k) in keys.iter().enumerate() {
            ph.insert(&Tuple::new(vec![Value::Int(*k), Value::Int(i as i64)])).unwrap();
        }
        let expected = keys.iter().filter(|k| **k == probe).count();
        let pruned = partition_of_value(&Value::Int(probe), parts);
        let found = ph
            .scan_partition(pruned)
            .filter(|r| r.as_ref().unwrap().1.get(0).as_int() == Some(probe))
            .count();
        prop_assert_eq!(found, expected, "pruned partition {} lost rows", pruned);
    }

    /// Printing a parsed statement and reparsing it is a fixpoint.
    #[test]
    fn parser_print_reparse_fixpoint(
        cols in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..4),
        lit in -1000i64..1000,
        limit in 1u64..100,
    ) {
        let sql = format!(
            "SELECT {} FROM tbl WHERE {} < {} ORDER BY {} DESC LIMIT {}",
            cols.join(", "), cols[0], lit, cols[0], limit
        );
        if let Ok(stmt) = parse_statement(&sql) {
            let printed = stmt.to_string();
            let reparsed = parse_statement(&printed).unwrap();
            prop_assert_eq!(stmt, reparsed);
        }
    }

    /// The cooperative executor conserves work and completes every job
    /// under every policy.
    #[test]
    fn coop_executor_conserves_work(
        demands in prop::collection::vec((0.001f64..0.1, 0.001f64..0.1), 1..40),
        policy_idx in 0usize..5,
    ) {
        let policy = Policy::figure5_set()[policy_idx];
        let jobs: Vec<Job> = demands
            .iter()
            .enumerate()
            .map(|(i, (a, b))| Job { id: i as u64, arrival: i as f64 * 0.01, demands: vec![*a, *b] })
            .collect();
        let total: f64 = demands.iter().map(|(a, b)| a + b).sum();
        let exec = CoopExecutor::new(CoopConfig::uniform(2, 0.005, policy));
        let report = exec.run(jobs);
        prop_assert_eq!(report.completions.len(), demands.len());
        prop_assert!((report.total_work_time - total).abs() < 1e-6);
        // Response times are at least the job's own demand.
        for c in &report.completions {
            let (a, b) = demands[c.id as usize];
            prop_assert!(c.response() >= a + b - 1e-9);
        }
    }
}

/// Build a WAL of `txns` committed transactions (xid `i+1` inserts row id
/// `i`) in a fresh in-memory segment store and return the store.
fn committed_wal(txns: usize, segment_pages: u64) -> Arc<staged_db::storage::MemSegmentStore> {
    use staged_db::storage::wal::{LogRecord, Wal};
    let store = Arc::new(staged_db::storage::MemSegmentStore::new());
    let wal = Wal::open_with_segment_pages(
        Arc::clone(&store) as Arc<dyn staged_db::storage::SegmentStore>,
        segment_pages,
    )
    .unwrap();
    for i in 0..txns {
        let xid = i as u64 + 1;
        wal.append(&LogRecord::Begin { xid }).unwrap();
        let row = Tuple::new(vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))]);
        wal.append(&LogRecord::Insert {
            xid,
            table: 1,
            rid: Rid::new(PageId(0), i as u16),
            bytes: row.encode(),
        })
        .unwrap();
        wal.append(&LogRecord::Commit { xid }).unwrap();
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash the log at *any byte position*: zero everything from that
    /// offset to the end of the final segment (a crash never mangles
    /// sealed segments that were synced long ago). The tolerant reader
    /// must never panic, never report damage for a clean tear, and the
    /// surviving committed transactions must be exactly a prefix
    /// `{1..=k}` — no holes, no partial transactions, no resurrected
    /// suffix.
    #[test]
    fn wal_tail_truncation_recovers_a_committed_prefix(
        txns in 1usize..40,
        segment_pages in 1u64..4,
        cut in 0usize..200_000,
    ) {
        use staged_db::storage::wal::{LogRecord, Wal};
        use staged_db::storage::{DiskManager, SegmentStore};
        let store = committed_wal(txns, segment_pages);
        // Zero-truncate the final segment from byte `cut` (clamped to its
        // written size) to its end.
        let last = *store.list().unwrap().last().unwrap();
        let disk = store.disk(last).unwrap();
        let pages = disk.num_pages();
        let seg_bytes = pages as usize * staged_db::storage::PAGE_SIZE;
        let cut = cut % (seg_bytes + 1);
        let zeroes = vec![0u8; staged_db::storage::PAGE_SIZE];
        let mut page = vec![0u8; staged_db::storage::PAGE_SIZE];
        for p in 0..pages {
            let start = p as usize * staged_db::storage::PAGE_SIZE;
            let end = start + staged_db::storage::PAGE_SIZE;
            if start >= cut {
                disk.write_page(PageId(p), &zeroes).unwrap();
            } else if end > cut {
                disk.read_page(PageId(p), &mut page).unwrap();
                page[cut - start..].fill(0);
                disk.write_page(PageId(p), &page).unwrap();
            }
        }
        let (records, damage) =
            Wal::read_store(store.as_ref() as &dyn SegmentStore);
        // A tear is silent: truncation only ever zeroes a suffix, which the
        // scanner must treat as end-of-log, not corruption.
        prop_assert!(damage.is_none(), "clean tear reported as damage: {:?}", damage);
        // Committed set is a gapless prefix of {1..=txns}.
        let mut committed: Vec<u64> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { xid } => Some(*xid),
                _ => None,
            })
            .collect();
        committed.sort_unstable();
        let k = committed.len() as u64;
        prop_assert_eq!(&committed[..], &(1..=k).collect::<Vec<u64>>()[..],
            "committed set is not a prefix");
        // Every committed transaction's insert survived in full, in order.
        for (_, rec) in &records {
            if let LogRecord::Insert { xid, bytes, .. } = rec {
                if *xid <= k {
                    let t = Tuple::decode(bytes).unwrap();
                    prop_assert_eq!(t.get(0), &Value::Int(*xid as i64 - 1));
                }
            }
        }
        // And re-opening the torn store repairs it into a writable log.
        let wal = Wal::open_with_segment_pages(
            Arc::clone(&store) as Arc<dyn SegmentStore>, segment_pages).unwrap();
        wal.append(&LogRecord::Commit { xid: 10_000 }).unwrap();
        prop_assert!(wal.committed_xids().unwrap().contains(&10_000));
    }
}
