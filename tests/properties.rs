//! Property-based tests on core invariants (proptest).

use proptest::prelude::*;
use staged_db::core::coop::{CoopConfig, CoopExecutor, Job};
use staged_db::core::policy::Policy;
use staged_db::sql::parser::parse_statement;
use staged_db::storage::btree::BTree;
use staged_db::storage::page::{SlottedPage, PAGE_SIZE};
use staged_db::storage::{
    partition_of_value, BufferPool, MemDisk, PageId, PartitionedHeap, Rid, Tuple, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tuples survive encode → decode for arbitrary value mixes.
    #[test]
    fn tuple_roundtrip(values in prop::collection::vec(arb_value(), 0..12)) {
        let t = Tuple::new(values);
        let decoded = Tuple::decode(&t.encode()).unwrap();
        prop_assert_eq!(t, decoded);
    }

    /// Slotted pages return exactly what was inserted, in slot order, and
    /// never overflow their byte budget.
    #[test]
    fn slotted_page_roundtrip(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..300), 1..40)
    ) {
        let mut page = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut page);
        let mut accepted = Vec::new();
        for r in &records {
            if let Some(slot) = SlottedPage::insert(&mut page, r) {
                accepted.push((slot, r.clone()));
            }
        }
        prop_assert!(!accepted.is_empty());
        for (slot, bytes) in &accepted {
            prop_assert_eq!(SlottedPage::get(&page, PageId(0), *slot).unwrap(), &bytes[..]);
        }
        let live: Vec<(u16, Vec<u8>)> =
            SlottedPage::iter(&page).map(|(s, b)| (s, b.to_vec())).collect();
        prop_assert_eq!(live, accepted);
    }

    /// The page-backed B+tree agrees with a BTreeMap model under random
    /// insert/delete/range workloads.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(
        (any::<bool>(), -200i64..200, 0u16..4), 1..300)
    ) {
        let tree = BTree::create(BufferPool::new(Arc::new(MemDisk::new()), 512)).unwrap();
        // Duplicates are allowed, so the model is a multiset.
        let mut model: BTreeMap<(i64, Rid), usize> = BTreeMap::new();
        for (is_insert, key, slot) in ops {
            let rid = Rid::new(PageId(7), slot);
            if is_insert {
                tree.insert(key, rid).unwrap();
                *model.entry((key, rid)).or_insert(0) += 1;
            } else {
                let present = match model.get_mut(&(key, rid)) {
                    Some(c) => {
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&(key, rid));
                        }
                        true
                    }
                    None => false,
                };
                prop_assert_eq!(tree.delete(key, rid).unwrap(), present);
            }
        }
        let got = tree.range(None, None).unwrap();
        let want: Vec<(i64, Rid)> = model
            .iter()
            .flat_map(|((k, r), c)| std::iter::repeat_n((*k, *r), *c))
            .collect();
        prop_assert_eq!(got.len(), want.len());
        // Keys come back sorted; rids per key may be in insertion order, so
        // compare as multisets per key.
        let mut got_sorted = got.clone();
        got_sorted.sort();
        prop_assert_eq!(got_sorted, want);
    }

    /// Partition-parallel storage invariant 1: every inserted row lands in
    /// exactly one partition, and invariant 2: the union of per-partition
    /// scans is exactly the unpartitioned table (same multiset of rows).
    #[test]
    fn partitioned_heap_routes_each_row_to_exactly_one_partition(
        keys in prop::collection::vec(any::<i64>(), 1..150),
        parts in 1usize..9,
    ) {
        let ph = PartitionedHeap::create(
            BufferPool::new(Arc::new(MemDisk::new()), 256), parts, 0);
        let flat = PartitionedHeap::create(
            BufferPool::new(Arc::new(MemDisk::new()), 256), 1, 0);
        for (i, k) in keys.iter().enumerate() {
            let row = Tuple::new(vec![Value::Int(*k), Value::Int(i as i64)]);
            let (p, _) = ph.insert_routed(&row).unwrap();
            prop_assert_eq!(p, partition_of_value(&Value::Int(*k), parts));
            flat.insert(&row).unwrap();
        }
        // Exactly-once: per-partition counts sum to the total, and each
        // row id (the second column, unique per row) shows up once.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for p in 0..parts {
            for item in ph.scan_partition(p) {
                let (_, t) = item.unwrap();
                prop_assert!(seen.insert(t.get(1).as_int().unwrap()),
                    "row emitted by two partitions");
                total += 1;
            }
        }
        prop_assert_eq!(total, keys.len());
        // Union == unpartitioned table, as multisets.
        let mut union: Vec<String> = ph.scan().map(|r| r.unwrap().1.to_string()).collect();
        let mut plain: Vec<String> = flat.scan().map(|r| r.unwrap().1.to_string()).collect();
        union.sort();
        plain.sort();
        prop_assert_eq!(union, plain);
    }

    /// Partition-parallel storage invariant 3: pruning to the hash
    /// partition of a probe key never drops a qualifying row — every row
    /// whose key equals the probe is found in that single partition.
    #[test]
    fn partition_pruning_never_drops_a_qualifying_row(
        keys in prop::collection::vec(-40i64..40, 1..150),
        probe in -40i64..40,
        parts in 1usize..9,
    ) {
        let ph = PartitionedHeap::create(
            BufferPool::new(Arc::new(MemDisk::new()), 256), parts, 0);
        for (i, k) in keys.iter().enumerate() {
            ph.insert(&Tuple::new(vec![Value::Int(*k), Value::Int(i as i64)])).unwrap();
        }
        let expected = keys.iter().filter(|k| **k == probe).count();
        let pruned = partition_of_value(&Value::Int(probe), parts);
        let found = ph
            .scan_partition(pruned)
            .filter(|r| r.as_ref().unwrap().1.get(0).as_int() == Some(probe))
            .count();
        prop_assert_eq!(found, expected, "pruned partition {} lost rows", pruned);
    }

    /// Printing a parsed statement and reparsing it is a fixpoint.
    #[test]
    fn parser_print_reparse_fixpoint(
        cols in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..4),
        lit in -1000i64..1000,
        limit in 1u64..100,
    ) {
        let sql = format!(
            "SELECT {} FROM tbl WHERE {} < {} ORDER BY {} DESC LIMIT {}",
            cols.join(", "), cols[0], lit, cols[0], limit
        );
        if let Ok(stmt) = parse_statement(&sql) {
            let printed = stmt.to_string();
            let reparsed = parse_statement(&printed).unwrap();
            prop_assert_eq!(stmt, reparsed);
        }
    }

    /// The cooperative executor conserves work and completes every job
    /// under every policy.
    #[test]
    fn coop_executor_conserves_work(
        demands in prop::collection::vec((0.001f64..0.1, 0.001f64..0.1), 1..40),
        policy_idx in 0usize..5,
    ) {
        let policy = Policy::figure5_set()[policy_idx];
        let jobs: Vec<Job> = demands
            .iter()
            .enumerate()
            .map(|(i, (a, b))| Job { id: i as u64, arrival: i as f64 * 0.01, demands: vec![*a, *b] })
            .collect();
        let total: f64 = demands.iter().map(|(a, b)| a + b).sum();
        let exec = CoopExecutor::new(CoopConfig::uniform(2, 0.005, policy));
        let report = exec.run(jobs);
        prop_assert_eq!(report.completions.len(), demands.len());
        prop_assert!((report.total_work_time - total).abs() < 1e-6);
        // Response times are at least the job's own demand.
        for c in &report.completions {
            let (a, b) = demands[c.id as usize];
            prop_assert!(c.response() >= a + b - 1e-9);
        }
    }
}
