//! Cross-crate integration: the staged server and the threaded baseline
//! must agree on every query, end to end through SQL.

use staged_db::planner::PlannerConfig;
use staged_db::server::types::ExecutionMode;
use staged_db::server::{QueryOutput, ServerConfig, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use staged_db::workload::load_wisconsin_table;
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    load_wisconsin_table(&cat, "wisc1", 3000, 1).unwrap();
    load_wisconsin_table(&cat, "wisc2", 600, 2).unwrap();
    cat
}

fn canonical(out: &QueryOutput) -> Vec<String> {
    let mut rows: Vec<String> = out.rows.iter().map(|r| r.to_string()).collect();
    rows.sort();
    rows
}

#[test]
fn staged_and_threaded_servers_agree_on_a_query_battery() {
    let cat = catalog();
    let staged = StagedServer::new(Arc::clone(&cat), ServerConfig::default());
    let threaded = ThreadedServer::new(Arc::clone(&cat), 4, PlannerConfig::default());
    let battery = [
        "SELECT COUNT(*) FROM wisc1",
        "SELECT * FROM wisc1 WHERE unique1 = 77",
        "SELECT unique2 FROM wisc1 WHERE unique1 BETWEEN 100 AND 160",
        "SELECT ten, COUNT(*), SUM(unique1) FROM wisc1 GROUP BY ten HAVING COUNT(*) > 10",
        "SELECT DISTINCT four FROM wisc1",
        "SELECT wisc1.unique1 FROM wisc1, wisc2 \
         WHERE wisc1.unique1 = wisc2.unique1 AND wisc2.two = 0",
        "SELECT COUNT(*) FROM wisc1, wisc2 WHERE wisc1.unique1 < wisc2.unique1 \
         AND wisc2.unique1 < 20 AND wisc1.unique1 > 10",
        "SELECT unique1 FROM wisc1 WHERE stringu1 LIKE 'AAAA%' ORDER BY unique1 LIMIT 10",
        "SELECT twenty, AVG(unique2) FROM wisc1 WHERE two = 1 GROUP BY twenty",
    ];
    for sql in battery {
        let a = staged.execute_sql(sql).unwrap_or_else(|e| panic!("staged {sql}: {e}"));
        let b = threaded.execute_sql(sql).unwrap_or_else(|e| panic!("threaded {sql}: {e}"));
        assert_eq!(canonical(&a), canonical(&b), "divergence on {sql}");
    }
    staged.shutdown();
    threaded.shutdown();
}

#[test]
fn staged_server_matches_threaded_at_every_cohort_size() {
    // The production pipeline's cohort scheduling (paper §4.2) sweeps the
    // batch knob over 1 (pre-cohort semantics), 4 and 16: results must be
    // byte-identical to the thread-per-query baseline at every setting,
    // with enough concurrent submissions in flight that cohorts actually
    // form at the parse/optimize/execute stages.
    let cat = catalog();
    let threaded = ThreadedServer::new(Arc::clone(&cat), 4, PlannerConfig::default());
    let battery = [
        "SELECT COUNT(*) FROM wisc1",
        "SELECT * FROM wisc1 WHERE unique1 = 77",
        "SELECT ten, COUNT(*), SUM(unique1) FROM wisc1 GROUP BY ten",
        "SELECT DISTINCT four FROM wisc1",
        "SELECT unique2 FROM wisc1 WHERE unique1 BETWEEN 100 AND 160",
    ];
    let expected: Vec<Vec<String>> = battery
        .iter()
        .map(|sql| canonical(&threaded.execute_sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}"))))
        .collect();
    for max_cohort in [1usize, 4, 16] {
        let staged =
            StagedServer::new(Arc::clone(&cat), ServerConfig { max_cohort, ..Default::default() });
        // Concurrent round: pile every statement into the pipeline at
        // once so queue visits see real backlogs.
        let staged_ref = &staged;
        let pending: Vec<_> =
            battery.iter().flat_map(|sql| (0..4).map(move |_| staged_ref.submit(*sql))).collect();
        for (i, rx) in pending.into_iter().enumerate() {
            let sql = battery[i / 4];
            let out =
                rx.recv().unwrap().unwrap_or_else(|e| panic!("cohort {max_cohort} {sql}: {e}"));
            assert_eq!(
                canonical(&out),
                expected[i / 4],
                "divergence at cohort {max_cohort} on {sql}"
            );
        }
        staged.shutdown();
    }
    threaded.shutdown();
}

#[test]
fn partitioned_server_agrees_with_unpartitioned_baseline_through_sql() {
    // Two staged servers over separate catalogs: one creating 4-way
    // hash-partitioned tables through its DDL path, one unpartitioned.
    // DML routes by hash key through the WAL path; results must agree.
    let mk = |partitions| {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        StagedServer::new(cat, ServerConfig { partitions, ..Default::default() })
    };
    let parted = mk(4);
    let flat = mk(1);
    for s in [&parted, &flat] {
        s.execute_sql("CREATE TABLE kv (k INT, grp INT, v VARCHAR(16))").unwrap();
        for i in 0..300i64 {
            s.execute_sql(&format!("INSERT INTO kv VALUES ({i}, {}, 'v{i}')", i % 7)).unwrap();
        }
        s.execute_sql("DELETE FROM kv WHERE k >= 280").unwrap();
        s.execute_sql("UPDATE kv SET v = 'seven' WHERE k = 7").unwrap();
        s.execute_sql("ANALYZE kv").unwrap();
    }
    for sql in [
        "SELECT COUNT(*) FROM kv",
        "SELECT * FROM kv WHERE k = 7",
        "SELECT grp, COUNT(*), SUM(k), MIN(k), MAX(k), AVG(k) FROM kv GROUP BY grp",
        "SELECT DISTINCT grp FROM kv ORDER BY grp",
        "SELECT COUNT(*), AVG(k) FROM kv WHERE grp = 3",
    ] {
        let a = parted.execute_sql(sql).unwrap_or_else(|e| panic!("partitioned {sql}: {e}"));
        let b = flat.execute_sql(sql).unwrap_or_else(|e| panic!("flat {sql}: {e}"));
        assert_eq!(canonical(&a), canonical(&b), "divergence on {sql}");
    }
    parted.shutdown();
    flat.shutdown();
}

#[test]
fn volcano_mode_server_matches_staged_mode_server() {
    let cat = catalog();
    let volcano_mode = StagedServer::new(
        Arc::clone(&cat),
        ServerConfig { mode: ExecutionMode::Volcano, ..Default::default() },
    );
    let staged_mode = StagedServer::new(Arc::clone(&cat), ServerConfig::default());
    for sql in [
        "SELECT four, COUNT(*) FROM wisc1 GROUP BY four",
        "SELECT wisc1.ten, COUNT(*) FROM wisc1, wisc2 \
         WHERE wisc1.unique1 = wisc2.unique1 GROUP BY wisc1.ten",
    ] {
        let a = volcano_mode.execute_sql(sql).unwrap();
        let b = staged_mode.execute_sql(sql).unwrap();
        assert_eq!(canonical(&a), canonical(&b), "divergence on {sql}");
    }
    volcano_mode.shutdown();
    staged_mode.shutdown();
}

#[test]
fn dml_visible_across_both_servers() {
    let cat = catalog();
    let staged = StagedServer::new(Arc::clone(&cat), ServerConfig::default());
    let threaded = ThreadedServer::new(Arc::clone(&cat), 2, PlannerConfig::default());
    staged.execute_sql("CREATE TABLE log (id INT, note VARCHAR(20))").unwrap();
    staged.execute_sql("INSERT INTO log VALUES (1, 'from staged')").unwrap();
    threaded.execute_sql("INSERT INTO log VALUES (2, 'from threaded')").unwrap();
    let out = staged.execute_sql("SELECT COUNT(*) FROM log").unwrap();
    assert_eq!(out.rows[0].to_string(), "[2]");
    threaded.execute_sql("UPDATE log SET note = 'edited' WHERE id = 1").unwrap();
    let out = staged.execute_sql("SELECT note FROM log WHERE id = 1").unwrap();
    assert_eq!(out.rows[0].to_string(), "['edited']");
    staged.execute_sql("DELETE FROM log WHERE id = 2").unwrap();
    let out = threaded.execute_sql("SELECT COUNT(*) FROM log").unwrap();
    assert_eq!(out.rows[0].to_string(), "[1]");
    staged.shutdown();
    threaded.shutdown();
}

#[test]
fn prepared_statements_bypass_parse_and_optimize() {
    let cat = catalog();
    let server = StagedServer::new(cat, ServerConfig::default());
    server.prepare("p42", "SELECT unique2 FROM wisc1 WHERE unique1 = 42").unwrap();
    let direct = server.execute_sql("SELECT unique2 FROM wisc1 WHERE unique1 = 42").unwrap();
    let stats_before = server.stage_stats();
    let prepared = server.execute_prepared("p42").recv().unwrap().unwrap();
    assert_eq!(canonical(&direct), canonical(&prepared));
    let stats_after = server.stage_stats();
    let parse = |s: &[staged_db::core::monitor::StageStats]| {
        s.iter().find(|x| x.name == "parse").unwrap().processed
    };
    assert_eq!(
        parse(&stats_before),
        parse(&stats_after),
        "prepared execution must not touch the parse stage"
    );
    assert!(matches!(
        server.execute_prepared("nope").recv().unwrap(),
        Err(staged_db::server::ServerError::UnknownPrepared(_))
    ));
    server.shutdown();
}

#[test]
fn explain_reports_physical_plan() {
    let cat = catalog();
    let server = StagedServer::new(cat, ServerConfig::default());
    let out = server.execute_sql("EXPLAIN SELECT * FROM wisc1 WHERE unique1 = 5").unwrap();
    let text: String = out.rows.iter().map(|r| r.to_string()).collect();
    assert!(text.contains("IndexScan"), "expected index plan, got {text}");
    server.shutdown();
}

#[test]
fn errors_propagate_with_messages() {
    let cat = catalog();
    let server = StagedServer::new(cat, ServerConfig::default());
    assert!(server.execute_sql("SELECT nope FROM wisc1").is_err());
    assert!(server.execute_sql("FROB THE KNOB").is_err());
    assert!(server.execute_sql("SELECT 1 / 0 FROM wisc1 LIMIT 1").is_err());
    // Server still serves after errors.
    assert!(server.execute_sql("SELECT COUNT(*) FROM wisc1").is_ok());
    server.shutdown();
}

#[test]
fn staged_server_survives_a_restart_through_checkpoint_and_wal() {
    use staged_db::storage::{MemSegmentStore, MemSnapshotStore, SegmentStore, SnapshotStore};

    let segments: Arc<dyn SegmentStore> = Arc::new(MemSegmentStore::new());
    let snapshots: Arc<dyn SnapshotStore> = Arc::new(MemSnapshotStore::new());

    // First server lifetime: create data, checkpoint, then write more so
    // that restart exercises both the snapshot and the WAL tail.
    {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        let server = StagedServer::with_stores(
            Arc::clone(&cat),
            ServerConfig { partitions: 2, ..Default::default() },
            None,
            Arc::clone(&segments),
            Arc::clone(&snapshots),
        )
        .unwrap();
        server.execute_sql("CREATE TABLE survivors (id INT, name TEXT)").unwrap();
        for i in 0..50 {
            server.execute_sql(&format!("INSERT INTO survivors VALUES ({i}, 'pre-{i}')")).unwrap();
        }
        let out = StagedServer::checkpoint(&server).unwrap();
        assert!(out.message.starts_with("CHECKPOINT"), "got {:?}", out.message);
        for i in 50..60 {
            server.execute_sql(&format!("INSERT INTO survivors VALUES ({i}, 'post-{i}')")).unwrap();
        }
        // Simulated crash: no orderly flush of the catalog, just drop it.
        server.shutdown();
    }

    // Second lifetime: an empty catalog plus the same stores must come
    // back with all sixty rows — fifty from the snapshot, ten replayed
    // from the WAL tail.
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    let server = StagedServer::with_stores(
        Arc::clone(&cat),
        ServerConfig { partitions: 2, ..Default::default() },
        None,
        segments,
        snapshots,
    )
    .unwrap();
    let report = server.recovery_report();
    assert_eq!(report.snapshot_rows, 50, "snapshot carried the pre-checkpoint rows");
    assert!(report.corruption.is_none(), "clean shutdown, clean log");
    let count = server.execute_sql("SELECT COUNT(*) FROM survivors").unwrap();
    assert_eq!(count.rows[0].to_string(), "[60]");
    let tail = server.execute_sql("SELECT name FROM survivors WHERE id = 55").unwrap();
    assert_eq!(tail.rows.len(), 1);
    assert!(tail.rows[0].to_string().contains("post-55"));
    server.shutdown();
}

#[test]
fn idle_checkpoint_stage_trims_the_wal_automatically() {
    // One-page segments and a two-segment budget: a burst of inserts
    // leaves far more than two live segments, and the checkpoint stage's
    // idle hook must notice and trim without any client asking.
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    let server = StagedServer::new(
        Arc::clone(&cat),
        ServerConfig {
            partitions: 1,
            wal_segment_pages: 1,
            checkpoint_segments: Some(2),
            ..Default::default()
        },
    );
    server.execute_sql("CREATE TABLE auto_ck (id INT, v INT)").unwrap();
    for i in 0..400 {
        server.execute_sql(&format!("INSERT INTO auto_ck VALUES ({i}, {i})")).unwrap();
    }
    // The idle hook may already have fired mid-burst; what must hold is
    // that the log converges to the budget and that old segments are
    // actually gone (the surviving ids start past segment 0).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut segments = server.wal().segments().unwrap();
    while std::time::Instant::now() < deadline {
        segments = server.wal().segments().unwrap();
        if segments.len() <= 3 && segments[0] > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(
        segments.len() <= 3,
        "idle checkpoints should trim live segments, still at {}",
        segments.len()
    );
    assert!(segments[0] > 0, "segment 0 should have been truncated away");
    // The trimmed log still supports queries and further writes.
    let count = server.execute_sql("SELECT COUNT(*) FROM auto_ck").unwrap();
    assert_eq!(count.rows[0].to_string(), "[400]");
    server.execute_sql("INSERT INTO auto_ck VALUES (400, 400)").unwrap();
    server.shutdown();
}
