//! Overload conditioning, back-pressure and self-tuning (paper §4.1.1,
//! §4.4, §5.2).

use staged_db::core::prelude::*;
use staged_db::core::stage::StageResult;
use staged_db::server::{ServerConfig, ServerError, StagedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn overloaded_server_rejects_rather_than_collapses() {
    let catalog = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256)));
    let server = StagedServer::new(
        catalog,
        ServerConfig {
            queue_capacity: 4,
            control_workers: 1,
            execute_workers: 1,
            ..Default::default()
        },
    );
    server.execute_sql("CREATE TABLE t (x INT)").unwrap();
    for i in 0..200 {
        server.execute_sql(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    // Flood with slow-ish queries without consuming replies.
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut pending = Vec::new();
    for _ in 0..300 {
        match server.try_submit("SELECT COUNT(*) FROM t, t AS t2 WHERE t.x < t2.x") {
            Ok(rx) => {
                pending.push(rx);
                accepted += 1;
            }
            Err(ServerError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(rejected > 0, "admission control must kick in");
    assert!(accepted > 0, "some work must be admitted");
    // Everything admitted eventually completes (back-pressure, no collapse).
    for rx in pending {
        assert!(rx.recv_timeout(Duration::from_secs(60)).unwrap().is_ok());
    }
    server.shutdown();
}

#[test]
fn backpressure_blocks_producer_stage_without_deadlock() {
    // A two-stage pipeline where the consumer is slow and its queue tiny:
    // the producer's sends block (paper's freeze-the-thread behaviour) but
    // the pipeline still drains completely.
    let delivered = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&delivered);
    let mut b = StagedRuntime::<u64>::builder();
    let first =
        b.add_stage(StageSpec::new("producer", |p: u64, ctx: &StageCtx<'_, u64>| -> StageResult {
            let sink = ctx.stage_id_of("slow-sink").expect("sink registered");
            ctx.send(sink, p).map_err(|_| StageError::new("closed"))?;
            Ok(())
        }));
    b.add_stage(
        StageSpec::new("slow-sink", move |_: u64, _: &StageCtx<'_, u64>| -> StageResult {
            std::thread::sleep(Duration::from_micros(300));
            d2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .with_queue_capacity(2),
    );
    let rt = b.build();
    for i in 0..400 {
        rt.enqueue(first, i).unwrap();
    }
    rt.shutdown();
    assert_eq!(delivered.load(Ordering::Relaxed), 400);
    let stats = rt.stats();
    let sink = stats.iter().find(|s| s.name == "slow-sink").unwrap();
    assert!(sink.queue.blocked_enqueues > 0, "back-pressure must have engaged");
}

#[test]
fn autotuner_grows_backlogged_stage_and_shrinks_idle_one() {
    let mut b = StagedRuntime::<u32>::builder();
    let busy = b.add_stage(
        StageSpec::new("busy", |_: u32, _: &StageCtx<'_, u32>| -> StageResult {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        })
        .with_queue_capacity(1024)
        .with_workers(1),
    );
    let idle = b.add_stage(
        StageSpec::new("idle", |_: u32, _: &StageCtx<'_, u32>| -> StageResult { Ok(()) })
            .with_workers(4),
    );
    let rt = b.build();
    let tuner = AutoTuner::spawn(
        rt.clone(),
        TuneConfig {
            max_workers: 8,
            grow_depth_per_worker: 2.0,
            interval: Duration::from_millis(25),
            ..Default::default()
        },
    );
    for i in 0..600 {
        rt.enqueue(busy, i).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while (rt.workers(busy) < 3 || rt.workers(idle) > 2) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(rt.workers(busy) >= 3, "busy stage should gain workers (got {})", rt.workers(busy));
    assert!(rt.workers(idle) <= 2, "idle stage should shed workers (got {})", rt.workers(idle));
    let decisions = tuner.stop();
    assert!(decisions.iter().any(|d| d.stage == "busy" && d.to > d.from));
    rt.shutdown();
}
