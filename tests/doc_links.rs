//! Documentation link check: every relative markdown link in the
//! repository-root docs must point at a file that exists, so the docs and
//! the tree cannot drift apart. CI runs this as its docs link-check step
//! (`cargo test --test doc_links`).

use std::path::Path;

/// Extract `[text](target)` targets from markdown, skipping code fences.
fn links(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            out.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    out
}

#[test]
fn relative_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    let mut broken = Vec::new();
    for entry in std::fs::read_dir(root).expect("read repo root") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("md") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read markdown");
        for target in links(&text) {
            // External links and pure intra-document anchors are out of
            // scope (this repo builds offline; no network fetches).
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let file_part = target.split('#').next().unwrap_or(&target);
            if file_part.is_empty() {
                continue;
            }
            let resolved = root.join(file_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!("{}: {target}", path.file_name().unwrap().to_string_lossy()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative links:\n  {}", broken.join("\n  "));
    assert!(checked > 0, "no relative links found — did the docs move?");
}

#[test]
fn core_docs_exist_and_cross_link() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for doc in ["README.md", "PROTOCOL.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"] {
        assert!(root.join(doc).exists(), "{doc} missing");
    }
    // The protocol spec must be reachable from the README.
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(readme.contains("PROTOCOL.md"), "README does not link the wire-protocol spec");
}
