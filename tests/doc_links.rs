//! Documentation link check: every relative markdown link in the
//! repository-root docs and in `docs/` must point at a file that exists,
//! so the docs and the tree cannot drift apart. CI runs this as its docs
//! link-check step (`cargo test --test doc_links`).

use std::path::Path;

/// Extract `[text](target)` targets from markdown, skipping code fences.
fn links(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            out.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    out
}

#[test]
fn relative_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    let mut broken = Vec::new();
    // Repo-root markdown plus everything under docs/ — links resolve
    // relative to the file that contains them.
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) == Some("md") {
                files.push(path);
            }
        }
    }
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read markdown");
        let base = path.parent().expect("markdown file has a parent dir");
        for target in links(&text) {
            // External links and pure intra-document anchors are out of
            // scope (this repo builds offline; no network fetches).
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let file_part = target.split('#').next().unwrap_or(&target);
            if file_part.is_empty() {
                continue;
            }
            let resolved = base.join(file_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!("{}: {target}", path.file_name().unwrap().to_string_lossy()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative links:\n  {}", broken.join("\n  "));
    assert!(checked > 0, "no relative links found — did the docs move?");
}

#[test]
fn architecture_doc_covers_every_crate() {
    // docs/ARCHITECTURE.md is the codebase's guided tour: it must exist,
    // be reachable from the README, and name all twelve workspace
    // crates, so a new crate cannot land without a tour stop.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let arch_path = root.join("docs/ARCHITECTURE.md");
    assert!(arch_path.exists(), "docs/ARCHITECTURE.md missing");
    let arch = std::fs::read_to_string(&arch_path).unwrap();
    for krate in [
        "staged-core",
        "staged-engine",
        "staged-storage",
        "staged-planner",
        "staged-sql",
        "staged-server",
        "staged-wire",
        "staged-dbclient",
        "staged-bench",
        "staged-sim",
        "staged-workload",
        "staged-cachesim",
    ] {
        assert!(arch.contains(krate), "ARCHITECTURE.md does not cover {krate}");
    }
    // The tour must walk the packet lifecycle and the stage graph.
    for anchor in ["life of a QUERY", "stage graph", "disconnect", "fscan"] {
        assert!(arch.contains(anchor), "ARCHITECTURE.md lost its {anchor:?} section");
    }
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(readme.contains("docs/ARCHITECTURE.md"), "README does not link the architecture tour");
}

#[test]
fn core_docs_exist_and_cross_link() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for doc in ["README.md", "PROTOCOL.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"] {
        assert!(root.join(doc).exists(), "{doc} missing");
    }
    // The protocol spec must be reachable from the README.
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(readme.contains("PROTOCOL.md"), "README does not link the wire-protocol spec");
}

#[test]
fn concurrency_doc_covers_the_mvcc_surface() {
    // docs/CONCURRENCY.md is the concurrency-control reference: it must
    // exist, be reachable from the README and the architecture tour, and
    // cover every load-bearing concept, so the MVCC machinery cannot
    // change without the document being looked at.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("docs/CONCURRENCY.md");
    assert!(path.exists(), "docs/CONCURRENCY.md missing");
    let doc = std::fs::read_to_string(&path).unwrap();
    for anchor in [
        "BEGIN READ ONLY",
        "ReadView",
        "CommitOracle",
        "VersionStore",
        "filter_page",
        "strict two-phase locking",
        "snapshot isolation",
        "read committed",
        "vacuum",
        "worked interleaving",
        "versions_gc",
    ] {
        assert!(doc.contains(anchor), "CONCURRENCY.md lost its {anchor:?} coverage");
    }
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(readme.contains("docs/CONCURRENCY.md"), "README does not link CONCURRENCY.md");
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    assert!(arch.contains("CONCURRENCY.md"), "ARCHITECTURE.md does not link CONCURRENCY.md");
    // And the wire-visible surface is specified where clients look.
    let proto = std::fs::read_to_string(root.join("PROTOCOL.md")).unwrap();
    for anchor in ["BEGIN READ ONLY", "READ_ONLY", "`mvcc`", "versions_gc"] {
        assert!(proto.contains(anchor), "PROTOCOL.md lost its {anchor:?} coverage");
    }
}

#[test]
fn subscription_and_front_end_docs_cover_the_surface() {
    // PR 10's push surface and event loop are documented where each
    // audience looks: the wire contract in PROTOCOL.md §8, the design
    // rationale in DESIGN.md §16, the crate tour in ARCHITECTURE.md, and
    // the measurements in EXPERIMENTS.md — so neither the change-feed
    // guarantees nor the admission policy can change silently.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let proto = std::fs::read_to_string(root.join("PROTOCOL.md")).unwrap();
    for anchor in [
        "§8 Subscriptions",
        "SUBSCRIBE <table> [WHERE <predicate>]",
        "UNSUBSCRIBE",
        "CHANGE <table> <op>",
        "Whole transactions, in commit order",
        "Subscriptions start now",
        "evicted",
        "`subscriptions`",
        "§9 What the protocol deliberately omits",
    ] {
        assert!(proto.contains(anchor), "PROTOCOL.md lost its {anchor:?} coverage");
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    for anchor in [
        "§16 The event-driven front end",
        "net-loop",
        "max_inflight",
        "ReactivityHub",
        "Back-pressure as dropped interest",
        "The completion waker",
    ] {
        assert!(design.contains(anchor), "DESIGN.md lost its {anchor:?} coverage");
    }
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    for anchor in ["reactivity.rs", "event-driven TCP front end", "net-loop"] {
        assert!(arch.contains(anchor), "ARCHITECTURE.md lost its {anchor:?} coverage");
    }
    let exp = std::fs::read_to_string(root.join("EXPERIMENTS.md")).unwrap();
    for anchor in ["net_scale_p2", "scale", "thread count"] {
        assert!(exp.contains(anchor), "EXPERIMENTS.md lost its {anchor:?} coverage");
    }
}
