//! WAL-shipping replication: the fault-injection differential suite.
//!
//! A primary (staged server) ships committed WAL over `REPLICATE`; a
//! [`ReplicaServer`] applies it and serves snapshot reads. The suite
//! proves, over real sockets: byte-identical answers after a randomized
//! workload at 1/2/4 partitions, catch-up from LSN zero when the replica
//! joins mid-workload, resume after a forced disconnect, crash-restart
//! from the replica's own durable WAL (nothing lost, nothing applied
//! twice), torn-tail repair of the replica's log, backpressure (a stalled
//! replica never blocks primary commits and is evicted when its bounded
//! outbox fills), and a proptest that replica snapshot reads never
//! observe a torn transaction.

use proptest::prelude::*;
use staged_db::dbclient::{Client, ClientError, QueryResult};
use staged_db::server::net::{self, NetConfig, NetHandle};
use staged_db::server::{ReplicaConfig, ReplicaServer, ServerConfig, StagedServer};
use staged_db::storage::wal::Lsn;
use staged_db::storage::{
    BufferPool, Catalog, Column, DataType, DiskManager, MemDisk, MemSegmentStore, PageId, Schema,
    SegmentStore, PAGE_SIZE,
};
use staged_db::wire::ErrorCode;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ACCOUNTS: i64 = 16;
const BALANCE: i64 = 100;

/// Both servers run the same DDL in the same order, so table ids line up
/// (the replica's schema-bootstrap contract).
const DDL: &[&str] =
    &["CREATE TABLE accounts (id INT, bal INT)", "CREATE TABLE items (k INT, v VARCHAR(32))"];

/// The differential queries: every table, as rows and as aggregates.
const CHECKS: &[&str] = &[
    "SELECT id, bal FROM accounts ORDER BY id",
    "SELECT SUM(bal), COUNT(*) FROM accounts",
    "SELECT k, v FROM items ORDER BY k",
    "SELECT COUNT(*) FROM items",
];

fn fresh_catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 1024)))
}

fn listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port")
}

/// A staged primary behind a TCP front end on an ephemeral port.
fn primary_net(config: ServerConfig) -> (Arc<StagedServer>, NetHandle) {
    let server = StagedServer::new(fresh_catalog(), config);
    let handle =
        net::serve(listener(), Arc::clone(&server), NetConfig::default()).expect("serve primary");
    (server, handle)
}

fn connect(handle: &NetHandle) -> Client {
    Client::connect_timeout(handle.local_addr(), Duration::from_secs(5)).expect("connect")
}

fn replica_config(parts: usize) -> ReplicaConfig {
    ReplicaConfig {
        partitions: parts,
        reconnect: Duration::from_millis(20),
        ..ReplicaConfig::default()
    }
}

/// The catalog a restarted replica boots with: the same DDL, in the same
/// creation order, as [`DDL`] runs on the primary (boot replay needs the
/// schema in place before [`ReplicaServer::open`]).
fn replica_catalog(parts: usize) -> Arc<Catalog> {
    let cat = fresh_catalog();
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![
            Column::new("id", DataType::Int).nullable(),
            Column::new("bal", DataType::Int).nullable(),
        ]),
        parts,
        0,
    )
    .unwrap();
    cat.create_table_partitioned(
        "items",
        Schema::new(vec![
            Column::new("k", DataType::Int).nullable(),
            Column::new("v", DataType::Str).nullable(),
        ]),
        parts,
        0,
    )
    .unwrap();
    cat
}

/// Deterministic workload randomness (xorshift), like tests/mvcc.rs.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = 0x9e3779b97f4a7c15u64 ^ (seed + 1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Seed the accounts table in ONE transaction: a replica snapshot must see
/// all sixteen rows or none of them.
fn seed_accounts(exec: &mut dyn FnMut(&str)) {
    exec("BEGIN");
    for i in 0..ACCOUNTS {
        exec(&format!("INSERT INTO accounts VALUES ({i}, {BALANCE})"));
    }
    exec("COMMIT");
}

/// A randomized mix of autocommit inserts/updates/deletes on `items` and
/// multi-statement transfer transactions on `accounts`.
fn run_workload(
    exec: &mut dyn FnMut(&str),
    rng: &mut dyn FnMut() -> u64,
    steps: usize,
    keys: &mut Vec<i64>,
    next_key: &mut i64,
) {
    for _ in 0..steps {
        match rng() % 4 {
            0 => {
                let k = *next_key;
                *next_key += 1;
                exec(&format!("INSERT INTO items VALUES ({k}, 'v{k}')"));
                keys.push(k);
            }
            1 if !keys.is_empty() => {
                let k = keys[(rng() % keys.len() as u64) as usize];
                exec(&format!("UPDATE items SET v = 'u{}' WHERE k = {k}", rng() % 1000));
            }
            2 if keys.len() > 1 => {
                let k = keys.swap_remove((rng() % keys.len() as u64) as usize);
                exec(&format!("DELETE FROM items WHERE k = {k}"));
            }
            _ => {
                let from = (rng() % ACCOUNTS as u64) as i64;
                let to = (rng() % ACCOUNTS as u64) as i64;
                exec("BEGIN");
                exec(&format!("UPDATE accounts SET bal = bal - 10 WHERE id = {from}"));
                exec(&format!("UPDATE accounts SET bal = bal + 10 WHERE id = {to}"));
                exec("COMMIT");
            }
        }
    }
}

/// Commit a sentinel row on the primary, then poll the replica until it
/// appears: replication applies commits in log order, so once the last
/// transaction is visible everything before it is too.
fn drain_over_sockets(primary: &mut Client, replica: &mut Client, sentinel: i64) {
    primary.query(&format!("INSERT INTO items VALUES ({sentinel}, 'sentinel')")).unwrap();
    let probe = format!("SELECT COUNT(*) FROM items WHERE k = {sentinel}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let out = replica.query(&probe).unwrap();
        if out.rows[0][0].as_deref() == Some("1") {
            return;
        }
        assert!(Instant::now() < deadline, "replica never caught up to sentinel {sentinel}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// In-process flavour of [`drain_over_sockets`] for replicas without a
/// network front end.
fn drain_in_process(primary: &mut Client, replica: &Arc<ReplicaServer>, sentinel: i64) {
    primary.query(&format!("INSERT INTO items VALUES ({sentinel}, 'sentinel')")).unwrap();
    let probe = format!("SELECT COUNT(*) FROM items WHERE k = {sentinel}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let out = replica.execute_sql(&probe).unwrap();
        if out.rows[0].to_string() == "[1]" {
            return;
        }
        assert!(Instant::now() < deadline, "replica never caught up to sentinel {sentinel}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Normalised outcome: sorted rows + headers + tag (row order is an engine
/// scheduling artifact, not a protocol guarantee — as in tests/net.rs).
#[derive(Debug, PartialEq, Eq)]
struct Answer {
    columns: Vec<(String, String)>,
    rows: Vec<Vec<Option<String>>>,
    tag: String,
}

fn answer(res: Result<QueryResult, ClientError>) -> Answer {
    let mut out = res.expect("differential query failed");
    out.rows.sort();
    Answer { columns: out.columns, rows: out.rows, tag: out.tag }
}

/// Every [`CHECKS`] query answers byte-identically on both connections.
fn assert_identical(primary: &mut Client, replica: &mut Client, ctx: &str) {
    for q in CHECKS {
        assert_eq!(
            answer(primary.query(q)),
            answer(replica.query(q)),
            "{ctx}: replica diverged from primary on {q}"
        );
    }
}

/// Sorted row images from an in-process response (for replicas served
/// without a socket).
fn sorted_rows(res: staged_db::server::Response) -> Vec<String> {
    let mut v: Vec<String> = res.unwrap().rows.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------------
// The differential suite
// ---------------------------------------------------------------------------

/// After a randomized workload at 1, 2 and 4 partitions, every table on
/// the replica answers byte-identically to the primary over real sockets —
/// and the replica refuses writes with the stable `READ_ONLY_REPLICA` code
/// while both `replication` STATS rows meter the feed.
#[test]
fn replica_answers_identically_after_randomized_workload() {
    for parts in [1usize, 2, 4] {
        let (primary, ph) =
            primary_net(ServerConfig { partitions: parts, ..ServerConfig::default() });
        let mut pc = connect(&ph);
        for ddl in DDL {
            pc.query(ddl).unwrap();
        }
        let mut exec = |sql: &str| {
            pc.query(sql).unwrap();
        };
        seed_accounts(&mut exec);

        // The replica boots empty and bootstraps its schema over its own
        // socket; transactions shipped before the DDL landed sit in the
        // deferred queue until it does.
        let replica = ReplicaServer::open(
            fresh_catalog(),
            Arc::new(MemSegmentStore::new()),
            replica_config(parts),
        )
        .unwrap();
        replica.start(ph.local_addr().to_string());
        let rh = net::serve(listener(), Arc::clone(&replica), NetConfig::default()).unwrap();
        let mut rc = connect(&rh);
        for ddl in DDL {
            rc.query(ddl).unwrap();
        }

        let mut rng = xorshift(parts as u64);
        let mut keys = Vec::new();
        let mut next_key = 0i64;
        let mut exec = |sql: &str| {
            pc.query(sql).unwrap();
        };
        run_workload(&mut exec, &mut rng, 60, &mut keys, &mut next_key);
        drain_over_sockets(&mut pc, &mut rc, 1_000_000 + parts as i64);
        assert_identical(&mut pc, &mut rc, &format!("{parts} partitions"));

        // Writes (and a read-write BEGIN) are refused with the stable code;
        // snapshot reads keep working on the same connection.
        for sql in
            ["INSERT INTO items VALUES (7777, 'no')", "DELETE FROM items WHERE k = 0", "BEGIN"]
        {
            match rc.query(sql) {
                Err(ClientError::Server { code: ErrorCode::ReadOnlyReplica, .. }) => {}
                other => panic!("{parts} parts: want READ_ONLY_REPLICA for {sql}, got {other:?}"),
            }
        }
        rc.query("BEGIN READ ONLY").unwrap();
        let out = rc.query("SELECT COUNT(*) FROM accounts").unwrap();
        assert_eq!(out.rows[0][0].as_deref(), Some("16"));
        rc.query("COMMIT").unwrap();

        // Both sides meter the feed in their `replication` STATS row
        // (PROTOCOL.md §6): shipping counters on the primary, apply
        // counters on the replica.
        let repl_row = |stats: QueryResult| -> Vec<Option<String>> {
            stats
                .rows
                .into_iter()
                .find(|r| r[0].as_deref() == Some("replication"))
                .expect("replication row in STATS")
        };
        let prow = repl_row(pc.stats().unwrap());
        assert!(prow[1].as_ref().unwrap().parse::<i64>().unwrap() > 0, "primary shipped records");
        assert_eq!(prow[5].as_deref(), Some("1"), "one replica connected");
        let rrow = repl_row(rc.stats().unwrap());
        assert!(rrow[1].as_ref().unwrap().parse::<i64>().unwrap() > 0, "replica applied records");
        assert_eq!(rrow[5].as_deref(), Some("1"), "replica reports its subscription");

        pc.quit().unwrap();
        rc.quit().unwrap();
        rh.shutdown();
        replica.shutdown();
        ph.shutdown();
        primary.shutdown();
    }
}

/// A replica that attaches mid-workload catches up from LSN zero — the
/// whole history ships, the deferred queue holds transactions that
/// arrived before the bootstrap DDL, and the end state is identical.
#[test]
fn replica_joining_mid_workload_catches_up_from_lsn_zero() {
    let (primary, ph) = primary_net(ServerConfig { partitions: 2, ..ServerConfig::default() });
    let mut pc = connect(&ph);
    for ddl in DDL {
        pc.query(ddl).unwrap();
    }
    let mut rng = xorshift(11);
    let mut keys = Vec::new();
    let mut next_key = 0i64;
    {
        let mut exec = |sql: &str| {
            pc.query(sql).unwrap();
        };
        seed_accounts(&mut exec);
        run_workload(&mut exec, &mut rng, 30, &mut keys, &mut next_key);
    }

    // Join now: half the history is already in the primary's log.
    let replica =
        ReplicaServer::open(fresh_catalog(), Arc::new(MemSegmentStore::new()), replica_config(2))
            .unwrap();
    replica.start(ph.local_addr().to_string());
    let rh = net::serve(listener(), Arc::clone(&replica), NetConfig::default()).unwrap();
    let mut rc = connect(&rh);
    for ddl in DDL {
        rc.query(ddl).unwrap();
    }

    // The second half commits while the replica is still catching up.
    let mut exec = |sql: &str| {
        pc.query(sql).unwrap();
    };
    run_workload(&mut exec, &mut rng, 30, &mut keys, &mut next_key);
    drain_over_sockets(&mut pc, &mut rc, 1_000_010);
    assert_identical(&mut pc, &mut rc, "mid-workload join");
    assert_eq!(replica.feed_stats().stream_errors, 0, "catch-up tore the feed down");

    pc.quit().unwrap();
    rc.quit().unwrap();
    rh.shutdown();
    replica.shutdown();
    ph.shutdown();
    primary.shutdown();
}

/// After a forced disconnect the replica re-subscribes from its own
/// durable position and converges again; the reconnect is visible in its
/// feed counters.
#[test]
fn replica_reattaches_after_forced_disconnect() {
    let (primary, ph) = primary_net(ServerConfig { partitions: 2, ..ServerConfig::default() });
    let mut pc = connect(&ph);
    for ddl in DDL {
        pc.query(ddl).unwrap();
    }
    let replica =
        ReplicaServer::open(fresh_catalog(), Arc::new(MemSegmentStore::new()), replica_config(2))
            .unwrap();
    replica.start(ph.local_addr().to_string());
    let rh = net::serve(listener(), Arc::clone(&replica), NetConfig::default()).unwrap();
    let mut rc = connect(&rh);
    for ddl in DDL {
        rc.query(ddl).unwrap();
    }

    let mut rng = xorshift(23);
    let mut keys = Vec::new();
    let mut next_key = 0i64;
    {
        let mut exec = |sql: &str| {
            pc.query(sql).unwrap();
        };
        seed_accounts(&mut exec);
        run_workload(&mut exec, &mut rng, 25, &mut keys, &mut next_key);
    }
    drain_over_sockets(&mut pc, &mut rc, 1_000_020);
    let connects_before = replica.feed_stats().connects;
    assert!(connects_before >= 1);

    // Forced disconnect: the feed thread stops; the primary keeps
    // committing while nobody subscribes.
    replica.shutdown();
    let mut exec = |sql: &str| {
        pc.query(sql).unwrap();
    };
    run_workload(&mut exec, &mut rng, 25, &mut keys, &mut next_key);

    // Re-attach: resume is from the replica's own durable WAL position.
    replica.start(ph.local_addr().to_string());
    drain_over_sockets(&mut pc, &mut rc, 1_000_021);
    assert_identical(&mut pc, &mut rc, "after re-attach");
    assert!(
        replica.feed_stats().connects > connects_before,
        "re-attach must be a fresh subscription"
    );

    pc.quit().unwrap();
    rc.quit().unwrap();
    rh.shutdown();
    replica.shutdown();
    ph.shutdown();
    primary.shutdown();
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Kill the replica mid-stream, restart it from its own durable WAL: the
/// boot state is whole committed transactions only, the applied LSN never
/// moves backwards across the restart, and after resuming the feed the
/// replica converges exactly — no record lost, none applied twice.
#[test]
fn replica_crash_restart_applies_every_record_exactly_once() {
    let (primary, ph) = primary_net(ServerConfig { partitions: 2, ..ServerConfig::default() });
    let mut pc = connect(&ph);
    for ddl in DDL {
        pc.query(ddl).unwrap();
    }
    {
        let mut exec = |sql: &str| {
            pc.query(sql).unwrap();
        };
        seed_accounts(&mut exec);
    }

    let store = Arc::new(MemSegmentStore::new());
    let r1 = ReplicaServer::open(
        replica_catalog(2),
        Arc::clone(&store) as Arc<dyn SegmentStore>,
        replica_config(2),
    )
    .unwrap();
    r1.start(ph.local_addr().to_string());

    for i in 0..20 {
        pc.query(&format!("INSERT INTO items VALUES ({i}, 'v{i}')")).unwrap();
    }
    drain_in_process(&mut pc, &r1, 1_000_030);
    // Everything the replica acknowledged is durable in its own store.
    let acked_floor = primary.replication_hub().min_acked().expect("replica is connected");

    // Crash mid-stream: more commits are in flight when the feed dies, and
    // the primary keeps committing while the replica is down.
    for i in 20..40 {
        pc.query(&format!("INSERT INTO items VALUES ({i}, 'v{i}')")).unwrap();
    }
    r1.shutdown();
    drop(r1);
    for i in 40..60 {
        pc.query(&format!("INSERT INTO items VALUES ({i}, 'v{i}')")).unwrap();
    }

    // Restart over the same store: boot replay applies the committed
    // prefix; the acked history must still be there.
    let r2 = ReplicaServer::open(
        replica_catalog(2),
        Arc::clone(&store) as Arc<dyn SegmentStore>,
        replica_config(2),
    )
    .unwrap();
    assert!(
        r2.wal().next_lsn() >= acked_floor,
        "acknowledged history lost across the crash: {:?} < {acked_floor:?}",
        r2.wal().next_lsn()
    );
    let boot = r2.status();
    // Whole transactions only: the seed txn is atomic and no item row can
    // exist twice.
    assert_eq!(
        sorted_rows(r2.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts")),
        vec![format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE)],
        "boot replay tore the seed transaction"
    );
    let items_at_boot = sorted_rows(r2.execute_sql("SELECT k FROM items"));
    let mut dedup = items_at_boot.clone();
    dedup.dedup();
    assert_eq!(items_at_boot, dedup, "boot replay applied a record twice");
    assert!(items_at_boot.len() >= 21, "the drained prefix (20 rows + sentinel) must survive");

    // Resume: the feed re-ships the suffix; convergence is exact.
    r2.start(ph.local_addr().to_string());
    drain_in_process(&mut pc, &r2, 1_000_031);
    let fin = r2.status();
    assert!(fin.applied_lsn >= boot.applied_lsn, "applied LSN moved backwards");
    assert_eq!(fin.lag_records, 0, "records left unapplied after drain");
    // Integer projections compare exactly across the wire and the
    // in-process API; duplicate keys or lost rows both fail the diff.
    for q in ["SELECT k FROM items ORDER BY k", "SELECT id, bal FROM accounts ORDER BY id"] {
        let mut want: Vec<String> = pc
            .query(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<&str> = r.iter().map(|c| c.as_deref().unwrap()).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        want.sort();
        let got = sorted_rows(r2.execute_sql(q));
        assert_eq!(got, want, "restarted replica diverged on {q}");
    }

    pc.quit().unwrap();
    r2.shutdown();
    ph.shutdown();
    primary.shutdown();
}

/// Corrupt the tail page of the replica's own WAL ("torn write at crash"):
/// reopening repairs the log to its committed prefix, and the resumed feed
/// re-ships the damaged suffix until the replica converges exactly.
#[test]
fn torn_replica_wal_tail_resumes_from_the_committed_prefix() {
    let (primary, ph) = primary_net(ServerConfig { partitions: 1, ..ServerConfig::default() });
    let mut pc = connect(&ph);
    for ddl in DDL {
        pc.query(ddl).unwrap();
    }
    {
        let mut exec = |sql: &str| {
            pc.query(sql).unwrap();
        };
        seed_accounts(&mut exec);
    }

    let store = Arc::new(MemSegmentStore::new());
    let r1 = ReplicaServer::open(
        replica_catalog(1),
        Arc::clone(&store) as Arc<dyn SegmentStore>,
        replica_config(1),
    )
    .unwrap();
    r1.start(ph.local_addr().to_string());
    // Enough padded rows that the replica's flushed log spans several
    // pages — the tear must have whole records to destroy.
    let pad = "x".repeat(80);
    for i in 0..120 {
        pc.query(&format!("INSERT INTO items VALUES ({i}, '{pad}')")).unwrap();
    }
    drain_in_process(&mut pc, &r1, 1_000_040);
    let total = sorted_rows(r1.execute_sql("SELECT COUNT(*) FROM items"));
    r1.shutdown();
    drop(r1);

    // Tear the last written page of the replica's newest segment, the way
    // a half-written sector looks after a power cut.
    let seg = *store.list().unwrap().last().unwrap();
    let disk = store.disk(seg).unwrap();
    let pages = disk.num_pages();
    assert!(pages >= 2, "need a multi-page replica log, got {pages}");
    let mut page = vec![0u8; PAGE_SIZE];
    disk.read_page(PageId(pages - 1), &mut page).unwrap();
    page[100] ^= 0xFF;
    disk.write_page(PageId(pages - 1), &page).unwrap();

    // Reopen: the torn tail is the end of the log, not an error. The boot
    // state is a whole-transaction prefix strictly short of the drained
    // total (the tear destroyed the newest records).
    let r2 = ReplicaServer::open(
        replica_catalog(1),
        Arc::clone(&store) as Arc<dyn SegmentStore>,
        replica_config(1),
    )
    .unwrap();
    assert_eq!(
        sorted_rows(r2.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts")),
        vec![format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE)],
        "torn-tail repair tore a transaction"
    );
    let at_boot = sorted_rows(r2.execute_sql("SELECT COUNT(*) FROM items"));
    assert_ne!(at_boot, total, "the tear destroyed nothing — the test lost its teeth");

    // Resume: the primary simply re-ships the damaged suffix.
    r2.start(ph.local_addr().to_string());
    drain_in_process(&mut pc, &r2, 1_000_041);
    let want = answer(pc.query("SELECT k, v FROM items ORDER BY k")).rows.len();
    let got = sorted_rows(r2.execute_sql("SELECT k, v FROM items")).len();
    assert_eq!(got, want, "row count diverged after torn-tail resync");
    let sums = sorted_rows(r2.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts"));
    assert_eq!(sums, vec![format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE)]);
    assert_eq!(r2.status().lag_records, 0);

    pc.quit().unwrap();
    r2.shutdown();
    ph.shutdown();
    primary.shutdown();
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

/// A stalled replica never blocks primary commits: shipping is try_send
/// into a bounded outbox, so the primary's write path stays fast while a
/// subscriber reads nothing — and a subscriber that falls behind the
/// outbox capacity is evicted, metered in the `replication` STATS row.
#[test]
fn stalled_replica_never_blocks_primary_and_is_evicted() {
    let (primary, ph) = primary_net(ServerConfig {
        partitions: 1,
        replication_outbox: 4,
        ..ServerConfig::default()
    });
    let mut pc = connect(&ph);
    pc.query(DDL[0]).unwrap();
    pc.query(DDL[1]).unwrap();

    // A raw REPLICATE subscriber that never reads its socket...
    let mut stalled = TcpStream::connect(ph.local_addr()).unwrap();
    stalled
        .write_all(format!("REPLICATE {}\n", staged_db::wire::format_lsn(0, 0)).as_bytes())
        .unwrap();
    // ...and an in-process subscription whose outbox nobody ever drains.
    let (_id, rx) = primary.replication_hub().subscribe(Lsn::ZERO).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while primary.replication_hub().stats().connected < 2 {
        assert!(Instant::now() < deadline, "feeds never registered");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Commits stay fast while both laggards stall.
    let pad = "y".repeat(64);
    let start = Instant::now();
    for i in 0..40 {
        pc.query(&format!("INSERT INTO items VALUES ({i}, '{pad}')")).unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stalled replica blocked primary commits for {:?}",
        start.elapsed()
    );

    // The undrained outbox (capacity 4) fills and its subscriber is
    // evicted; the STATS row meters it in the errors column.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = pc.stats().unwrap();
        let row = stats
            .rows
            .iter()
            .find(|r| r[0].as_deref() == Some("replication"))
            .expect("replication row in STATS");
        let evicted: i64 = row[2].as_ref().unwrap().parse().unwrap();
        if evicted >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "slow replica was never evicted");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(primary.replication_hub().stats().evicted >= 1);
    // The primary still answers reads; nothing was lost on its side.
    let out = pc.query("SELECT COUNT(*) FROM items").unwrap();
    assert_eq!(out.rows[0][0].as_deref(), Some("40"));

    drop(rx);
    drop(stalled);
    pc.quit().unwrap();
    ph.shutdown();
    primary.shutdown();
}

// ---------------------------------------------------------------------------
// Torn-transaction proptest
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// However commits, `WALEOF` watermarks and replica snapshot reads
    /// interleave, a snapshot on the replica sees whole transactions only:
    /// the single seed transaction is all-or-nothing, and transfers keep
    /// the sum balanced (mirroring tests/mvcc.rs on the primary).
    #[test]
    fn replica_snapshot_reads_never_observe_a_torn_transaction(
        moves in prop::collection::vec((0..ACCOUNTS, 0..ACCOUNTS), 1..10),
        reads in prop::collection::vec(0usize..10, 1..4),
    ) {
        let (primary, ph) =
            primary_net(ServerConfig { partitions: 2, ..ServerConfig::default() });
        let sess = primary.session();
        for ddl in DDL {
            sess.execute_sql(ddl).unwrap();
        }
        let mut exec = |sql: &str| { sess.execute_sql(sql).unwrap(); };
        seed_accounts(&mut exec);

        let replica = ReplicaServer::open(
            replica_catalog(2),
            Arc::new(MemSegmentStore::new()),
            replica_config(2),
        )
        .unwrap();
        replica.start(ph.local_addr().to_string());
        let reader = replica.session();
        let check_snapshot = || {
            reader.execute_sql("BEGIN READ ONLY").unwrap();
            let n = reader.execute_sql("SELECT COUNT(*) FROM accounts").unwrap().rows[0]
                .get(0)
                .as_int()
                .unwrap();
            let sum = reader.execute_sql("SELECT SUM(bal) FROM accounts").unwrap().rows[0]
                .get(0)
                .as_int();
            reader.execute_sql("COMMIT").unwrap();
            prop_assert!(n == 0 || n == ACCOUNTS, "torn seed transaction: {} rows", n);
            if n == ACCOUNTS {
                prop_assert_eq!(sum, Some(ACCOUNTS * BALANCE), "snapshot saw a torn transfer");
            }
        };

        for (i, (from, to)) in moves.iter().enumerate() {
            if reads.contains(&i) {
                check_snapshot();
            }
            sess.execute_sql("BEGIN").unwrap();
            sess.execute_sql(&format!("UPDATE accounts SET bal = bal - 10 WHERE id = {from}"))
                .unwrap();
            sess.execute_sql(&format!("UPDATE accounts SET bal = bal + 10 WHERE id = {to}"))
                .unwrap();
            sess.execute_sql("COMMIT").unwrap();
        }
        check_snapshot();

        // Convergence: the replica ends at exactly the primary's state.
        let want = sorted_rows(sess.execute_sql("SELECT id, bal FROM accounts"));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let got = sorted_rows(replica.execute_sql("SELECT id, bal FROM accounts"));
            if got == want {
                break;
            }
            prop_assert!(Instant::now() < deadline, "replica never converged");
            std::thread::sleep(Duration::from_millis(20));
        }

        drop(reader);
        replica.shutdown();
        drop(sess);
        ph.shutdown();
        primary.shutdown();
    }
}
