//! Connection-scale tests for the event-driven network front end.
//!
//! Since PR 10 the front end is a single `net-loop` thread multiplexing
//! every socket through a `poll(2)`-style readiness loop (DESIGN.md §16),
//! so connections are cheap: this suite holds 1,000+ of them open at once
//! — most idle, an active subset querying — against both the staged
//! server and the thread-pool baseline, and proves that
//!
//!   * the process thread count does not grow with the connection count
//!     (one reader thread, not thread-per-connection),
//!   * the active subset gets byte-identical answers from both backends
//!     while the idle crowd sits connected,
//!   * admission control still refuses crisply at `max_connections` with
//!     the stable `OVERLOADED` code, and a slot freed by a disconnect is
//!     reusable.
//!
//! The tests in this file serialize on a local mutex: they assert on
//! process-wide thread counts, which parallel server-spawning tests in
//! the same binary would skew.

use staged_db::dbclient::{Client, ClientError, QueryResult};
use staged_db::planner::PlannerConfig;
use staged_db::server::net::{self, NetConfig, NetHandle};
use staged_db::server::{ServerConfig, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use staged_db::wire::ErrorCode;
use std::net::TcpListener;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// How many mostly-idle connections each backend holds at once. Together
/// the two fleets put 1,280 concurrent sockets through one reader thread
/// per server.
const IDLE_STAGED: usize = 1024;
const IDLE_THREADED: usize = 256;
/// Concurrently querying clients per backend (the box runs this suite on
/// a single core — scale lives in the socket count, not in parallel SQL).
const ACTIVE: usize = 4;

fn scale_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn fresh_catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 1024)))
}

fn listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port")
}

fn connect(handle: &NetHandle) -> Client {
    Client::connect_timeout(handle.local_addr(), Duration::from_secs(10)).expect("connect")
}

/// Live thread count of this process (each kernel task under
/// /proc/self/task is one thread).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").expect("read /proc/self/task").count()
}

/// Normalised outcome for the differential, as in tests/net.rs: sorted
/// rows + tag, or the stable error code.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Ok { columns: Vec<(String, String)>, rows: Vec<Vec<Option<String>>>, tag: String },
    Err(ErrorCode),
}

fn outcome(res: Result<QueryResult, ClientError>) -> Outcome {
    match res {
        Ok(mut out) => {
            out.rows.sort();
            Outcome::Ok { columns: out.columns, rows: out.rows, tag: out.tag }
        }
        Err(ClientError::Server { code, .. }) => Outcome::Err(code),
        Err(other) => panic!("transport/protocol failure: {other}"),
    }
}

/// The active subset's script: per-client tables so concurrent clients
/// never contend, with a syntax error thrown in to exercise the error
/// path under load.
fn script(client: usize) -> Vec<String> {
    vec![
        format!("CREATE TABLE load_{client} (k INT, v VARCHAR(16))"),
        format!("INSERT INTO load_{client} VALUES (1, 'one'), (2, 'two'), (3, 'three')"),
        format!("SELECT k, v FROM load_{client} ORDER BY k"),
        format!("UPDATE load_{client} SET v = 'TWO' WHERE k = 2"),
        "SELEC syntax error".to_string(),
        format!("SELECT COUNT(*) FROM load_{client}"),
        format!("SELECT v FROM load_{client} WHERE k = 2"),
    ]
}

/// The tentpole claim, asserted: a four-digit connection count served by
/// a fixed, small number of threads, with the querying subset answered
/// identically by both backends while the idle fleet stays connected.
#[test]
fn thousand_connections_one_reader_thread_identical_answers() {
    let _guard = scale_lock();
    let _ = polling::raise_nofile_limit();

    let staged = StagedServer::new(
        fresh_catalog(),
        ServerConfig { partitions: 2, ..ServerConfig::default() },
    );
    let staged_handle = net::serve(
        listener(),
        Arc::clone(&staged),
        NetConfig { max_connections: IDLE_STAGED + ACTIVE + 4, ..NetConfig::default() },
    )
    .expect("serve staged");
    let threaded = Arc::new(ThreadedServer::new(fresh_catalog(), 4, PlannerConfig::default()));
    let threaded_handle = net::serve(
        listener(),
        Arc::clone(&threaded),
        NetConfig { max_connections: IDLE_THREADED + ACTIVE + 4, ..NetConfig::default() },
    )
    .expect("serve threaded");

    // Both servers are fully up (stages, pumps, net loops): everything
    // that runs from here on must not spawn threads per connection.
    let baseline = thread_count();

    let mut idle: Vec<Client> = Vec::with_capacity(IDLE_STAGED + IDLE_THREADED);
    for _ in 0..IDLE_STAGED {
        idle.push(connect(&staged_handle));
    }
    for _ in 0..IDLE_THREADED {
        idle.push(connect(&threaded_handle));
    }
    assert!(idle.len() >= 1000, "the fleet holds 1,000+ concurrent connections");
    let grown = thread_count();
    assert!(
        grown <= baseline + 2,
        "thread count grew with connections: {baseline} -> {grown} for {} sockets \
         (thread-per-connection has crept back in)",
        idle.len()
    );
    assert!(baseline < 64, "the fixed thread budget itself should be small, got {baseline}");

    // The net stage meters the whole fleet as active connections (the
    // gauge updates once per loop pass, so give it a beat).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while (staged_handle.stats().active as usize) < IDLE_STAGED
        || (threaded_handle.stats().active as usize) < IDLE_THREADED
    {
        assert!(std::time::Instant::now() < deadline, "active gauge never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }

    // An active subset queries through the crowd: byte-identical answers
    // from both backends, concurrently on each.
    let sh = Arc::new(staged_handle);
    let th = Arc::new(threaded_handle);
    let workers: Vec<_> = (0..ACTIVE)
        .map(|client| {
            let sh = Arc::clone(&sh);
            let th = Arc::clone(&th);
            std::thread::spawn(move || {
                let mut a = connect(&sh);
                let mut b = connect(&th);
                for stmt in script(client) {
                    let oa = outcome(a.query(&stmt));
                    let ob = outcome(b.query(&stmt));
                    assert_eq!(oa, ob, "divergence at {stmt:?}");
                }
                a.quit().unwrap();
                b.quit().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("active client");
    }

    // A ping still round-trips through the idle fleet's front and back.
    idle.first_mut().unwrap().ping().unwrap();
    idle.last_mut().unwrap().ping().unwrap();

    drop(idle);
    let sh = Arc::try_unwrap(sh).ok().expect("staged handle");
    let th = Arc::try_unwrap(th).ok().expect("threaded handle");
    sh.shutdown();
    th.shutdown();
    staged.shutdown();
    threaded.shutdown();
}

/// Admission control at scale: the connection over `max_connections` is
/// greeted, refused with the stable `OVERLOADED` code, and its socket
/// closed — and the slot a disconnect frees is immediately reusable.
#[test]
fn max_connections_refuses_crisply_and_slots_recycle() {
    let _guard = scale_lock();
    let _ = polling::raise_nofile_limit();
    const CAP: usize = 32;
    let server = StagedServer::new(fresh_catalog(), ServerConfig::default());
    let handle = net::serve(
        listener(),
        Arc::clone(&server),
        NetConfig { max_connections: CAP, ..NetConfig::default() },
    )
    .unwrap();

    let mut fleet: Vec<Client> = (0..CAP).map(|_| connect(&handle)).collect();
    for c in fleet.iter_mut() {
        c.ping().unwrap();
    }

    // Every connection past the cap is refused — greeting then ERR, so
    // the client sees a clean protocol-level refusal, not a hang or a
    // reset. (An in-flight close can also surface as EOF; both are crisp.)
    let mut refusals = 0;
    for _ in 0..8 {
        let mut extra = connect(&handle);
        match extra.ping() {
            Err(ClientError::Server { code: ErrorCode::Overloaded, .. }) => refusals += 1,
            Err(ClientError::Io(_)) => {}
            other => panic!("over-cap connection must be refused, got {other:?}"),
        }
    }
    assert!(refusals >= 1, "at least one refusal must carry the OVERLOADED code");
    assert!(handle.stats().rejected >= refusals as u64);

    // The fleet is untouched by the refusals.
    for c in fleet.iter_mut() {
        c.ping().unwrap();
    }

    // Freeing one slot admits one newcomer.
    fleet.pop().unwrap().quit().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut admitted = loop {
        let mut c = connect(&handle);
        match c.ping() {
            Ok(()) => break c,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("freed slot was never reusable: {e}"),
        }
    };
    admitted.query("CREATE TABLE recycled (x INT)").unwrap();
    admitted.quit().unwrap();

    drop(fleet);
    handle.shutdown();
    server.shutdown();
}
