//! `SUBSCRIBE` change feeds over real sockets (PROTOCOL.md §8).
//!
//! The suite proves the feed contract end-to-end: committed transactions
//! stream whole and in commit order, aborted transactions are invisible,
//! `WHERE` predicates filter the feed to an exact subset, `UNSUBSCRIBE`
//! delivers everything committed before it and returns the connection to
//! request/response use, a subscriber that stops reading is struck out
//! and evicted without ever blocking commits (mirroring the replication
//! suite's stalled-replica test), and a mid-stream disconnect releases
//! the subscription server-side. A proptest drives randomized interleaved
//! writers against concurrent subscribers to check the ordering
//! guarantees under contention.

use proptest::prelude::*;
use staged_db::dbclient::Client;
use staged_db::planner::PlannerConfig;
use staged_db::server::net::{self, NetConfig, NetHandle};
use staged_db::server::{ServerConfig, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use staged_db::wire::{Change, ChangeOp};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fresh_catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 1024)))
}

fn listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port")
}

fn staged_net(config: ServerConfig) -> (Arc<StagedServer>, NetHandle) {
    let server = StagedServer::new(fresh_catalog(), config);
    let handle =
        net::serve(listener(), Arc::clone(&server), NetConfig::default()).expect("serve staged");
    (server, handle)
}

fn connect(handle: &NetHandle) -> Client {
    Client::connect_timeout(handle.local_addr(), Duration::from_secs(5)).expect("connect")
}

/// Shorthand for the expected decoded line: an INSERT/DELETE of `(k, v)`.
fn change(op: ChangeOp, k: i64, v: i64) -> Change {
    Change { table: "t".to_string(), op, fields: vec![Some(k.to_string()), Some(v.to_string())] }
}

/// Committed transactions stream whole, in commit order; aborts vanish;
/// `UNSUBSCRIBE` drains everything already committed and hands the
/// connection back to request/response use.
#[test]
fn committed_transactions_stream_in_order_and_unsubscribe_drains() {
    let (server, handle) = staged_net(ServerConfig { partitions: 1, ..ServerConfig::default() });
    let mut writer = connect(&handle);
    writer.query("CREATE TABLE t (k INT, v INT)").unwrap();

    let mut sub_conn = connect(&handle);
    let mut feed = sub_conn.subscribe("t", None).unwrap();

    // A single-statement transaction streams live (the pump runs off the
    // replication stage's idle visits — a blocking read sees it shortly).
    writer.query("INSERT INTO t VALUES (1, 5)").unwrap();
    assert_eq!(feed.next_change().unwrap(), change(ChangeOp::Insert, 1, 5));

    // A multi-statement transaction arrives whole and in statement order;
    // a rolled-back transaction and a failed one never surface at all.
    writer.begin().unwrap();
    writer.query("INSERT INTO t VALUES (2, 10)").unwrap();
    writer.query("INSERT INTO t VALUES (3, 15)").unwrap();
    writer.commit().unwrap();
    writer.begin().unwrap();
    writer.query("INSERT INTO t VALUES (99, 99)").unwrap();
    writer.rollback().unwrap();
    writer.query("DELETE FROM t WHERE k = 1").unwrap();

    let tail = feed.unsubscribe().unwrap();
    assert_eq!(
        tail,
        vec![
            change(ChangeOp::Insert, 2, 10),
            change(ChangeOp::Insert, 3, 15),
            change(ChangeOp::Delete, 1, 5),
        ]
    );

    // The connection is a plain request/response session again.
    let out = sub_conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(out.rows[0][0].as_deref(), Some("2"));
    sub_conn.quit().unwrap();
    writer.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

/// The same feed works on the thread-pool baseline: both backends source
/// changes from the shared WAL, so the wire contract is identical.
#[test]
fn subscribe_streams_on_the_threaded_baseline_too() {
    let server = Arc::new(ThreadedServer::new(fresh_catalog(), 2, PlannerConfig::default()));
    let handle =
        net::serve(listener(), Arc::clone(&server), NetConfig::default()).expect("serve threaded");
    let mut writer = connect(&handle);
    writer.query("CREATE TABLE t (k INT, v INT)").unwrap();
    let mut sub_conn = connect(&handle);
    let mut feed = sub_conn.subscribe("t", Some("v > 10")).unwrap();
    writer.query("INSERT INTO t VALUES (1, 5), (2, 20)").unwrap();
    assert_eq!(feed.next_change().unwrap(), change(ChangeOp::Insert, 2, 20));
    let tail = feed.unsubscribe().unwrap();
    assert!(tail.is_empty(), "nothing else was committed, got {tail:?}");
    sub_conn.quit().unwrap();
    writer.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

/// Wire-level feed discipline, over a raw socket: a bad subscription is
/// refused without harming the connection, queries are refused while a
/// feed is active, `UNSUBSCRIBE` without a feed is a protocol error.
#[test]
fn subscription_protocol_discipline() {
    let (server, handle) = staged_net(ServerConfig { partitions: 1, ..ServerConfig::default() });
    let mut setup = connect(&handle);
    setup.query("CREATE TABLE t (k INT, v INT)").unwrap();

    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting
    let mut send = |cmd: &str| {
        (&stream).write_all(format!("{cmd}\n").as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    assert!(send("SUBSCRIBE missing").starts_with("ERR SQL"), "unknown table is refused");
    assert!(send("SUBSCRIBE t WHERE bogus !!").starts_with("ERR SQL"), "bad predicate refused");
    assert!(send("UNSUBSCRIBE").starts_with("ERR PROTO"), "no feed to unsubscribe");
    // The connection survived every refusal and can open a real feed.
    assert_eq!(send("SUBSCRIBE t"), "OK SUBSCRIBE t");
    assert!(send("QUERY SELECT 1").starts_with("ERR PROTO"), "queries refused while subscribed");
    assert_eq!(send("PING"), "PONG", "PING stays available inside a feed");
    assert_eq!(send("UNSUBSCRIBE"), "OK UNSUBSCRIBE");
    assert!(send("QUERY SELECT COUNT(*) FROM t").starts_with("META"), "request/response again");

    drop(stream);
    setup.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

/// A subscriber that stops reading never blocks commits: delivery is
/// try_send into a bounded outbox, so 40 writes stay fast while the
/// laggard stalls — then the strike rule evicts it, metered in the
/// `subscriptions` STATS row (the socket-level mirror of the replication
/// suite's stalled-replica test).
#[test]
fn stalled_subscriber_never_blocks_commits_and_is_evicted() {
    let (server, handle) = staged_net(ServerConfig {
        partitions: 1,
        subscription_outbox: 4,
        ..ServerConfig::default()
    });
    let mut writer = connect(&handle);
    writer.query("CREATE TABLE t (k INT, v INT)").unwrap();

    // A socket subscriber that never reads (the front end buffers for it;
    // TCP back-pressure is the kernel's problem, not the commit path's)...
    let mut stalled = TcpStream::connect(handle.local_addr()).unwrap();
    stalled.write_all(b"SUBSCRIBE t\n").unwrap();
    // ...and an in-process subscription whose outbox nobody ever drains:
    // once it is full and nothing moves for EVICTION_FULL_STRIKES pump
    // visits, the hub strikes it out.
    let (_id, rx) = server.reactivity_hub().subscribe("t", None).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.reactivity_hub().stats().connected < 2 {
        assert!(Instant::now() < deadline, "feeds never registered");
        std::thread::sleep(Duration::from_millis(10));
    }

    let start = Instant::now();
    for i in 0..40 {
        writer.query(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stalled subscriber blocked commits for {:?}",
        start.elapsed()
    );

    // The eviction lands in the STATS row's errors column.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = writer.stats().unwrap();
        let row = stats
            .rows
            .iter()
            .find(|r| r[0].as_deref() == Some("subscriptions"))
            .expect("subscriptions row in STATS");
        let evicted: i64 = row[2].as_ref().unwrap().parse().unwrap();
        if evicted >= 1 {
            // batch = the bounded outbox capacity the feed was evicted at.
            let capacity: i64 = row[8].as_ref().unwrap().parse().unwrap();
            assert_eq!(capacity, 4);
            break;
        }
        assert!(Instant::now() < deadline, "stalled subscriber was never evicted");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(server.reactivity_hub().stats().evicted >= 1);
    // Nothing was lost on the commit path.
    let out = writer.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(out.rows[0][0].as_deref(), Some("40"));

    drop(rx);
    drop(stalled);
    writer.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

/// Dropping the socket mid-stream (no UNSUBSCRIBE, no QUIT) releases the
/// subscription server-side, and later feeds start clean.
#[test]
fn disconnect_mid_stream_releases_the_subscription() {
    let (server, handle) = staged_net(ServerConfig { partitions: 1, ..ServerConfig::default() });
    let mut writer = connect(&handle);
    writer.query("CREATE TABLE t (k INT, v INT)").unwrap();

    let mut sub_conn = connect(&handle);
    let mut feed = sub_conn.subscribe("t", None).unwrap();
    writer.query("INSERT INTO t VALUES (1, 1)").unwrap();
    // The feed is live (one change received), then the client vanishes.
    assert_eq!(feed.next_change().unwrap(), change(ChangeOp::Insert, 1, 1));
    drop(sub_conn);

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.reactivity_hub().stats().connected != 0 {
        assert!(Instant::now() < deadline, "disconnect never released the subscription");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The STATS gauge agrees, and a fresh feed sees only what commits
    // after it subscribes.
    let stats = writer.stats().unwrap();
    let row = stats
        .rows
        .iter()
        .find(|r| r[0].as_deref() == Some("subscriptions"))
        .expect("subscriptions row in STATS");
    assert_eq!(row[5].as_deref(), Some("0"), "connected gauge (cohorts column) back to zero");

    let mut again = connect(&handle);
    let feed = again.subscribe("t", None).unwrap();
    writer.query("INSERT INTO t VALUES (2, 2)").unwrap();
    let tail = feed.unsubscribe().unwrap();
    assert_eq!(tail, vec![change(ChangeOp::Insert, 2, 2)]);
    again.quit().unwrap();
    writer.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Randomized interleaving proptest
// ---------------------------------------------------------------------------

/// One writer's script: a list of transactions, each `(commit, values)`.
/// Writer `w` inserts keys with parity `w` (globally unique), so every
/// received change maps back to exactly one (writer, transaction, op).
type Script = Vec<(bool, Vec<i64>)>;

/// The changes a script is expected to contribute, in that writer's
/// commit order, as `(k, v)` pairs.
fn expected(w: usize, script: &Script) -> Vec<(i64, i64)> {
    let mut key = w as i64;
    let mut out = Vec::new();
    for (commit, values) in script {
        for v in values {
            if *commit {
                out.push((key, *v));
            }
            key += 2;
        }
    }
    out
}

fn run_script(client: &mut Client, w: usize, script: &Script) {
    let mut key = w as i64;
    for (commit, values) in script {
        client.begin().unwrap();
        for v in values {
            client.query(&format!("INSERT INTO t VALUES ({key}, {v})")).unwrap();
            key += 2;
        }
        if *commit {
            client.commit().unwrap();
        } else {
            client.rollback().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// However two concurrent writers interleave commits and aborts, each
    /// feed sees committed transactions only, whole (all-or-nothing, each
    /// transaction's changes contiguous), in a single global commit order
    /// consistent with every writer's issue order — and a `WHERE` feed
    /// sees exactly the passing subset of that same sequence, in the same
    /// order.
    #[test]
    fn feeds_see_committed_whole_transactions_in_commit_order(
        script_a in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(0i64..100, 1..4)), 1..5),
        script_b in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(0i64..100, 1..4)), 1..5),
        threshold in 0i64..100,
    ) {
        let (server, handle) =
            staged_net(ServerConfig { partitions: 2, ..ServerConfig::default() });
        let mut setup = connect(&handle);
        setup.query("CREATE TABLE t (k INT, v INT)").unwrap();

        let mut plain_conn = connect(&handle);
        let plain_feed = plain_conn.subscribe("t", None).unwrap();
        let mut where_conn = connect(&handle);
        let where_feed =
            where_conn.subscribe("t", Some(&format!("v >= {threshold}"))).unwrap();

        // Two writers race on their own connections.
        let scripts = [script_a, script_b];
        std::thread::scope(|scope| {
            for (w, script) in scripts.iter().enumerate() {
                let handle = &handle;
                scope.spawn(move || {
                    let mut c = connect(handle);
                    run_script(&mut c, w, script);
                    c.quit().unwrap();
                });
            }
        });

        // Both writers have committed (or aborted) everything: the
        // unsubscribe drains deliver each feed's complete history.
        let plain = plain_feed.unsubscribe().unwrap();
        let filtered = where_feed.unsubscribe().unwrap();

        let decoded: Vec<(i64, i64)> = plain
            .iter()
            .map(|c| {
                assert_eq!(c.table, "t");
                assert_eq!(c.op, ChangeOp::Insert);
                (
                    c.fields[0].as_ref().unwrap().parse::<i64>().unwrap(),
                    c.fields[1].as_ref().unwrap().parse::<i64>().unwrap(),
                )
            })
            .collect();

        // Committed-only and complete: per-writer projection preserves
        // that writer's issue order exactly; together the two projections
        // cover every received change, so nothing extra ever streams.
        for (w, script) in scripts.iter().enumerate() {
            let got: Vec<(i64, i64)> = decoded
                .iter()
                .copied()
                .filter(|(k, _)| (k % 2) as usize == w)
                .collect();
            prop_assert_eq!(got, expected(w, script), "writer {} projection", w);
        }

        // All-or-nothing and atomic: each transaction's changes form one
        // contiguous block of the global sequence.
        let mut txn_of = std::collections::HashMap::new();
        for (w, script) in scripts.iter().enumerate() {
            let mut key = w as i64;
            for (t, (_, values)) in script.iter().enumerate() {
                for _ in values {
                    txn_of.insert(key, (w, t));
                    key += 2;
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut current = None;
        for (k, _) in &decoded {
            let txn = txn_of[k];
            if current != Some(txn) {
                prop_assert!(
                    seen.insert(txn),
                    "transaction {:?} split across the feed: {:?}", txn, decoded
                );
                current = Some(txn);
            }
        }

        // The WHERE feed is the exact passing subsequence of the same
        // global order.
        let want: Vec<Change> = plain
            .iter()
            .filter(|c| {
                c.fields[1].as_ref().unwrap().parse::<i64>().unwrap() >= threshold
            })
            .cloned()
            .collect();
        prop_assert_eq!(filtered, want);

        setup.quit().unwrap();
        plain_conn.quit().unwrap();
        where_conn.quit().unwrap();
        handle.shutdown();
        server.shutdown();
    }
}
