//! Network front-end tests: the staged-vs-threaded differential over real
//! TCP sockets (same SQL script, identical responses — including the
//! aborted-transaction error path), connection lifecycle (abort-on-
//! disconnect, max_connections admission), and the `net` stage's stats.

use staged_db::dbclient::{Client, ClientError, QueryResult};
use staged_db::planner::PlannerConfig;
use staged_db::server::net::{self, NetConfig, NetHandle};
use staged_db::server::{ServerConfig, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, MemDisk};
use staged_db::wire::ErrorCode;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn fresh_catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 1024)))
}

fn listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port")
}

/// Start a staged server behind a TCP front end on an ephemeral port.
fn staged_net(partitions: usize) -> (Arc<StagedServer>, NetHandle) {
    let server =
        StagedServer::new(fresh_catalog(), ServerConfig { partitions, ..Default::default() });
    let handle =
        net::serve(listener(), Arc::clone(&server), NetConfig::default()).expect("serve staged");
    (server, handle)
}

/// Start a threaded server behind a TCP front end on an ephemeral port.
fn threaded_net(pool: usize) -> (Arc<ThreadedServer>, NetHandle) {
    let server = Arc::new(ThreadedServer::new(fresh_catalog(), pool, PlannerConfig::default()));
    let handle =
        net::serve(listener(), Arc::clone(&server), NetConfig::default()).expect("serve threaded");
    (server, handle)
}

fn connect(handle: &NetHandle) -> Client {
    Client::connect_timeout(handle.local_addr(), Duration::from_secs(5)).expect("connect")
}

/// Normalised per-statement outcome for the differential: either the sorted
/// result set + tag, or the stable error code.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Ok { columns: Vec<(String, String)>, rows: Vec<Vec<Option<String>>>, tag: String },
    Err(ErrorCode),
}

fn outcome(res: Result<QueryResult, ClientError>) -> Outcome {
    match res {
        Ok(mut out) => {
            // Row order is an engine scheduling artifact (pages are pushed
            // partition-parallel), not a protocol guarantee; sort before
            // diffing, as the in-process equivalence suite does.
            out.rows.sort();
            Outcome::Ok { columns: out.columns, rows: out.rows, tag: out.tag }
        }
        Err(ClientError::Server { code, .. }) => Outcome::Err(code),
        Err(other) => panic!("transport/protocol failure: {other}"),
    }
}

/// The differential script. Covers DDL, multi-row DML, SELECT with rows,
/// EXPLAIN-free reads, a committed transaction, a rolled-back transaction,
/// and the aborted-transaction error path (failed statement inside BEGIN →
/// TXN_ABORTED until ROLLBACK).
const SCRIPT: &[&str] = &[
    "CREATE TABLE kv (k INT, v VARCHAR(16))",
    "INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')",
    "SELECT k, v FROM kv ORDER BY k",
    "SELEC syntax error",
    "SELECT * FROM missing",
    "BEGIN",
    "UPDATE kv SET v = 'TWO' WHERE k = 2",
    "COMMIT",
    "SELECT v FROM kv WHERE k = 2",
    "BEGIN",
    "DELETE FROM kv WHERE k = 1",
    "ROLLBACK",
    "SELECT COUNT(*) FROM kv",
    // The aborted-transaction path: division by zero fails the UPDATE,
    // which aborts the transaction server-side; the session then refuses
    // everything until the client acknowledges with ROLLBACK.
    "BEGIN",
    "UPDATE kv SET k = k / 0",
    "INSERT INTO kv VALUES (9, 'nine')",
    "SELECT COUNT(*) FROM kv",
    "ROLLBACK",
    "SELECT COUNT(*) FROM kv",
    "COMMIT",
];

#[test]
fn staged_and_threaded_answer_identically_over_tcp() {
    let (staged, staged_handle) = staged_net(2);
    let (threaded, threaded_handle) = threaded_net(4);
    let mut a = connect(&staged_handle);
    let mut b = connect(&threaded_handle);
    for stmt in SCRIPT {
        let oa = outcome(a.query(stmt));
        let ob = outcome(b.query(stmt));
        assert_eq!(oa, ob, "divergence at statement {stmt:?}");
    }
    // The failed-transaction statements must have produced the stable
    // wire codes, not just *matching* ones.
    let mut c = connect(&staged_handle);
    c.query("BEGIN").unwrap();
    match c.query("UPDATE kv SET k = k / 0") {
        Err(ClientError::Server { code: ErrorCode::Exec, .. }) => {}
        other => panic!("want EXEC, got {other:?}"),
    }
    match c.query("SELECT COUNT(*) FROM kv") {
        Err(ClientError::Server { code: ErrorCode::TxnAborted, .. }) => {}
        other => panic!("want TXN_ABORTED, got {other:?}"),
    }
    c.rollback().unwrap();
    a.quit().unwrap();
    b.quit().unwrap();
    drop(c);
    staged_handle.shutdown();
    threaded_handle.shutdown();
    staged.shutdown();
    threaded.shutdown();
}

#[test]
fn ping_stats_and_values_round_trip() {
    let (server, handle) = staged_net(1);
    let mut c = connect(&handle);
    c.ping().unwrap();
    c.query("CREATE TABLE odd (s VARCHAR(64))").unwrap();
    // Tabs, newlines and backslashes survive the line-framed wire.
    // (Sent as a single line: the SQL string uses no literal newline.)
    c.query("INSERT INTO odd VALUES ('a\tb')").unwrap();
    c.query("INSERT INTO odd VALUES ('back\\slash')").unwrap();
    let out = c.query("SELECT s FROM odd ORDER BY s").unwrap();
    let got: Vec<String> = out.rows.iter().map(|r| r[0].clone().unwrap()).collect();
    assert!(got.contains(&"a\tb".to_string()));
    assert!(got.contains(&"back\\slash".to_string()));

    // STATS exposes the admission stage, its idle_polls column and the
    // cohort-scheduling columns (PROTOCOL.md §6).
    let stats = c.stats().unwrap();
    let names: Vec<String> = stats.columns.iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(
        names,
        [
            "stage",
            "processed",
            "errors",
            "retries",
            "idle_polls",
            "cohorts",
            "max_cohort",
            "preempts",
            "batch",
            "queued",
            "workers"
        ]
    );
    let net_row =
        stats.rows.iter().find(|r| r[0].as_deref() == Some("net")).expect("net stage row in STATS");
    let processed: i64 = net_row[1].as_ref().unwrap().parse().unwrap();
    assert!(processed >= 4, "net stage admitted the TCP statements, got {processed}");
    let batch: i64 = net_row[8].as_ref().unwrap().parse().unwrap();
    assert_eq!(batch, 1, "the net admission stage serves one packet per visit");
    let parse_row = stats
        .rows
        .iter()
        .find(|r| r[0].as_deref() == Some("parse"))
        .expect("parse stage row in STATS");
    let cohorts: i64 = parse_row[5].as_ref().unwrap().parse().unwrap();
    assert!(cohorts >= 1, "pipeline stages meter their queue visits");
    let parse_batch: i64 = parse_row[8].as_ref().unwrap().parse().unwrap();
    assert!(parse_batch > 1, "pipeline stages default to batched visits");
    // The synthetic exchange row surfaces knob (c): its batch column is
    // the engine's live exchange page size.
    let exch_row = stats
        .rows
        .iter()
        .find(|r| r[0].as_deref() == Some("exchange"))
        .expect("exchange row in STATS");
    let page: i64 = exch_row[8].as_ref().unwrap().parse().unwrap();
    assert!(page >= 1, "exchange row carries the live page size, got {page}");
    c.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

#[test]
fn disconnect_mid_transaction_aborts_and_releases_locks() {
    let (server, handle) = staged_net(1);
    let mut setup = connect(&handle);
    setup.query("CREATE TABLE t (x INT)").unwrap();
    setup.query("INSERT INTO t VALUES (1)").unwrap();

    let mut locker = connect(&handle);
    locker.begin().unwrap();
    locker.query("UPDATE t SET x = 2 WHERE x = 1").unwrap();
    assert_eq!(server.active_txns(), 1);
    // Hard disconnect (no QUIT, no COMMIT): drop the socket.
    drop(locker);

    // The server must notice, abort, and release the partition lock so
    // another client's write can proceed; the update must be undone.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.active_txns() != 0 {
        assert!(std::time::Instant::now() < deadline, "abort-on-disconnect never fired");
        std::thread::sleep(Duration::from_millis(10));
    }
    let out = setup.query("SELECT x FROM t").unwrap();
    assert_eq!(out.rows, vec![vec![Some("1".to_string())]]);
    setup.query("UPDATE t SET x = 5 WHERE x = 1").unwrap();
    setup.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

#[test]
fn connection_limit_refuses_with_overloaded() {
    let server = StagedServer::new(fresh_catalog(), ServerConfig::default());
    let handle = net::serve(
        listener(),
        Arc::clone(&server),
        NetConfig { max_connections: 1, ..Default::default() },
    )
    .unwrap();
    let mut first = connect(&handle);
    first.ping().unwrap();
    // Second connection is greeted then refused with the stable code.
    let mut second = connect(&handle);
    match second.ping() {
        Err(ClientError::Server { code: ErrorCode::Overloaded, .. }) | Err(ClientError::Io(_)) => {}
        other => panic!("want OVERLOADED refusal, got {other:?}"),
    }
    assert!(handle.stats().rejected >= 1);
    first.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (server, handle) = staged_net(1);
    let mut c = connect(&handle);
    match c.query("") {
        Err(ClientError::Server { code: ErrorCode::Proto, .. }) => {}
        other => panic!("empty QUERY should be a protocol error, got {other:?}"),
    }
    // The connection survives a protocol error and keeps serving.
    c.ping().unwrap();
    c.query("CREATE TABLE p (x INT)").unwrap();
    c.query("INSERT INTO p VALUES (2)").unwrap();
    assert_eq!(c.query("SELECT x FROM p").unwrap().rows, vec![vec![Some("2".to_string())]]);
    c.quit().unwrap();
    handle.shutdown();
    server.shutdown();
}

/// `CHECKPOINT` over the wire: both backends run it, answer `OK` with a
/// `CHECKPOINT …` message, and the staged server's STATS afterwards shows
/// the checkpoint stage plus the synthetic `wal` row with a truncated
/// segment count.
#[test]
fn checkpoint_command_works_on_both_backends() {
    let (server, handle) = staged_net(2);
    let mut c = connect(&handle);
    c.query("CREATE TABLE ck (k INT, v INT)").unwrap();
    for i in 0..20 {
        c.query(&format!("INSERT INTO ck VALUES ({i}, {})", i * 2)).unwrap();
    }
    let out = c.checkpoint().unwrap();
    assert!(
        out.tag.starts_with("CHECKPOINT"),
        "checkpoint reply should start with CHECKPOINT, got {:?}",
        out.tag
    );
    // Data still queryable after the quiesce/snapshot/truncate cycle.
    let count = c.query("SELECT COUNT(*) FROM ck").unwrap();
    assert_eq!(count.rows[0][0].as_deref(), Some("20"));
    // STATS now carries the checkpoint stage (it processed our packet)
    // and the wal row (processed = pages written, queued = live segments,
    // batch = pages per segment).
    let stats = c.stats().unwrap();
    let ck_row = stats
        .rows
        .iter()
        .find(|r| r[0].as_deref() == Some("checkpoint"))
        .expect("checkpoint stage row in STATS");
    let processed: i64 = ck_row[1].as_ref().unwrap().parse().unwrap();
    assert!(processed >= 1, "the checkpoint stage served our packet");
    let wal_row =
        stats.rows.iter().find(|r| r[0].as_deref() == Some("wal")).expect("wal row in STATS");
    let pages_written: i64 = wal_row[1].as_ref().unwrap().parse().unwrap();
    assert!(pages_written >= 1, "wal row counts written pages");
    let live_segments: i64 = wal_row[9].as_ref().unwrap().parse().unwrap();
    assert!(live_segments >= 1, "wal row reports live segments");
    c.quit().unwrap();
    handle.shutdown();
    server.shutdown();

    // The monolithic baseline answers the same command.
    let (threaded, handle) = threaded_net(2);
    let mut c = connect(&handle);
    c.query("CREATE TABLE ck (k INT)").unwrap();
    c.query("INSERT INTO ck VALUES (1), (2)").unwrap();
    let out = c.checkpoint().unwrap();
    assert!(out.tag.starts_with("CHECKPOINT"), "threaded: got {:?}", out.tag);
    let count = c.query("SELECT COUNT(*) FROM ck").unwrap();
    assert_eq!(count.rows[0][0].as_deref(), Some("2"));
    c.quit().unwrap();
    handle.shutdown();
    threaded.shutdown();
}
