//! MVCC snapshot-read tests: `BEGIN READ ONLY` sessions on both servers,
//! the snapshot-vs-quiesced differential at 1/2/4 partitions, the
//! readers-never-block-writers acceptance path, DML refusal, checkpoint
//! version GC, and a proptest that a reader opened mid-transfer always
//! sees a balanced sum.

use proptest::prelude::*;
use staged_db::planner::PlannerConfig;
use staged_db::server::types::ExecutionMode;
use staged_db::server::{ServerConfig, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, Column, DataType, MemDisk, Schema, Tuple, Value};
use std::sync::Arc;
use std::time::Duration;

const ACCOUNTS: i64 = 16;
const BALANCE: i64 = 100;

fn catalog_with_accounts(parts: usize) -> Arc<Catalog> {
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
        parts,
        0,
    )
    .unwrap();
    let t = cat.table("accounts").unwrap();
    for i in 0..ACCOUNTS {
        t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(BALANCE)])).unwrap();
    }
    cat.analyze_table("accounts").unwrap();
    cat
}

fn staged(cat: &Arc<Catalog>, parts: usize) -> Arc<StagedServer> {
    StagedServer::new(
        Arc::clone(cat),
        ServerConfig {
            mode: ExecutionMode::Staged,
            partitions: parts,
            lock_timeout: Duration::from_millis(400),
            ..Default::default()
        },
    )
}

fn threaded(cat: &Arc<Catalog>) -> ThreadedServer {
    ThreadedServer::with_lock_timeout(
        Arc::clone(cat),
        2,
        PlannerConfig::default(),
        Duration::from_millis(400),
    )
}

/// Deterministic transfer schedule (xorshift) shared across runs.
fn transfers(seed: u64, n: usize) -> Vec<(i64, i64)> {
    let mut state = 0x9e3779b97f4a7c15u64 ^ (seed + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n).map(|_| ((next() % ACCOUNTS as u64) as i64, (next() % ACCOUNTS as u64) as i64)).collect()
}

fn apply_transfer(exec: &dyn Fn(&str) -> staged_db::server::Response, from: i64, to: i64) {
    exec("BEGIN").unwrap();
    exec(&format!("UPDATE accounts SET bal = bal - 10 WHERE id = {from}")).unwrap();
    exec(&format!("UPDATE accounts SET bal = bal + 10 WHERE id = {to}")).unwrap();
    exec("COMMIT").unwrap();
}

/// Like [`apply_transfer`] but for *concurrent* writers, whose transfers
/// touch partitions in arbitrary order and can deadlock against each
/// other. A timed-out statement aborts the whole transaction (money
/// stays balanced), so the transfer is simply retried until it commits.
fn apply_transfer_retrying(exec: &dyn Fn(&str) -> staged_db::server::Response, from: i64, to: i64) {
    loop {
        if exec("BEGIN").is_err() {
            continue;
        }
        let ok = exec(&format!("UPDATE accounts SET bal = bal - 10 WHERE id = {from}")).is_ok()
            && exec(&format!("UPDATE accounts SET bal = bal + 10 WHERE id = {to}")).is_ok();
        if ok && exec("COMMIT").is_ok() {
            return;
        }
        let _ = exec("ROLLBACK");
    }
}

/// The differential: after a committed transfer workload, a `BEGIN READ
/// ONLY` snapshot scan must return exactly what a quiesced 2PL scan
/// returns — at 1, 2, and 4 partitions, on both servers.
#[test]
fn snapshot_scan_matches_quiesced_scan_across_partition_counts() {
    let queries = [
        "SELECT id, bal FROM accounts ORDER BY id",
        "SELECT SUM(bal), COUNT(*) FROM accounts",
        "SELECT bal, COUNT(*) FROM accounts GROUP BY bal ORDER BY bal",
    ];
    for parts in [1usize, 2, 4] {
        for kind in ["staged", "threaded"] {
            let cat = catalog_with_accounts(parts);
            let run = |exec: &dyn Fn(&str) -> staged_db::server::Response| {
                for (from, to) in transfers(7, 24) {
                    apply_transfer(exec, from, to);
                }
                // Quiesced: no writer is live, so the plain (2PL-path)
                // scan is the ground truth the snapshot must reproduce.
                for q in queries {
                    let truth = exec(q).unwrap();
                    exec("BEGIN READ ONLY").unwrap();
                    let snap = exec(q).unwrap();
                    exec("COMMIT").unwrap();
                    assert_eq!(
                        snap.rows.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
                        truth.rows.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
                        "{kind} snapshot diverged from quiesced scan at {parts} parts on {q}"
                    );
                }
            };
            match kind {
                "staged" => {
                    let s = staged(&cat, parts);
                    let sess = s.session();
                    run(&|sql| sess.execute_sql(sql));
                    drop(sess);
                    s.shutdown();
                }
                _ => {
                    let s = threaded(&cat);
                    let sess = s.session();
                    run(&|sql| sess.execute_sql(sql));
                    drop(sess);
                    s.shutdown();
                }
            }
        }
    }
}

/// The acceptance path: a long-running read-only transaction keeps
/// scanning — and keeps seeing its snapshot — while concurrent transfers
/// commit underneath it. The reader never visits the lock table, so it
/// neither waits for writers nor makes them wait.
#[test]
fn long_running_read_only_scan_survives_concurrent_commits() {
    let cat = catalog_with_accounts(2);
    let s = staged(&cat, 2);
    let reader = s.session();
    reader.execute_sql("BEGIN READ ONLY").unwrap();
    let before = reader.execute_sql("SELECT id, bal FROM accounts ORDER BY id").unwrap();

    // Writers commit transfers while the reader's transaction stays open.
    std::thread::scope(|scope| {
        for seed in 0..3u64 {
            let server = &s;
            scope.spawn(move || {
                let sess = server.session();
                for (from, to) in transfers(seed, 8) {
                    apply_transfer_retrying(&|sql| sess.execute_sql(sql), from, to);
                }
            });
        }
        // Interleave reads with the writers: every scan completes (no
        // lock waits) and reproduces the pinned snapshot exactly.
        for _ in 0..6 {
            let again = reader.execute_sql("SELECT id, bal FROM accounts ORDER BY id").unwrap();
            assert_eq!(
                again.rows.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
                before.rows.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
                "read-only snapshot drifted while writers committed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    reader.execute_sql("COMMIT").unwrap();
    // A fresh statement sees the post-transfer state, and no money leaked.
    let out = reader.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
    assert_eq!(out.rows[0].to_string(), format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE));
    drop(reader);
    s.shutdown();
}

/// A snapshot reader ignores exclusive partition locks entirely: it
/// completes while an uncommitted writer holds the lock (a plain scan
/// would run, but a conflicting writer would time out), and it sees the
/// pre-update image rather than the writer's uncommitted bytes.
#[test]
fn read_only_reader_ignores_uncommitted_writer_locks() {
    let cat = catalog_with_accounts(1);
    let s = staged(&cat, 1);
    let writer = s.session();
    writer.execute_sql("BEGIN").unwrap();
    writer.execute_sql("UPDATE accounts SET bal = 999 WHERE id = 3").unwrap();

    let reader = s.session();
    reader.execute_sql("BEGIN READ ONLY").unwrap();
    let out = reader.execute_sql("SELECT bal FROM accounts WHERE id = 3").unwrap();
    assert_eq!(out.rows[0].to_string(), format!("[{BALANCE}]"), "reader saw uncommitted write");

    writer.execute_sql("COMMIT").unwrap();
    // Still the old image: the snapshot predates the commit.
    let out = reader.execute_sql("SELECT bal FROM accounts WHERE id = 3").unwrap();
    assert_eq!(out.rows[0].to_string(), format!("[{BALANCE}]"));
    reader.execute_sql("COMMIT").unwrap();
    // A new snapshot sees the committed update.
    reader.execute_sql("BEGIN READ ONLY").unwrap();
    let out = reader.execute_sql("SELECT bal FROM accounts WHERE id = 3").unwrap();
    assert_eq!(out.rows[0].to_string(), "[999]");
    reader.execute_sql("COMMIT").unwrap();
    drop(reader);
    drop(writer);
    s.shutdown();
}

/// DML and DDL are refused inside a read-only transaction with the
/// `READ_ONLY` error, on both servers, and the session stays usable.
#[test]
fn read_only_transactions_refuse_writes() {
    for kind in ["staged", "threaded"] {
        let cat = catalog_with_accounts(1);
        let check = |exec: &dyn Fn(&str) -> staged_db::server::Response| {
            exec("BEGIN READ ONLY").unwrap();
            for sql in [
                "INSERT INTO accounts VALUES (99, 1)",
                "UPDATE accounts SET bal = 0 WHERE id = 1",
                "DELETE FROM accounts WHERE id = 1",
                "CREATE TABLE t2 (x INT)",
            ] {
                let err = exec(sql).unwrap_err();
                assert!(err.to_string().contains("read-only"), "{kind} {sql}: {err}");
            }
            // Reads still work and the txn ends cleanly.
            exec("SELECT COUNT(*) FROM accounts").unwrap();
            assert_eq!(exec("COMMIT").unwrap().message, "COMMIT");
            // Nothing leaked through.
            let out = exec("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
            assert_eq!(out.rows[0].to_string(), format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE));
        };
        match kind {
            "staged" => {
                let s = staged(&cat, 1);
                let sess = s.session();
                check(&|sql| sess.execute_sql(sql));
                drop(sess);
                s.shutdown();
            }
            _ => {
                let s = threaded(&cat);
                let sess = s.session();
                check(&|sql| sess.execute_sql(sql));
                drop(sess);
                s.shutdown();
            }
        }
    }
}

/// ROLLBACK of a read-only transaction is accepted (it has nothing to
/// undo) and releases the snapshot pin.
#[test]
fn read_only_rollback_is_accepted() {
    let cat = catalog_with_accounts(1);
    let s = staged(&cat, 1);
    let sess = s.session();
    sess.execute_sql("BEGIN READ ONLY").unwrap();
    sess.execute_sql("SELECT COUNT(*) FROM accounts").unwrap();
    assert_eq!(sess.execute_sql("ROLLBACK").unwrap().message, "ROLLBACK");
    // The pin is gone: a checkpoint may now vacuum everything dead.
    assert_eq!(cat.oracle().pins(), 0);
    drop(sess);
    s.shutdown();
}

/// Checkpoint vacuums dead versions: after committed updates, the
/// version overlay holds dead before-images; CHECKPOINT reclaims them
/// and reports the count in its message.
#[test]
fn checkpoint_reclaims_dead_versions() {
    for kind in ["staged", "threaded"] {
        let cat = catalog_with_accounts(1);
        let (msg, dead_before) = match kind {
            "staged" => {
                let s = staged(&cat, 1);
                let sess = s.session();
                for (from, to) in transfers(3, 8) {
                    apply_transfer(&|sql| sess.execute_sql(sql), from, to);
                }
                let dead = cat.table("accounts").unwrap().versions.stats().dead;
                let msg = s.checkpoint().unwrap().message;
                drop(sess);
                s.shutdown();
                (msg, dead)
            }
            _ => {
                let s = threaded(&cat);
                let sess = s.session();
                for (from, to) in transfers(3, 8) {
                    apply_transfer(&|sql| sess.execute_sql(sql), from, to);
                }
                let dead = cat.table("accounts").unwrap().versions.stats().dead;
                let msg = s.checkpoint().unwrap().message;
                drop(sess);
                s.shutdown();
                (msg, dead)
            }
        };
        assert!(dead_before > 0, "{kind}: transfers should leave dead versions");
        assert!(msg.contains("versions_gc="), "{kind}: {msg}");
        let gc: u64 = msg.split("versions_gc=").nth(1).unwrap().trim().parse().unwrap();
        assert!(gc > 0, "{kind}: checkpoint reclaimed nothing ({msg})");
        let after = cat.table("accounts").unwrap().versions.stats();
        assert_eq!(after.dead, 0, "{kind}: dead versions survived checkpoint");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A reader that opens its snapshot between any two committed
    /// transfers sees a balanced sum: transfers move money but never
    /// create or destroy it, and a snapshot never observes half of one.
    #[test]
    fn reader_opened_mid_transfer_sees_balanced_sum(
        moves in prop::collection::vec((0..ACCOUNTS, 0..ACCOUNTS), 1..12),
        open_at in 0usize..12,
    ) {
        let cat = catalog_with_accounts(2);
        let s = staged(&cat, 2);
        let writer = s.session();
        let reader = s.session();
        let open_at = open_at.min(moves.len());
        for (i, (from, to)) in moves.iter().enumerate() {
            if i == open_at {
                reader.execute_sql("BEGIN READ ONLY").unwrap();
            }
            apply_transfer(&|sql| writer.execute_sql(sql), *from, *to);
        }
        if open_at >= moves.len() {
            reader.execute_sql("BEGIN READ ONLY").unwrap();
        }
        let out = reader.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
        prop_assert_eq!(
            out.rows[0].to_string(),
            format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE)
        );
        reader.execute_sql("COMMIT").unwrap();
        drop(reader);
        drop(writer);
        s.shutdown();
    }
}
