//! Full-stack transaction tests: session-scoped BEGIN/COMMIT/ROLLBACK
//! through both servers, rollback byte-identity, abort-on-drop, lock
//! timeouts, and the staged-vs-volcano differential transfer workload.

use staged_db::planner::PlannerConfig;
use staged_db::server::types::ExecutionMode;
use staged_db::server::{ServerConfig, ServerError, StagedServer, ThreadedServer};
use staged_db::storage::{BufferPool, Catalog, Column, DataType, MemDisk, Schema};
use std::sync::Arc;
use std::time::Duration;

fn catalog_with_accounts(parts: usize, accounts: i64, balance: i64) -> Arc<Catalog> {
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
        parts,
        0,
    )
    .unwrap();
    let t = cat.table("accounts").unwrap();
    for i in 0..accounts {
        t.heap
            .insert(&staged_db::storage::Tuple::new(vec![
                staged_db::storage::Value::Int(i),
                staged_db::storage::Value::Int(balance),
            ]))
            .unwrap();
    }
    // Bulk-loads the preloaded rows into per-partition B+trees.
    cat.create_index("accounts_id", "accounts", "id").unwrap();
    cat.analyze_table("accounts").unwrap();
    cat
}

/// Per-partition sorted tuple encodings plus index probe results: the
/// "byte-identical" observable state of a table. The probe range covers
/// every key the test scripts touch, including rolled-back inserts.
fn table_fingerprint(cat: &Catalog, _accounts: i64) -> (Vec<Vec<Vec<u8>>>, Vec<usize>) {
    let t = cat.table("accounts").unwrap();
    let heap: Vec<Vec<Vec<u8>>> = (0..t.heap.partitions())
        .map(|p| {
            let mut v: Vec<Vec<u8>> =
                t.heap.scan_partition(p).map(|r| r.unwrap().1.encode()).collect();
            v.sort();
            v
        })
        .collect();
    let ix = cat.index_on(t.id, 0).unwrap();
    let probes: Vec<usize> = (0..1000).map(|k| ix.search(k).unwrap().len()).collect();
    (heap, probes)
}

fn staged(cat: &Arc<Catalog>, parts: usize, mode: ExecutionMode) -> Arc<StagedServer> {
    StagedServer::new(
        Arc::clone(cat),
        ServerConfig {
            mode,
            partitions: parts,
            lock_timeout: Duration::from_millis(400),
            ..Default::default()
        },
    )
}

fn threaded(cat: &Arc<Catalog>, workers: usize) -> ThreadedServer {
    ThreadedServer::with_lock_timeout(
        Arc::clone(cat),
        workers,
        PlannerConfig::default(),
        Duration::from_millis(400),
    )
}

/// BEGIN; mutate; ROLLBACK leaves heap and indexes byte-identical, at
/// 1/2/4 partitions, on both servers.
#[test]
fn rollback_is_byte_identical_across_partition_counts() {
    for parts in [1usize, 2, 4] {
        for server_kind in ["staged", "threaded"] {
            let cat = catalog_with_accounts(parts, 32, 100);
            let before = table_fingerprint(&cat, 32);
            let script = [
                "BEGIN",
                "INSERT INTO accounts VALUES (500, 1), (501, 2), (502, 3)",
                "UPDATE accounts SET bal = bal + 7 WHERE id = 3",
                "DELETE FROM accounts WHERE id < 5",
                "UPDATE accounts SET id = 900 WHERE id = 10",
                "ROLLBACK",
            ];
            match server_kind {
                "staged" => {
                    let s = staged(&cat, parts, ExecutionMode::Staged);
                    let sess = s.session();
                    for sql in script {
                        sess.execute_sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
                    }
                    assert_eq!(s.active_txns(), 0);
                    drop(sess);
                    s.shutdown();
                }
                _ => {
                    let s = threaded(&cat, 2);
                    let sess = s.session();
                    for sql in script {
                        sess.execute_sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
                    }
                    assert_eq!(s.active_txns(), 0);
                    drop(sess);
                    s.shutdown();
                }
            }
            assert_eq!(
                table_fingerprint(&cat, 32),
                before,
                "{server_kind} rollback not byte-identical at {parts} partitions"
            );
        }
    }
}

#[test]
fn commit_makes_changes_visible_and_durable_in_wal_order() {
    let cat = catalog_with_accounts(2, 8, 100);
    let s = staged(&cat, 2, ExecutionMode::Staged);
    let sess = s.session();
    sess.execute_sql("BEGIN").unwrap();
    sess.execute_sql("UPDATE accounts SET bal = 250 WHERE id = 1").unwrap();
    sess.execute_sql("COMMIT").unwrap();
    let out = s.execute_sql("SELECT bal FROM accounts WHERE id = 1").unwrap();
    assert_eq!(out.rows[0].to_string(), "[250]");
    assert_eq!(s.active_txns(), 0);
    drop(sess);
    s.shutdown();
}

#[test]
fn failed_statement_aborts_the_whole_transaction() {
    let cat = catalog_with_accounts(1, 8, 100);
    let s = threaded(&cat, 2);
    let sess = s.session();
    sess.execute_sql("BEGIN").unwrap();
    sess.execute_sql("UPDATE accounts SET bal = 1 WHERE id = 2").unwrap();
    // Schema violation: the statement fails, and with it the transaction.
    assert!(sess.execute_sql("INSERT INTO accounts VALUES ('oops', 3)").is_err());
    // The session is now in the failed-transaction state: further
    // statements refuse until the client acknowledges — critically, they
    // must NOT silently run as autocommit singletons.
    let err = sess.execute_sql("UPDATE accounts SET bal = 5 WHERE id = 3").unwrap_err();
    assert!(err.to_string().contains("aborted"), "got: {err}");
    // COMMIT acknowledges the failure; the server reports the rollback.
    assert_eq!(sess.execute_sql("COMMIT").unwrap().message, "ROLLBACK");
    // And the session is usable again.
    sess.execute_sql("BEGIN").unwrap();
    sess.execute_sql("COMMIT").unwrap();
    // The earlier in-transaction update was rolled back with it.
    let out = s.execute_sql("SELECT bal FROM accounts WHERE id = 2").unwrap();
    assert_eq!(out.rows[0].to_string(), "[100]");
    assert_eq!(s.active_txns(), 0);
    drop(sess);
    s.shutdown();
}

#[test]
fn txn_control_requires_a_session() {
    let cat = catalog_with_accounts(1, 4, 100);
    let s = staged(&cat, 1, ExecutionMode::Staged);
    assert!(matches!(s.execute_sql("BEGIN"), Err(ServerError::Sql(_))));
    assert!(matches!(s.execute_sql("COMMIT"), Err(ServerError::Sql(_))));
    assert!(matches!(s.execute_sql("ROLLBACK"), Err(ServerError::Sql(_))));
    s.shutdown();
}

/// Client disconnect with a transaction open aborts it: locks release,
/// writes undo. Regression test for abort-on-drop on both servers.
#[test]
fn dropping_a_session_aborts_its_transaction_and_releases_locks() {
    // Staged server.
    let cat = catalog_with_accounts(1, 4, 100);
    let s = staged(&cat, 1, ExecutionMode::Staged);
    let sess = s.session();
    sess.execute_sql("BEGIN").unwrap();
    sess.execute_sql("UPDATE accounts SET bal = 999 WHERE id = 1").unwrap();
    assert_eq!(s.active_txns(), 1);
    drop(sess); // disconnect mid-transaction
    assert_eq!(s.active_txns(), 0, "abort-on-drop must end the transaction");
    // The lock is free: a new writer succeeds well inside the lock timeout,
    // and sees the rolled-back value.
    let sess2 = s.session();
    sess2.execute_sql("BEGIN").unwrap();
    sess2.execute_sql("UPDATE accounts SET bal = bal + 1 WHERE id = 1").unwrap();
    sess2.execute_sql("COMMIT").unwrap();
    let out = s.execute_sql("SELECT bal FROM accounts WHERE id = 1").unwrap();
    assert_eq!(out.rows[0].to_string(), "[101]", "update applied over the rolled-back 100");
    drop(sess2);
    s.shutdown();

    // Threaded server.
    let cat = catalog_with_accounts(1, 4, 100);
    let s = threaded(&cat, 2);
    let sess = s.session();
    sess.execute_sql("BEGIN").unwrap();
    sess.execute_sql("UPDATE accounts SET bal = 999 WHERE id = 1").unwrap();
    assert_eq!(s.active_txns(), 1);
    drop(sess);
    assert_eq!(s.active_txns(), 0);
    let out = s.execute_sql("SELECT bal FROM accounts WHERE id = 1").unwrap();
    assert_eq!(out.rows[0].to_string(), "[100]");
    s.shutdown();
}

#[test]
fn conflicting_writer_times_out_and_aborts_without_wedging_the_holder() {
    let cat = catalog_with_accounts(1, 4, 100);
    let s = staged(&cat, 1, ExecutionMode::Staged);
    let sess = s.session();
    sess.execute_sql("BEGIN").unwrap();
    sess.execute_sql("UPDATE accounts SET bal = 7 WHERE id = 0").unwrap();
    // One-shot autocommit writer on the same partition: parked at the lock
    // stage until its deadline, then aborted.
    let err = s.execute_sql("UPDATE accounts SET bal = 8 WHERE id = 0").unwrap_err();
    assert!(err.to_string().contains("lock timeout"), "got: {err}");
    // The holder is unaffected and commits.
    sess.execute_sql("COMMIT").unwrap();
    let out = s.execute_sql("SELECT bal FROM accounts WHERE id = 0").unwrap();
    assert_eq!(out.rows[0].to_string(), "[7]");
    // And the aborted writer's retry now succeeds.
    s.execute_sql("UPDATE accounts SET bal = 8 WHERE id = 0").unwrap();
    let out = s.execute_sql("SELECT bal FROM accounts WHERE id = 0").unwrap();
    assert_eq!(out.rows[0].to_string(), "[8]");
    drop(sess);
    s.shutdown();
}

/// The differential OLTP workload: concurrent sessions transfer balance
/// between random accounts, committing or rolling back; money is neither
/// created nor destroyed. Run identically against the staged server (lock
/// stage + staged engine) and the threaded Volcano baseline.
#[test]
fn interleaved_transfers_preserve_the_sum_invariant_on_both_engines() {
    const ACCOUNTS: i64 = 16;
    const BALANCE: i64 = 100;
    const SESSIONS: usize = 4;
    const TRANSFERS: usize = 12;

    // Deterministic per-session statement streams (xorshift), shared by
    // both server runs so the workloads are identical.
    let plan_for = |session: usize| -> Vec<(i64, i64, bool)> {
        let mut state = 0x9e3779b97f4a7c15u64 ^ (session as u64 + 1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..TRANSFERS)
            .map(|_| {
                let from = (next() % ACCOUNTS as u64) as i64;
                let to = (next() % ACCOUNTS as u64) as i64;
                let commit = next() % 4 != 0; // 3 in 4 commit
                (from, to, commit)
            })
            .collect()
    };

    let run_session = |exec: &dyn Fn(&str) -> staged_db::server::Response,
                       plan: &[(i64, i64, bool)]| {
        for (from, to, commit) in plan {
            if exec("BEGIN").is_err() {
                continue;
            }
            let a = exec(&format!("UPDATE accounts SET bal = bal - 10 WHERE id = {from}"));
            let b = if a.is_ok() {
                exec(&format!("UPDATE accounts SET bal = bal + 10 WHERE id = {to}"))
            } else {
                a.clone()
            };
            if a.is_err() || b.is_err() {
                // A lock timeout aborted the transaction server-side; the
                // session is in the failed state until the client
                // acknowledges, so clear it before the next transfer.
                let _ = exec("ROLLBACK");
                continue;
            }
            let end = if *commit { "COMMIT" } else { "ROLLBACK" };
            let _ = exec(end);
        }
    };

    for parts in [1usize, 2] {
        // Staged server, staged engine, lock-manager stage.
        let cat = catalog_with_accounts(parts, ACCOUNTS, BALANCE);
        let server = staged(&cat, parts, ExecutionMode::Staged);
        std::thread::scope(|scope| {
            for sid in 0..SESSIONS {
                let server = &server;
                let plan = plan_for(sid);
                scope.spawn(move || {
                    let sess = server.session();
                    run_session(&|sql| sess.execute_sql(sql), &plan);
                });
            }
        });
        let out = server.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
        assert_eq!(
            out.rows[0].to_string(),
            format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE),
            "staged engine leaked money at {parts} partitions"
        );
        assert_eq!(server.active_txns(), 0);
        server.shutdown();

        // Threaded Volcano baseline, sequential lock acquisition.
        let cat = catalog_with_accounts(parts, ACCOUNTS, BALANCE);
        let server = threaded(&cat, SESSIONS);
        std::thread::scope(|scope| {
            for sid in 0..SESSIONS {
                let server = &server;
                let plan = plan_for(sid);
                scope.spawn(move || {
                    let sess = server.session();
                    run_session(&|sql| sess.execute_sql(sql), &plan);
                });
            }
        });
        let out = server.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
        assert_eq!(
            out.rows[0].to_string(),
            format!("[{}, {ACCOUNTS}]", ACCOUNTS * BALANCE),
            "volcano baseline leaked money at {parts} partitions"
        );
        assert_eq!(server.active_txns(), 0);
        server.shutdown();
    }
}
