//! # staged-server — the assembled DBMS
//!
//! Two complete servers over the same storage / SQL / planner / engine
//! substrate:
//!
//! * [`StagedServer`] — the paper's design (Figure 3): client requests are
//!   encapsulated into packets that flow through the five top-level stages
//!   **connect → parse → optimize → execute → disconnect**, each an
//!   independent queue + worker pool on a [`staged_core::StagedRuntime`].
//!   DDL and transaction-control statements bypass the optimizer, and
//!   prepared statements route straight from connect to execute, exactly
//!   the self-routing behaviours of §4.1. SELECT plans are executed on the
//!   staged page-push engine (or on the Volcano engine, configurable).
//!   Back-pressure on the connect queue gives the overload behaviour of
//!   §5.2 ([`StagedServer::try_submit`]).
//! * [`ThreadedServer`] — the work-centric baseline of §3.1: a pool of N
//!   threads, each picking a client from one input queue and running the
//!   entire pipeline as direct procedure calls.
//!
//! Both share [`pipeline`], so correctness is identical by construction and
//! the architectural comparison is apples-to-apples.
//!
//! The [`net`] module opens both servers to real TCP traffic with the text
//! wire protocol of `PROTOCOL.md`. Since PR 10 the front end is
//! **event-driven**: one reader thread multiplexes every connection with a
//! `poll(2)` readiness loop (the thread-per-connection reader is gone for
//! both servers), parses line frames incrementally from per-connection
//! buffers, and submits statements without blocking — the staged server
//! admits through its bounded `net` stage, the threaded baseline through
//! its pool queue, and when either queue is full the loop simply stops
//! reading that socket, so back-pressure reaches TCP. The two servers
//! still answer byte-identical responses.
//!
//! The [`replication`] module adds STAR-style asymmetric roles on top:
//! either server acts as a **primary**, shipping committed WAL records to
//! subscribed [`ReplicaServer`]s over a `REPLICATE` feed (a dedicated
//! `replication` stage on the staged server), while replicas apply the
//! feed transactionally and serve snapshot reads only. The [`reactivity`]
//! module reuses the same bounded-outbox machinery to serve `SUBSCRIBE`
//! change feeds: committed changes stream to clients as `CHANGE` lines,
//! whole transactions at a time, in commit order.

#![deny(missing_docs)]

pub mod net;
pub mod pipeline;
pub mod reactivity;
pub mod replication;
pub mod session;
pub mod staged_server;
pub mod threaded;
pub mod types;

pub use net::{serve, NetConfig, NetHandle, NetStats};
pub use reactivity::{ReactivityHub, SubscriptionStats};
pub use replication::{
    ReplicaConfig, ReplicaServer, ReplicaSession, ReplicaStatus, ReplicationHub,
};
pub use session::TxnRuntime;
pub use staged_server::{StagedServer, StagedSession};
pub use threaded::{ThreadedServer, ThreadedSession};
pub use types::{QueryOutput, Request, Response, ServerConfig, ServerError};
