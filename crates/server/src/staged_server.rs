//! The staged DBMS server (paper Figure 3, top row).

use crate::pipeline::{self, Exec, Parsed, PlannedAction};
use crate::session::TxnRuntime;
use crate::types::{ExecutionMode, Response, ServerConfig, ServerError};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use staged_cachesim::tracker::RefTracker;
use staged_core::monitor::StageStats;
use staged_core::prelude::*;
use staged_engine::context::ExecContext;
use staged_engine::staged::StagedEngine;
use staged_engine::txn::{LockKey, LockMode};
use staged_planner::PhysicalPlan;
use staged_sql::binder::BoundSelect;
use staged_storage::wal::Wal;
use staged_storage::{Catalog, MemDisk, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A packet travelling through the six top-level stages (connect → parse →
/// optimize → lock → execute → disconnect). The enum body is the query's
/// *backpack* — its state at the current point of execution.
pub struct SPacket {
    /// Transaction the statement runs under (0 = none: reads, DDL).
    xid: u64,
    /// Session the statement came from (None = one-shot autocommit).
    session: Option<u64>,
    /// True when `xid` is a statement-scoped implicit transaction that the
    /// disconnect stage must commit (success) or abort (failure).
    implicit: bool,
    /// Partition locks still to be granted by the lock stage.
    lock_keys: Vec<LockKey>,
    /// Deadline for lock acquisition (timeout-abort deadlock resolution).
    lock_deadline: Option<Instant>,
    body: PacketBody,
    reply: crossbeam::channel::Sender<Response>,
}

impl SPacket {
    fn new(
        body: PacketBody,
        session: Option<u64>,
        reply: crossbeam::channel::Sender<Response>,
    ) -> Self {
        Self {
            xid: 0,
            session,
            implicit: false,
            lock_keys: Vec::new(),
            lock_deadline: None,
            body,
            reply,
        }
    }
}

enum PacketBody {
    /// Fresh SQL text (entering connect).
    Raw(String),
    /// Prepared-statement invocation (connect routes it straight to
    /// execute).
    Prepared(String),
    /// Bound SELECT awaiting the optimizer.
    Bound(Box<BoundSelect>),
    /// Ready to execute.
    Action(Box<PlannedAction>),
    /// Completed; heading to disconnect for commit + reply.
    Finished(Box<Response>),
}

struct ServerShared {
    catalog: Arc<Catalog>,
    ctx: ExecContext,
    wal: Wal,
    engine: Arc<StagedEngine>,
    config: ServerConfig,
    prepared: Mutex<HashMap<String, Arc<(PhysicalPlan, Schema)>>>,
    tracker: Option<Arc<RefTracker>>,
    txn: TxnRuntime,
    served: AtomicU64,
}

/// The staged server.
pub struct StagedServer {
    shared: Arc<ServerShared>,
    runtime: StagedRuntime<SPacket>,
    net_id: StageId,
    connect_id: StageId,
}

macro_rules! stage_logic {
    ($name:ident, $shared:ident, $pkt:ident, $ctx:ident, $body:block) => {
        struct $name {
            $shared: Arc<ServerShared>,
        }
        impl StageLogic<SPacket> for $name {
            fn process(
                &self,
                mut $pkt: SPacket,
                $ctx: &StageCtx<'_, SPacket>,
            ) -> Result<(), StageError> {
                let $shared = &self.$shared;
                $body
            }
        }
    };
}

fn forward(ctx: &StageCtx<'_, SPacket>, stage: &str, pkt: SPacket) -> Result<(), StageError> {
    let id =
        ctx.stage_id_of(stage).ok_or_else(|| StageError::new(format!("missing stage {stage}")))?;
    ctx.send(id, pkt).map_err(|_| StageError::new("pipeline closed"))
}

fn finish(ctx: &StageCtx<'_, SPacket>, mut pkt: SPacket, res: Response) -> Result<(), StageError> {
    pkt.body = PacketBody::Finished(Box::new(res));
    forward(ctx, "disconnect", pkt)
}

stage_logic!(NetStage, shared, pkt, ctx, {
    // The network admission stage. Statements arriving over TCP enter the
    // pipeline here: connection readers enqueue one packet per decoded
    // statement, and this stage's bounded queue is the server's admission
    // buffer — when downstream stages fall behind, back-pressure propagates
    // through this queue to the reader threads and from there, via unread
    // socket bytes, to the clients themselves. Its StageStats therefore
    // meter exactly the network-admitted load (in-process submissions
    // enter at `connect` and are not counted here).
    let _ = shared;
    match std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new())) {
        PacketBody::Raw(sql) => {
            pkt.body = PacketBody::Raw(sql);
            forward(ctx, "connect", pkt)
        }
        other => {
            pkt.body = other;
            finish(ctx, pkt, Err(ServerError::Execution("bad packet at net".into())))
        }
    }
});

stage_logic!(ConnectStage, shared, pkt, ctx, {
    match std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new())) {
        PacketBody::Raw(sql) => {
            pkt.body = PacketBody::Raw(sql);
            forward(ctx, "parse", pkt)
        }
        PacketBody::Prepared(name) => {
            // Precompiled queries bypass parser and optimizer (§4.1).
            let found = shared.prepared.lock().get(&name).cloned();
            match found {
                Some(entry) => {
                    pkt.body = PacketBody::Action(Box::new(PlannedAction::Select {
                        plan: entry.0.clone(),
                        schema: entry.1.clone(),
                    }));
                    forward(ctx, "execute", pkt)
                }
                None => finish(ctx, pkt, Err(ServerError::UnknownPrepared(name))),
            }
        }
        other => {
            pkt.body = other;
            finish(ctx, pkt, Err(ServerError::Execution("bad packet at connect".into())))
        }
    }
});

stage_logic!(ParseStage, shared, pkt, ctx, {
    let PacketBody::Raw(sql) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at parse".into())));
    };
    match pipeline::parse_stage(&sql, &shared.catalog, shared.tracker.as_deref()) {
        Ok(Parsed::NeedsPlan(bound)) => {
            if let Err(e) = shared.txn.statement_xid(pkt.session) {
                return finish(ctx, pkt, Err(e));
            }
            pkt.body = PacketBody::Bound(bound);
            forward(ctx, "optimize", pkt)
        }
        Ok(Parsed::Action(action)) => {
            // DDL / DML bypass the optimizer (§4.1: "the query can route
            // itself from the connect stage directly to the execute stage").
            // DML makes one extra hop through the lock-manager stage first.
            // A session in the failed-transaction state refuses everything
            // except the COMMIT/ROLLBACK acknowledgement.
            if !matches!(action.as_ref(), PlannedAction::TxnControl(_)) {
                if let Err(e) = shared.txn.statement_xid(pkt.session) {
                    return finish(ctx, pkt, Err(e));
                }
            }
            let dest = if action.is_dml() { "lock" } else { "execute" };
            pkt.body = PacketBody::Action(action);
            forward(ctx, dest, pkt)
        }
        Err(e) => finish(ctx, pkt, Err(e)),
    }
});

stage_logic!(LockStage, shared, pkt, ctx, {
    // The lock-manager stage (paper Figure 3 names it as a first-class
    // OLTP stage). On first visit the packet joins its session's open
    // transaction — or starts a statement-scoped implicit one — and
    // computes its lock set; then it acquires locks incrementally in
    // sorted key order. A packet that hits a conflict requeues itself
    // (case iii of §4.1.1) until its deadline, at which point the
    // transaction is aborted: timeout-abort deadlock resolution.
    if pkt.lock_deadline.is_none() {
        match shared.txn.statement_xid(pkt.session) {
            Err(e) => return finish(ctx, pkt, Err(e)),
            Ok(Some(xid)) => {
                pkt.xid = xid;
                pkt.implicit = false;
            }
            Ok(None) => match shared.txn.mgr().begin(&shared.wal) {
                Ok(xid) => {
                    pkt.xid = xid;
                    pkt.implicit = true;
                }
                Err(e) => return finish(ctx, pkt, Err(ServerError::Execution(e.to_string()))),
            },
        }
        let keys = match &pkt.body {
            PacketBody::Action(action) => {
                pipeline::dml_lock_keys(action, &shared.catalog, &shared.config.planner)
            }
            _ => return finish(ctx, pkt, Err(ServerError::Execution("bad packet at lock".into()))),
        };
        pkt.lock_keys = keys;
        pkt.lock_deadline = Some(Instant::now() + shared.config.lock_timeout);
    }
    let locks = shared.txn.mgr().locks();
    while let Some(key) = pkt.lock_keys.first().copied() {
        if locks.try_lock(pkt.xid, key, LockMode::Exclusive) {
            pkt.lock_keys.remove(0);
        } else {
            break;
        }
    }
    if pkt.lock_keys.is_empty() {
        return forward(ctx, "execute", pkt);
    }
    if Instant::now() >= pkt.lock_deadline.unwrap_or_else(Instant::now) {
        shared.txn.fail_txn(pkt.session, pkt.xid, &shared.ctx, &shared.wal);
        return finish(
            ctx,
            pkt,
            Err(ServerError::Execution(
                "lock timeout: transaction aborted (presumed deadlock)".into(),
            )),
        );
    }
    // Parked behind a conflicting lock: yield and retry. The retry counter
    // makes contention visible in this stage's StageStats. The requeue must
    // never block on this stage's own full queue (the only dequeuer is this
    // worker — blocking here would deadlock the stage against itself), so
    // it tries the back non-blocking and falls back to the capacity-exempt
    // front slot under overload.
    ctx.record_retry();
    std::thread::sleep(std::time::Duration::from_micros(100));
    match ctx.try_send(ctx.stage_id, pkt) {
        Ok(()) => Ok(()),
        Err(EnqueueError::Full(pkt)) => {
            ctx.requeue(pkt).map_err(|_| StageError::new("pipeline closed"))
        }
        Err(EnqueueError::Closed(_)) => Err(StageError::new("pipeline closed")),
    }
});

stage_logic!(OptimizeStage, shared, pkt, ctx, {
    let PacketBody::Bound(bound) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at optimize".into())));
    };
    match pipeline::optimize_stage(&bound, &shared.catalog, &shared.config.planner) {
        Ok(action) => {
            pkt.body = PacketBody::Action(Box::new(action));
            forward(ctx, "execute", pkt)
        }
        Err(e) => finish(ctx, pkt, Err(e)),
    }
});

stage_logic!(ExecuteStage, shared, pkt, ctx, {
    let PacketBody::Action(action) =
        std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at execute".into())));
    };
    if let PlannedAction::TxnControl(stmt) = action.as_ref() {
        let res =
            pipeline::execute_txn_control(stmt, pkt.session, &shared.txn, &shared.ctx, &shared.wal);
        return finish(ctx, pkt, res);
    }
    let exec = match shared.config.mode {
        ExecutionMode::Volcano => Exec::Volcano,
        ExecutionMode::Staged => Exec::Staged(&shared.engine),
    };
    let txn = (pkt.xid != 0).then(|| shared.txn.mgr());
    let res = pipeline::execute_stage(*action, &shared.ctx, &shared.wal, pkt.xid, exec, txn);
    finish(ctx, pkt, res)
});

stage_logic!(DisconnectStage, shared, pkt, _ctx, {
    // "end Xaction, delete state, disconnect": statement-level commit for
    // implicit transactions (the Commit record's forced flush is the
    // atomic durability point), abort of the transaction on statement
    // failure, then the reply.
    let body = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()));
    let mut res = match body {
        PacketBody::Finished(r) => *r,
        _ => Err(ServerError::Execution("bad packet at disconnect".into())),
    };
    if pkt.xid != 0 {
        match (&res, pkt.implicit) {
            (Ok(_), true) => {
                if let Err(e) = shared.txn.mgr().commit(pkt.xid, &shared.ctx, &shared.wal) {
                    res = Err(ServerError::Execution(e.to_string()));
                }
            }
            (Err(_), _) => shared.txn.fail_txn(pkt.session, pkt.xid, &shared.ctx, &shared.wal),
            (Ok(_), false) => {} // explicit txn continues; COMMIT ends it
        }
    }
    shared.served.fetch_add(1, Ordering::Relaxed);
    let _ = pkt.reply.send(res);
    Ok(())
});

impl StagedServer {
    /// Build and start the staged server over an existing catalog.
    pub fn new(catalog: Arc<Catalog>, config: ServerConfig) -> Arc<Self> {
        Self::with_tracker(catalog, config, None)
    }

    /// Like [`new`](Self::new), with Table-1 reference instrumentation.
    pub fn with_tracker(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        tracker: Option<Arc<RefTracker>>,
    ) -> Arc<Self> {
        // Tables created through this server's DDL path inherit the
        // configured partition count (scoped to this server's context).
        let mut ctx = ExecContext::new(Arc::clone(&catalog)).with_partitions(config.partitions);
        if let Some(t) = &tracker {
            ctx = ctx.with_tracker(Arc::clone(t));
        }
        let engine = StagedEngine::new(ctx.clone(), config.engine.clone());
        let shared = Arc::new(ServerShared {
            catalog,
            ctx,
            wal: Wal::new(Arc::new(MemDisk::new())),
            engine,
            config: config.clone(),
            prepared: Mutex::new(HashMap::new()),
            tracker,
            txn: TxnRuntime::new(),
            served: AtomicU64::new(0),
        });
        let mut b = StagedRuntime::<SPacket>::builder();
        let cohort = config.max_cohort;
        // Registered first: registration order is pipeline order, which
        // shutdown uses as its drain order — network admissions must drain
        // before the stages they feed close.
        //
        // The `net` stage serves one packet per visit: its bounded queue
        // *is* the server's network admission limit, and a cohort held in
        // a worker's hands would be load admitted past that bound.
        let net_id = b.add_stage(
            StageSpec::new("net", NetStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(BatchPolicy::Single),
        );
        let connect_id = b.add_stage(
            StageSpec::new("connect", ConnectStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        b.add_stage(
            StageSpec::new("parse", ParseStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        b.add_stage(
            StageSpec::new("optimize", OptimizeStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        // One-at-a-time as well: a conflicted packet parks by sleeping and
        // requeueing inside `process`, which would stall every cohort-mate
        // still in the worker's hands behind a lock it may not even want.
        b.add_stage(
            StageSpec::new("lock", LockStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(BatchPolicy::Single),
        );
        b.add_stage(
            StageSpec::new("execute", ExecuteStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.execute_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        b.add_stage(
            StageSpec::new("disconnect", DisconnectStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        let runtime = b.build();
        Arc::new(Self { shared, runtime, net_id, connect_id })
    }

    /// Submit SQL; returns the response channel (blocking admission under
    /// back-pressure). One-shot autocommit; use [`session`](Self::session)
    /// for multi-statement transactions.
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        self.submit_in(sql, None)
    }

    fn submit_in(&self, sql: impl Into<String>, session: Option<u64>) -> Receiver<Response> {
        self.submit_at(self.connect_id, sql, session)
    }

    /// Network admission: like [`submit`](Self::submit) but entering at the
    /// `net` stage, so network traffic is metered (and back-pressured) by
    /// the admission stage's own queue before it reaches `connect`.
    pub fn submit_admitted(
        &self,
        sql: impl Into<String>,
        session: Option<u64>,
    ) -> Receiver<Response> {
        self.submit_at(self.net_id, sql, session)
    }

    fn submit_at(
        &self,
        stage: StageId,
        sql: impl Into<String>,
        session: Option<u64>,
    ) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Raw(sql.into()), session, tx);
        if let Err(e) = self.runtime.enqueue(stage, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Non-blocking admission: `Err(Overloaded)` when the connect queue is
    /// full (paper §5.2 overload conditioning).
    pub fn try_submit(&self, sql: impl Into<String>) -> Result<Receiver<Response>, ServerError> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Raw(sql.into()), None, tx);
        match self.runtime.try_enqueue(self.connect_id, pkt) {
            Ok(()) => Ok(rx),
            Err(EnqueueError::Full(_)) => Err(ServerError::Overloaded),
            Err(EnqueueError::Closed(_)) => Err(ServerError::ShuttingDown),
        }
    }

    /// Open a client session: statements run through the handle share the
    /// session's transaction state (`BEGIN` … `COMMIT`/`ROLLBACK`), and
    /// dropping the handle aborts any transaction still open, releasing
    /// its locks (abort-on-drop).
    pub fn session(self: &Arc<Self>) -> StagedSession {
        StagedSession { server: Arc::clone(self), sid: self.shared.txn.open_session() }
    }

    /// Live transactions (diagnostics).
    pub fn active_txns(&self) -> usize {
        self.shared.txn.mgr().active_count()
    }

    /// Run one statement to completion.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql).recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Parse + plan a SELECT once, store it under `name`. Later
    /// [`execute_prepared`](Self::execute_prepared) calls route connect →
    /// execute directly.
    pub fn prepare(&self, name: &str, sql: &str) -> Result<(), ServerError> {
        let parsed =
            pipeline::parse_stage(sql, &self.shared.catalog, self.shared.tracker.as_deref())?;
        let Parsed::NeedsPlan(bound) = parsed else {
            return Err(ServerError::Sql("only SELECT can be prepared".into()));
        };
        let action =
            pipeline::optimize_stage(&bound, &self.shared.catalog, &self.shared.config.planner)?;
        let PlannedAction::Select { plan, schema } = action else {
            return Err(ServerError::Sql("only plain SELECT can be prepared".into()));
        };
        self.shared.prepared.lock().insert(name.to_string(), Arc::new((plan, schema)));
        Ok(())
    }

    /// Invoke a prepared statement (the fast path).
    pub fn execute_prepared(&self, name: &str) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Prepared(name.to_string()), None, tx);
        if let Err(e) = self.runtime.enqueue(self.connect_id, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Per-stage monitoring (the §5.2 "easy to tune" observability).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.runtime.stats()
    }

    /// Execution-engine stage monitoring.
    pub fn engine_stats(&self) -> Vec<StageStats> {
        self.shared.engine.runtime().stats()
    }

    /// The runtime, for autotuner attachment.
    pub fn runtime(&self) -> &StagedRuntime<SPacket> {
        &self.runtime
    }

    /// The inner staged execution engine.
    pub fn engine(&self) -> &Arc<StagedEngine> {
        &self.shared.engine
    }

    /// Queries completed.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stop all stage workers (drains in-flight requests first).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
        self.shared.engine.shutdown();
    }
}

/// A client session on the staged server. Statements submitted here flow
/// through the normal stage pipeline but share the session's transaction
/// state. Dropping the handle aborts an in-flight transaction
/// (abort-on-drop), releasing its locks and undoing its writes.
pub struct StagedSession {
    server: Arc<StagedServer>,
    sid: u64,
}

impl StagedSession {
    /// Session id.
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// Submit SQL under this session.
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        self.server.submit_in(sql, Some(self.sid))
    }

    /// Run one statement to completion under this session.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql).recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Run one statement to completion, entering the pipeline at the `net`
    /// admission stage (the network front end's path; see [`crate::net`]).
    pub fn execute_sql_admitted(&self, sql: &str) -> Response {
        self.server
            .submit_admitted(sql, Some(self.sid))
            .recv()
            .unwrap_or(Err(ServerError::ShuttingDown))
    }
}

impl Drop for StagedSession {
    fn drop(&mut self) {
        let shared = &self.server.shared;
        shared.txn.close_session(self.sid, &shared.ctx, &shared.wal);
    }
}
