//! The staged DBMS server (paper Figure 3, top row).

use crate::pipeline::{self, Exec, Parsed, PlannedAction};
use crate::types::{ExecutionMode, Response, ServerConfig, ServerError};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use staged_cachesim::tracker::RefTracker;
use staged_core::monitor::StageStats;
use staged_core::prelude::*;
use staged_engine::context::ExecContext;
use staged_engine::staged::StagedEngine;
use staged_planner::PhysicalPlan;
use staged_sql::binder::BoundSelect;
use staged_storage::wal::{LogRecord, Wal};
use staged_storage::{Catalog, MemDisk, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A packet travelling through the five top-level stages. The enum body is
/// the query's *backpack* — its state at the current point of execution.
pub struct SPacket {
    xid: u64,
    body: PacketBody,
    reply: crossbeam::channel::Sender<Response>,
}

enum PacketBody {
    /// Fresh SQL text (entering connect).
    Raw(String),
    /// Prepared-statement invocation (connect routes it straight to
    /// execute).
    Prepared(String),
    /// Bound SELECT awaiting the optimizer.
    Bound(Box<BoundSelect>),
    /// Ready to execute.
    Action(Box<PlannedAction>),
    /// Completed; heading to disconnect for commit + reply.
    Finished(Box<Response>),
}

struct ServerShared {
    catalog: Arc<Catalog>,
    ctx: ExecContext,
    wal: Wal,
    engine: Arc<StagedEngine>,
    config: ServerConfig,
    prepared: Mutex<HashMap<String, Arc<(PhysicalPlan, Schema)>>>,
    tracker: Option<Arc<RefTracker>>,
    next_xid: AtomicU64,
    served: AtomicU64,
}

/// The staged server.
pub struct StagedServer {
    shared: Arc<ServerShared>,
    runtime: StagedRuntime<SPacket>,
    connect_id: StageId,
}

macro_rules! stage_logic {
    ($name:ident, $shared:ident, $pkt:ident, $ctx:ident, $body:block) => {
        struct $name {
            $shared: Arc<ServerShared>,
        }
        impl StageLogic<SPacket> for $name {
            fn process(
                &self,
                mut $pkt: SPacket,
                $ctx: &StageCtx<'_, SPacket>,
            ) -> Result<(), StageError> {
                let $shared = &self.$shared;
                $body
            }
        }
    };
}

fn forward(ctx: &StageCtx<'_, SPacket>, stage: &str, pkt: SPacket) -> Result<(), StageError> {
    let id = ctx
        .stage_id_of(stage)
        .ok_or_else(|| StageError::new(format!("missing stage {stage}")))?;
    ctx.send(id, pkt).map_err(|_| StageError::new("pipeline closed"))
}

fn finish(
    ctx: &StageCtx<'_, SPacket>,
    mut pkt: SPacket,
    res: Response,
) -> Result<(), StageError> {
    pkt.body = PacketBody::Finished(Box::new(res));
    forward(ctx, "disconnect", pkt)
}

stage_logic!(ConnectStage, shared, pkt, ctx, {
    pkt.xid = shared.next_xid.fetch_add(1, Ordering::Relaxed);
    match std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new())) {
        PacketBody::Raw(sql) => {
            pkt.body = PacketBody::Raw(sql);
            forward(ctx, "parse", pkt)
        }
        PacketBody::Prepared(name) => {
            // Precompiled queries bypass parser and optimizer (§4.1).
            let found = shared.prepared.lock().get(&name).cloned();
            match found {
                Some(entry) => {
                    pkt.body = PacketBody::Action(Box::new(PlannedAction::Select {
                        plan: entry.0.clone(),
                        schema: entry.1.clone(),
                    }));
                    forward(ctx, "execute", pkt)
                }
                None => finish(ctx, pkt, Err(ServerError::UnknownPrepared(name))),
            }
        }
        other => {
            pkt.body = other;
            finish(ctx, pkt, Err(ServerError::Execution("bad packet at connect".into())))
        }
    }
});

stage_logic!(ParseStage, shared, pkt, ctx, {
    let PacketBody::Raw(sql) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at parse".into())));
    };
    match pipeline::parse_stage(&sql, &shared.catalog, shared.tracker.as_deref()) {
        Ok(Parsed::NeedsPlan(bound)) => {
            pkt.body = PacketBody::Bound(bound);
            forward(ctx, "optimize", pkt)
        }
        Ok(Parsed::Action(action)) => {
            // DDL / DML bypass the optimizer (§4.1: "the query can route
            // itself from the connect stage directly to the execute stage").
            pkt.body = PacketBody::Action(action);
            forward(ctx, "execute", pkt)
        }
        Err(e) => finish(ctx, pkt, Err(e)),
    }
});

stage_logic!(OptimizeStage, shared, pkt, ctx, {
    let PacketBody::Bound(bound) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at optimize".into())));
    };
    match pipeline::optimize_stage(&bound, &shared.catalog, &shared.config.planner) {
        Ok(action) => {
            pkt.body = PacketBody::Action(Box::new(action));
            forward(ctx, "execute", pkt)
        }
        Err(e) => finish(ctx, pkt, Err(e)),
    }
});

stage_logic!(ExecuteStage, shared, pkt, ctx, {
    let PacketBody::Action(action) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at execute".into())));
    };
    let exec = match shared.config.mode {
        ExecutionMode::Volcano => Exec::Volcano,
        ExecutionMode::Staged => Exec::Staged(&shared.engine),
    };
    let res = pipeline::execute_stage(*action, &shared.ctx, &shared.wal, pkt.xid, exec);
    finish(ctx, pkt, res)
});

stage_logic!(DisconnectStage, shared, pkt, _ctx, {
    // "end Xaction, delete state, disconnect": autocommit + reply.
    let _ = shared.wal.append(&LogRecord::Commit { xid: pkt.xid });
    let body = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()));
    let res = match body {
        PacketBody::Finished(r) => *r,
        _ => Err(ServerError::Execution("bad packet at disconnect".into())),
    };
    shared.served.fetch_add(1, Ordering::Relaxed);
    let _ = pkt.reply.send(res);
    Ok(())
});

impl StagedServer {
    /// Build and start the staged server over an existing catalog.
    pub fn new(catalog: Arc<Catalog>, config: ServerConfig) -> Arc<Self> {
        Self::with_tracker(catalog, config, None)
    }

    /// Like [`new`](Self::new), with Table-1 reference instrumentation.
    pub fn with_tracker(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        tracker: Option<Arc<RefTracker>>,
    ) -> Arc<Self> {
        // Tables created through this server's DDL path inherit the
        // configured partition count (scoped to this server's context).
        let mut ctx = ExecContext::new(Arc::clone(&catalog)).with_partitions(config.partitions);
        if let Some(t) = &tracker {
            ctx = ctx.with_tracker(Arc::clone(t));
        }
        let engine = StagedEngine::new(ctx.clone(), config.engine.clone());
        let shared = Arc::new(ServerShared {
            catalog,
            ctx,
            wal: Wal::new(Arc::new(MemDisk::new())),
            engine,
            config: config.clone(),
            prepared: Mutex::new(HashMap::new()),
            tracker,
            next_xid: AtomicU64::new(1),
            served: AtomicU64::new(0),
        });
        let mut b = StagedRuntime::<SPacket>::builder();
        let connect_id = b.add_stage(
            StageSpec::new("connect", ConnectStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers),
        );
        b.add_stage(
            StageSpec::new("parse", ParseStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers),
        );
        b.add_stage(
            StageSpec::new("optimize", OptimizeStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers),
        );
        b.add_stage(
            StageSpec::new("execute", ExecuteStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.execute_workers),
        );
        b.add_stage(
            StageSpec::new("disconnect", DisconnectStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers),
        );
        let runtime = b.build();
        Arc::new(Self { shared, runtime, connect_id })
    }

    /// Submit SQL; returns the response channel (blocking admission under
    /// back-pressure).
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket { xid: 0, body: PacketBody::Raw(sql.into()), reply: tx };
        if let Err(e) = self.runtime.enqueue(self.connect_id, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Non-blocking admission: `Err(Overloaded)` when the connect queue is
    /// full (paper §5.2 overload conditioning).
    pub fn try_submit(&self, sql: impl Into<String>) -> Result<Receiver<Response>, ServerError> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket { xid: 0, body: PacketBody::Raw(sql.into()), reply: tx };
        match self.runtime.try_enqueue(self.connect_id, pkt) {
            Ok(()) => Ok(rx),
            Err(EnqueueError::Full(_)) => Err(ServerError::Overloaded),
            Err(EnqueueError::Closed(_)) => Err(ServerError::ShuttingDown),
        }
    }

    /// Run one statement to completion.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql)
            .recv()
            .unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Parse + plan a SELECT once, store it under `name`. Later
    /// [`execute_prepared`](Self::execute_prepared) calls route connect →
    /// execute directly.
    pub fn prepare(&self, name: &str, sql: &str) -> Result<(), ServerError> {
        let parsed =
            pipeline::parse_stage(sql, &self.shared.catalog, self.shared.tracker.as_deref())?;
        let Parsed::NeedsPlan(bound) = parsed else {
            return Err(ServerError::Sql("only SELECT can be prepared".into()));
        };
        let action =
            pipeline::optimize_stage(&bound, &self.shared.catalog, &self.shared.config.planner)?;
        let PlannedAction::Select { plan, schema } = action else {
            return Err(ServerError::Sql("only plain SELECT can be prepared".into()));
        };
        self.shared.prepared.lock().insert(name.to_string(), Arc::new((plan, schema)));
        Ok(())
    }

    /// Invoke a prepared statement (the fast path).
    pub fn execute_prepared(&self, name: &str) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket { xid: 0, body: PacketBody::Prepared(name.to_string()), reply: tx };
        if let Err(e) = self.runtime.enqueue(self.connect_id, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Per-stage monitoring (the §5.2 "easy to tune" observability).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.runtime.stats()
    }

    /// Execution-engine stage monitoring.
    pub fn engine_stats(&self) -> Vec<StageStats> {
        self.shared.engine.runtime().stats()
    }

    /// The runtime, for autotuner attachment.
    pub fn runtime(&self) -> &StagedRuntime<SPacket> {
        &self.runtime
    }

    /// The inner staged execution engine.
    pub fn engine(&self) -> &Arc<StagedEngine> {
        &self.shared.engine
    }

    /// Queries completed.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stop all stage workers (drains in-flight requests first).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
        self.shared.engine.shutdown();
    }
}
