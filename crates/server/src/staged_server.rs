//! The staged DBMS server (paper Figure 3, top row).

use crate::pipeline::{self, Exec, Parsed, PlannedAction};
use crate::reactivity::ReactivityHub;
use crate::replication::ReplicationHub;
use crate::session::{StatementCtx, TxnRuntime};
use crate::types::{ExecutionMode, Response, ServerConfig, ServerError};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use staged_cachesim::tracker::RefTracker;
use staged_core::monitor::StageStats;
use staged_core::prelude::*;
use staged_engine::checkpoint::{self, RecoveryReport, CHECKPOINT_XID};
use staged_engine::context::ExecContext;
use staged_engine::staged::StagedEngine;
use staged_engine::txn::{LockKey, LockMode};
use staged_planner::PhysicalPlan;
use staged_sql::binder::BoundSelect;
use staged_storage::wal::Wal;
use staged_storage::{
    Catalog, MemSegmentStore, MemSnapshotStore, Schema, SegmentStore, SnapshotStore,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A packet travelling through the six top-level stages (connect → parse →
/// optimize → lock → execute → disconnect). The enum body is the query's
/// *backpack* — its state at the current point of execution.
pub struct SPacket {
    /// Transaction the statement runs under (0 = none: reads, DDL).
    xid: u64,
    /// Session the statement came from (None = one-shot autocommit).
    session: Option<u64>,
    /// True when `xid` is a statement-scoped implicit transaction that the
    /// disconnect stage must commit (success) or abort (failure).
    implicit: bool,
    /// Partition locks still to be granted by the lock stage.
    lock_keys: Vec<LockKey>,
    /// Deadline for lock acquisition (timeout-abort deadlock resolution).
    lock_deadline: Option<Instant>,
    body: PacketBody,
    reply: crossbeam::channel::Sender<Response>,
}

impl SPacket {
    fn new(
        body: PacketBody,
        session: Option<u64>,
        reply: crossbeam::channel::Sender<Response>,
    ) -> Self {
        Self {
            xid: 0,
            session,
            implicit: false,
            lock_keys: Vec::new(),
            lock_deadline: None,
            body,
            reply,
        }
    }
}

enum PacketBody {
    /// Fresh SQL text (entering connect).
    Raw(String),
    /// Prepared-statement invocation (connect routes it straight to
    /// execute).
    Prepared(String),
    /// Bound SELECT awaiting the optimizer.
    Bound(Box<BoundSelect>),
    /// Ready to execute.
    Action(Box<PlannedAction>),
    /// A checkpoint request heading for the checkpoint stage. `auto` marks
    /// requests the stage raised itself from its idle hook (their reply
    /// channel is a stub nobody reads).
    Checkpoint {
        /// Raised by the idle hook rather than a client.
        auto: bool,
    },
    /// Completed; heading to disconnect for commit + reply.
    Finished(Box<Response>),
}

struct ServerShared {
    catalog: Arc<Catalog>,
    ctx: ExecContext,
    wal: Arc<Wal>,
    snapshots: Arc<dyn SnapshotStore>,
    recovery: RecoveryReport,
    engine: Arc<StagedEngine>,
    config: ServerConfig,
    prepared: Mutex<HashMap<String, Arc<(PhysicalPlan, Schema)>>>,
    tracker: Option<Arc<RefTracker>>,
    txn: TxnRuntime,
    served: AtomicU64,
    /// True while a checkpoint holds (or is acquiring) the quiesce locks:
    /// checkpoints serialize on this claim, since they all lock under the
    /// one [`CHECKPOINT_XID`].
    checkpointing: AtomicBool,
    /// True while an idle-raised checkpoint packet is queued or running;
    /// stops the idle hook from stacking duplicates.
    auto_pending: AtomicBool,
    /// WAL-shipping hub: the primary side of replication. Connected
    /// replicas subscribe through the network front end; the dedicated
    /// `replication` stage pumps committed records to them from its idle
    /// hook.
    replication: Arc<ReplicationHub>,
    /// Subscription hub: `SUBSCRIBE` change feeds, sourced from the same
    /// WAL and pumped from the same `replication` stage idle hook.
    reactivity: Arc<ReactivityHub>,
}

/// The staged server.
pub struct StagedServer {
    shared: Arc<ServerShared>,
    runtime: StagedRuntime<SPacket>,
    net_id: StageId,
    connect_id: StageId,
    checkpoint_id: StageId,
}

macro_rules! stage_logic {
    ($name:ident, $shared:ident, $pkt:ident, $ctx:ident, $body:block) => {
        struct $name {
            $shared: Arc<ServerShared>,
        }
        impl StageLogic<SPacket> for $name {
            fn process(
                &self,
                mut $pkt: SPacket,
                $ctx: &StageCtx<'_, SPacket>,
            ) -> Result<(), StageError> {
                let $shared = &self.$shared;
                $body
            }
        }
    };
}

fn forward(ctx: &StageCtx<'_, SPacket>, stage: &str, pkt: SPacket) -> Result<(), StageError> {
    let id =
        ctx.stage_id_of(stage).ok_or_else(|| StageError::new(format!("missing stage {stage}")))?;
    ctx.send(id, pkt).map_err(|_| StageError::new("pipeline closed"))
}

fn finish(ctx: &StageCtx<'_, SPacket>, mut pkt: SPacket, res: Response) -> Result<(), StageError> {
    pkt.body = PacketBody::Finished(Box::new(res));
    forward(ctx, "disconnect", pkt)
}

stage_logic!(NetStage, shared, pkt, ctx, {
    // The network admission stage. Statements arriving over TCP enter the
    // pipeline here: connection readers enqueue one packet per decoded
    // statement, and this stage's bounded queue is the server's admission
    // buffer — when downstream stages fall behind, back-pressure propagates
    // through this queue to the reader threads and from there, via unread
    // socket bytes, to the clients themselves. Its StageStats therefore
    // meter exactly the network-admitted load (in-process submissions
    // enter at `connect` and are not counted here).
    let _ = shared;
    match std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new())) {
        PacketBody::Raw(sql) => {
            pkt.body = PacketBody::Raw(sql);
            forward(ctx, "connect", pkt)
        }
        other => {
            pkt.body = other;
            finish(ctx, pkt, Err(ServerError::Execution("bad packet at net".into())))
        }
    }
});

stage_logic!(ConnectStage, shared, pkt, ctx, {
    match std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new())) {
        PacketBody::Raw(sql) => {
            pkt.body = PacketBody::Raw(sql);
            forward(ctx, "parse", pkt)
        }
        PacketBody::Prepared(name) => {
            // Precompiled queries bypass parser and optimizer (§4.1).
            let found = shared.prepared.lock().get(&name).cloned();
            match found {
                Some(entry) => {
                    pkt.body = PacketBody::Action(Box::new(PlannedAction::Select {
                        plan: entry.0.clone(),
                        schema: entry.1.clone(),
                    }));
                    forward(ctx, "execute", pkt)
                }
                None => finish(ctx, pkt, Err(ServerError::UnknownPrepared(name))),
            }
        }
        other => {
            pkt.body = other;
            finish(ctx, pkt, Err(ServerError::Execution("bad packet at connect".into())))
        }
    }
});

stage_logic!(ParseStage, shared, pkt, ctx, {
    let PacketBody::Raw(sql) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at parse".into())));
    };
    match pipeline::parse_stage(&sql, &shared.catalog, shared.tracker.as_deref()) {
        Ok(Parsed::NeedsPlan(bound)) => {
            if let Err(e) = shared.txn.statement_ctx(pkt.session) {
                return finish(ctx, pkt, Err(e));
            }
            pkt.body = PacketBody::Bound(bound);
            forward(ctx, "optimize", pkt)
        }
        Ok(Parsed::Action(action)) => {
            // DDL / DML bypass the optimizer (§4.1: "the query can route
            // itself from the connect stage directly to the execute stage").
            // DML makes one extra hop through the lock-manager stage first.
            // A session in the failed-transaction state refuses everything
            // except the COMMIT/ROLLBACK acknowledgement; a READ ONLY
            // transaction refuses writes here, before they reach the lock
            // stage — the per-statement policy decision of the read-only
            // fast path.
            if !matches!(action.as_ref(), PlannedAction::TxnControl(_)) {
                match shared.txn.statement_ctx(pkt.session) {
                    Err(e) => return finish(ctx, pkt, Err(e)),
                    Ok(StatementCtx::ReadOnly(_)) if pipeline::writes(&action) => {
                        return finish(ctx, pkt, Err(ServerError::ReadOnly));
                    }
                    Ok(_) => {}
                }
            }
            let dest = if action.is_dml() { "lock" } else { "execute" };
            pkt.body = PacketBody::Action(action);
            forward(ctx, dest, pkt)
        }
        Err(e) => finish(ctx, pkt, Err(e)),
    }
});

stage_logic!(LockStage, shared, pkt, ctx, {
    // The lock-manager stage (paper Figure 3 names it as a first-class
    // OLTP stage). On first visit the packet joins its session's open
    // transaction — or starts a statement-scoped implicit one — and
    // computes its lock set; then it acquires locks incrementally in
    // sorted key order. A packet that hits a conflict requeues itself
    // (case iii of §4.1.1) until its deadline, at which point the
    // transaction is aborted: timeout-abort deadlock resolution.
    if pkt.lock_deadline.is_none() {
        match shared.txn.statement_ctx(pkt.session) {
            Err(e) => return finish(ctx, pkt, Err(e)),
            // Parse already refuses writes in a READ ONLY transaction;
            // refusing again here keeps the lock stage safe against any
            // future routing change.
            Ok(StatementCtx::ReadOnly(_)) => {
                return finish(ctx, pkt, Err(ServerError::ReadOnly));
            }
            Ok(StatementCtx::Write(xid)) => {
                pkt.xid = xid;
                pkt.implicit = false;
            }
            Ok(StatementCtx::Autocommit) => match shared.txn.mgr().begin(&shared.wal) {
                Ok(xid) => {
                    pkt.xid = xid;
                    pkt.implicit = true;
                }
                Err(e) => return finish(ctx, pkt, Err(ServerError::Execution(e.to_string()))),
            },
        }
        let keys = match &pkt.body {
            PacketBody::Action(action) => {
                pipeline::dml_lock_keys(action, &shared.catalog, &shared.config.planner)
            }
            _ => return finish(ctx, pkt, Err(ServerError::Execution("bad packet at lock".into()))),
        };
        pkt.lock_keys = keys;
        pkt.lock_deadline = Some(Instant::now() + shared.config.lock_timeout);
    }
    let locks = shared.txn.mgr().locks();
    while let Some(key) = pkt.lock_keys.first().copied() {
        if locks.try_lock(pkt.xid, key, LockMode::Exclusive) {
            pkt.lock_keys.remove(0);
        } else {
            break;
        }
    }
    if pkt.lock_keys.is_empty() {
        return forward(ctx, "execute", pkt);
    }
    if Instant::now() >= pkt.lock_deadline.unwrap_or_else(Instant::now) {
        shared.txn.fail_txn(pkt.session, pkt.xid, &shared.ctx, &shared.wal);
        return finish(
            ctx,
            pkt,
            Err(ServerError::Execution(
                "lock timeout: transaction aborted (presumed deadlock)".into(),
            )),
        );
    }
    // Parked behind a conflicting lock: yield and retry. The retry counter
    // makes contention visible in this stage's StageStats. The requeue must
    // never block on this stage's own full queue (the only dequeuer is this
    // worker — blocking here would deadlock the stage against itself), so
    // it tries the back non-blocking and falls back to the capacity-exempt
    // front slot under overload.
    ctx.record_retry();
    std::thread::sleep(std::time::Duration::from_micros(100));
    match ctx.try_send(ctx.stage_id, pkt) {
        Ok(()) => Ok(()),
        Err(EnqueueError::Full(pkt)) => {
            ctx.requeue(pkt).map_err(|_| StageError::new("pipeline closed"))
        }
        Err(EnqueueError::Closed(_)) => Err(StageError::new("pipeline closed")),
    }
});

/// The checkpoint stage: the maintenance counterpart of the lock-manager
/// stage. A checkpoint packet quiesces the writers by acquiring every
/// partition lock incrementally under [`CHECKPOINT_XID`] — requeueing
/// itself on conflict exactly like a DML packet at the lock stage — and
/// once the database is still, snapshots it, truncates the log, and
/// releases the world. Its idle hook raises a checkpoint on its own when
/// the live log grows past `config.checkpoint_segments`.
struct CheckpointStage {
    shared: Arc<ServerShared>,
}

impl CheckpointStage {
    /// Drop the claim flags after a checkpoint finishes (any way).
    fn done(&self, auto: bool) {
        self.shared.checkpointing.store(false, Ordering::Release);
        if auto {
            self.shared.auto_pending.store(false, Ordering::Release);
        }
    }

    /// Park-and-retry: yield the worker briefly, then requeue the packet
    /// (never blocking on this stage's own queue — same rule as the lock
    /// stage).
    fn park(&self, pkt: SPacket, ctx: &StageCtx<'_, SPacket>) -> Result<(), StageError> {
        ctx.record_retry();
        std::thread::sleep(std::time::Duration::from_micros(100));
        match ctx.try_send(ctx.stage_id, pkt) {
            Ok(()) => Ok(()),
            Err(EnqueueError::Full(pkt)) => {
                ctx.requeue(pkt).map_err(|_| StageError::new("pipeline closed"))
            }
            Err(EnqueueError::Closed(_)) => Err(StageError::new("pipeline closed")),
        }
    }
}

impl StageLogic<SPacket> for CheckpointStage {
    fn process(&self, mut pkt: SPacket, ctx: &StageCtx<'_, SPacket>) -> Result<(), StageError> {
        let shared = &self.shared;
        let PacketBody::Checkpoint { auto } = pkt.body else {
            return finish(
                ctx,
                pkt,
                Err(ServerError::Execution("bad packet at checkpoint".into())),
            );
        };
        if pkt.lock_deadline.is_none() {
            // Checkpoints serialize on the claim: they all lock under the
            // one CHECKPOINT_XID, so a second one must wait its turn.
            if shared
                .checkpointing
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                return self.park(pkt, ctx);
            }
            pkt.lock_keys = checkpoint::quiesce_keys(&shared.catalog);
            pkt.lock_deadline = Some(Instant::now() + shared.config.lock_timeout);
        }
        let locks = shared.txn.mgr().locks();
        while let Some(key) = pkt.lock_keys.first().copied() {
            if locks.try_lock(CHECKPOINT_XID, key, LockMode::Exclusive) {
                pkt.lock_keys.remove(0);
            } else {
                break;
            }
        }
        if pkt.lock_keys.is_empty() {
            // The database is still: every partition lock is ours, and
            // in-flight writers hold theirs through commit (strict 2PL),
            // so none are mid-statement.
            // The truncation floor is clamped to the minimum replica-acked
            // LSN: history a live replica has not yet confirmed durable
            // stays on disk so a reconnect can resume, not re-seed.
            let res = checkpoint::checkpoint_with_floor(
                &shared.catalog,
                &shared.wal,
                shared.snapshots.as_ref(),
                shared.replication.min_acked(),
            );
            // Writers are quiesced (we hold every partition lock), so dead
            // versions can be reclaimed before the world is released.
            let gc = checkpoint::vacuum(&shared.catalog, shared.txn.mgr());
            locks.release_all(CHECKPOINT_XID);
            self.done(auto);
            let res = res
                .map(|o| {
                    crate::types::QueryOutput::message(format!(
                        "CHECKPOINT {} rows={} segments_deleted={} versions_gc={}",
                        o.lsn, o.rows, o.segments_deleted, gc.dead_removed
                    ))
                })
                .map_err(|e| ServerError::Execution(e.to_string()));
            return finish(ctx, pkt, res);
        }
        if Instant::now() >= pkt.lock_deadline.unwrap_or_else(Instant::now) {
            // Writers would not drain in time: give the locks back and
            // report, leaving the log untouched.
            locks.release_all(CHECKPOINT_XID);
            self.done(auto);
            return finish(
                ctx,
                pkt,
                Err(ServerError::Execution(
                    "checkpoint lock timeout: writers would not quiesce".into(),
                )),
            );
        }
        self.park(pkt, ctx)
    }

    fn on_idle(&self, ctx: &StageCtx<'_, SPacket>) {
        let shared = &self.shared;
        let Some(limit) = shared.config.checkpoint_segments else { return };
        let live = shared.wal.segments().map(|s| s.len() as u64).unwrap_or(0);
        if live <= limit {
            return;
        }
        if shared
            .auto_pending
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        // The reply channel is a stub: nobody waits on an auto checkpoint.
        let (tx, _rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Checkpoint { auto: true }, None, tx);
        if ctx.try_send(ctx.stage_id, pkt).is_err() {
            shared.auto_pending.store(false, Ordering::Release);
        }
    }
}

/// The replication stage: the shipping side of the primary, run as its own
/// bounded stage like everything else in the server. It receives no client
/// packets — its work hook is `on_idle`, which pumps committed WAL records
/// into every subscribed replica's bounded outbox (evicting replicas whose
/// outbox is full rather than buffering without bound). Feed connection
/// threads also pump on their own when caught up, so this stage's idle
/// cadence only bounds the *eviction* latency of a stalled replica, not the
/// shipping latency of a healthy one.
struct ReplicationStage {
    shared: Arc<ServerShared>,
}

impl StageLogic<SPacket> for ReplicationStage {
    fn process(&self, pkt: SPacket, ctx: &StageCtx<'_, SPacket>) -> Result<(), StageError> {
        // Nothing routes packets here; anything that arrives is a bug.
        finish(ctx, pkt, Err(ServerError::Execution("bad packet at replication".into())))
    }

    fn on_idle(&self, _ctx: &StageCtx<'_, SPacket>) {
        self.shared.replication.pump();
        // The subscription hub shares the stage: same source (the WAL),
        // same bounded-outbox discipline, same eviction cadence.
        self.shared.reactivity.pump();
    }
}

stage_logic!(OptimizeStage, shared, pkt, ctx, {
    let PacketBody::Bound(bound) = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at optimize".into())));
    };
    match pipeline::optimize_stage(&bound, &shared.catalog, &shared.config.planner) {
        Ok(action) => {
            pkt.body = PacketBody::Action(Box::new(action));
            forward(ctx, "execute", pkt)
        }
        Err(e) => finish(ctx, pkt, Err(e)),
    }
});

stage_logic!(ExecuteStage, shared, pkt, ctx, {
    let PacketBody::Action(action) =
        std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()))
    else {
        return finish(ctx, pkt, Err(ServerError::Execution("bad packet at execute".into())));
    };
    if let PlannedAction::TxnControl(stmt) = action.as_ref() {
        let res =
            pipeline::execute_txn_control(stmt, pkt.session, &shared.txn, &shared.ctx, &shared.wal);
        return finish(ctx, pkt, res);
    }
    let exec = match shared.config.mode {
        ExecutionMode::Volcano => Exec::Volcano,
        ExecutionMode::Staged => Exec::Staged(&shared.engine),
    };
    let txn = (pkt.xid != 0).then(|| shared.txn.mgr());
    // SELECTs run as snapshot reads; the statement context is re-read here
    // (not at parse) so the view reflects commits up to this moment. The
    // pin guard must outlive the execute call.
    let mut action = *action;
    let stmt_ctx = match shared.txn.statement_ctx(pkt.session) {
        Ok(c) => c,
        Err(e) => return finish(ctx, pkt, Err(e)),
    };
    let _pin = pipeline::snapshot_select(&mut action, &shared.txn, &stmt_ctx);
    let res = pipeline::execute_stage(action, &shared.ctx, &shared.wal, pkt.xid, exec, txn);
    finish(ctx, pkt, res)
});

stage_logic!(DisconnectStage, shared, pkt, _ctx, {
    // "end Xaction, delete state, disconnect": statement-level commit for
    // implicit transactions (the Commit record's forced flush is the
    // atomic durability point), abort of the transaction on statement
    // failure, then the reply.
    let body = std::mem::replace(&mut pkt.body, PacketBody::Raw(String::new()));
    let mut res = match body {
        PacketBody::Finished(r) => *r,
        _ => Err(ServerError::Execution("bad packet at disconnect".into())),
    };
    if pkt.xid != 0 {
        match (&res, pkt.implicit) {
            (Ok(_), true) => {
                if let Err(e) = shared.txn.mgr().commit(pkt.xid, &shared.ctx, &shared.wal) {
                    res = Err(ServerError::Execution(e.to_string()));
                }
            }
            (Err(_), _) => shared.txn.fail_txn(pkt.session, pkt.xid, &shared.ctx, &shared.wal),
            (Ok(_), false) => {} // explicit txn continues; COMMIT ends it
        }
    }
    shared.served.fetch_add(1, Ordering::Relaxed);
    let _ = pkt.reply.send(res);
    Ok(())
});

impl StagedServer {
    /// Build and start the staged server over an existing catalog.
    pub fn new(catalog: Arc<Catalog>, config: ServerConfig) -> Arc<Self> {
        Self::with_tracker(catalog, config, None)
    }

    /// Like [`new`](Self::new), with Table-1 reference instrumentation.
    /// Backed by fresh in-memory WAL-segment and snapshot stores.
    pub fn with_tracker(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        tracker: Option<Arc<RefTracker>>,
    ) -> Arc<Self> {
        Self::with_stores(
            catalog,
            config,
            tracker,
            Arc::new(MemSegmentStore::new()),
            Arc::new(MemSnapshotStore::new()),
        )
        .expect("recovery from fresh in-memory stores cannot fail")
    }

    /// Build the server over existing WAL-segment and snapshot stores,
    /// running checkpointed recovery first: restore the latest snapshot
    /// (if any) into the catalog, replay only the WAL tail at or after its
    /// LSN, repair a torn log tail, then start the stages. The catalog
    /// must be empty when a snapshot exists (recovery rebuilds the tables
    /// it describes).
    pub fn with_stores(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        tracker: Option<Arc<RefTracker>>,
        segments: Arc<dyn SegmentStore>,
        snapshots: Arc<dyn SnapshotStore>,
    ) -> Result<Arc<Self>, ServerError> {
        // Tables created through this server's DDL path inherit the
        // configured partition count (scoped to this server's context).
        let mut ctx = ExecContext::new(Arc::clone(&catalog)).with_partitions(config.partitions);
        if let Some(t) = &tracker {
            ctx = ctx.with_tracker(Arc::clone(t));
        }
        let (wal, recovery) =
            checkpoint::recover(&ctx, segments, snapshots.as_ref(), config.wal_segment_pages)
                .map_err(|e| ServerError::Execution(format!("recovery failed: {e}")))?;
        let wal = Arc::new(wal);
        let replication =
            Arc::new(ReplicationHub::new(Arc::clone(&wal), config.replication_outbox));
        let reactivity = Arc::new(ReactivityHub::new(
            Arc::clone(&wal),
            Arc::clone(&catalog),
            config.subscription_outbox,
        ));
        let engine = StagedEngine::new(ctx.clone(), config.engine.clone());
        let txn = TxnRuntime::for_catalog(&catalog);
        let shared = Arc::new(ServerShared {
            catalog,
            ctx,
            wal,
            snapshots,
            recovery,
            engine,
            config: config.clone(),
            prepared: Mutex::new(HashMap::new()),
            tracker,
            txn,
            served: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            auto_pending: AtomicBool::new(false),
            replication,
            reactivity,
        });
        let mut b = StagedRuntime::<SPacket>::builder();
        let cohort = config.max_cohort;
        // Registered first: registration order is pipeline order, which
        // shutdown uses as its drain order — network admissions must drain
        // before the stages they feed close.
        //
        // The `net` stage serves one packet per visit: its bounded queue
        // *is* the server's network admission limit, and a cohort held in
        // a worker's hands would be load admitted past that bound.
        let net_id = b.add_stage(
            StageSpec::new("net", NetStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(BatchPolicy::Single),
        );
        let connect_id = b.add_stage(
            StageSpec::new("connect", ConnectStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        b.add_stage(
            StageSpec::new("parse", ParseStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        b.add_stage(
            StageSpec::new("optimize", OptimizeStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        // One-at-a-time as well: a conflicted packet parks by sleeping and
        // requeueing inside `process`, which would stall every cohort-mate
        // still in the worker's hands behind a lock it may not even want.
        b.add_stage(
            StageSpec::new("lock", LockStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(BatchPolicy::Single),
        );
        // One worker, one packet at a time: checkpoints serialize anyway
        // (they share CHECKPOINT_XID), and a parked checkpoint requeues by
        // sleeping inside `process` like a conflicted lock packet.
        let checkpoint_id = b.add_stage(
            StageSpec::new("checkpoint", CheckpointStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(1)
                .with_batch(BatchPolicy::Single),
        );
        // One worker, one packet at a time: the replication stage does all
        // of its work from the idle hook (no packets are ever routed here),
        // pumping the shipping hub on the runtime's idle cadence.
        b.add_stage(
            StageSpec::new("replication", ReplicationStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(1)
                .with_batch(BatchPolicy::Single),
        );
        b.add_stage(
            StageSpec::new("execute", ExecuteStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.execute_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        b.add_stage(
            StageSpec::new("disconnect", DisconnectStage { shared: Arc::clone(&shared) })
                .with_queue_capacity(config.queue_capacity)
                .with_workers(config.control_workers)
                .with_batch(config.batch)
                .with_max_cohort(cohort),
        );
        let runtime = b.build();
        Ok(Arc::new(Self { shared, runtime, net_id, connect_id, checkpoint_id }))
    }

    /// Submit SQL; returns the response channel (blocking admission under
    /// back-pressure). One-shot autocommit; use [`session`](Self::session)
    /// for multi-statement transactions.
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        self.submit_in(sql, None)
    }

    fn submit_in(&self, sql: impl Into<String>, session: Option<u64>) -> Receiver<Response> {
        self.submit_at(self.connect_id, sql, session)
    }

    /// Network admission: like [`submit`](Self::submit) but entering at the
    /// `net` stage, so network traffic is metered (and back-pressured) by
    /// the admission stage's own queue before it reaches `connect`.
    pub fn submit_admitted(
        &self,
        sql: impl Into<String>,
        session: Option<u64>,
    ) -> Receiver<Response> {
        self.submit_at(self.net_id, sql, session)
    }

    fn submit_at(
        &self,
        stage: StageId,
        sql: impl Into<String>,
        session: Option<u64>,
    ) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Raw(sql.into()), session, tx);
        if let Err(e) = self.runtime.enqueue(stage, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Non-blocking admission: `Err(Overloaded)` when the connect queue is
    /// full (paper §5.2 overload conditioning).
    pub fn try_submit(&self, sql: impl Into<String>) -> Result<Receiver<Response>, ServerError> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Raw(sql.into()), None, tx);
        match self.runtime.try_enqueue(self.connect_id, pkt) {
            Ok(()) => Ok(rx),
            Err(EnqueueError::Full(_)) => Err(ServerError::Overloaded),
            Err(EnqueueError::Closed(_)) => Err(ServerError::ShuttingDown),
        }
    }

    /// Non-blocking network admission: [`submit_admitted`] without the
    /// blocking enqueue. `Err(Overloaded)` when the `net` stage's bounded
    /// queue is full — the event-driven front end translates that into
    /// *not reading the socket*, so the overload propagates to TCP flow
    /// control instead of parking a thread (DESIGN.md §16).
    ///
    /// [`submit_admitted`]: Self::submit_admitted
    pub fn try_submit_admitted(
        &self,
        sql: impl Into<String>,
        session: Option<u64>,
    ) -> Result<Receiver<Response>, ServerError> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Raw(sql.into()), session, tx);
        match self.runtime.try_enqueue(self.net_id, pkt) {
            Ok(()) => Ok(rx),
            Err(EnqueueError::Full(_)) => Err(ServerError::Overloaded),
            Err(EnqueueError::Closed(_)) => Err(ServerError::ShuttingDown),
        }
    }

    /// Open a client session: statements run through the handle share the
    /// session's transaction state (`BEGIN` … `COMMIT`/`ROLLBACK`), and
    /// dropping the handle aborts any transaction still open, releasing
    /// its locks (abort-on-drop).
    pub fn session(self: &Arc<Self>) -> StagedSession {
        StagedSession { server: Arc::clone(self), sid: self.shared.txn.open_session() }
    }

    /// Live transactions (diagnostics).
    pub fn active_txns(&self) -> usize {
        self.shared.txn.mgr().active_count()
    }

    /// Run one statement to completion.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql).recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Parse + plan a SELECT once, store it under `name`. Later
    /// [`execute_prepared`](Self::execute_prepared) calls route connect →
    /// execute directly.
    pub fn prepare(&self, name: &str, sql: &str) -> Result<(), ServerError> {
        let parsed =
            pipeline::parse_stage(sql, &self.shared.catalog, self.shared.tracker.as_deref())?;
        let Parsed::NeedsPlan(bound) = parsed else {
            return Err(ServerError::Sql("only SELECT can be prepared".into()));
        };
        let action =
            pipeline::optimize_stage(&bound, &self.shared.catalog, &self.shared.config.planner)?;
        let PlannedAction::Select { plan, schema } = action else {
            return Err(ServerError::Sql("only plain SELECT can be prepared".into()));
        };
        self.shared.prepared.lock().insert(name.to_string(), Arc::new((plan, schema)));
        Ok(())
    }

    /// Invoke a prepared statement (the fast path).
    pub fn execute_prepared(&self, name: &str) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Prepared(name.to_string()), None, tx);
        if let Err(e) = self.runtime.enqueue(self.connect_id, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Run a checkpoint through the checkpoint stage and wait for it:
    /// quiesce the writers, snapshot every table and index, truncate the
    /// WAL below the snapshot's LSN. The response message starts with
    /// `CHECKPOINT` on success.
    pub fn checkpoint(&self) -> Response {
        self.submit_checkpoint().recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Start a checkpoint through the checkpoint stage without waiting:
    /// the receiver completes when the checkpoint does. This is the
    /// network front end's path — the event loop must never block behind
    /// a quiesce.
    pub fn submit_checkpoint(&self) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let pkt = SPacket::new(PacketBody::Checkpoint { auto: false }, None, tx);
        if let Err(e) = self.runtime.enqueue(self.checkpoint_id, pkt) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// What recovery found and did when this server was built (how many
    /// rows came from the snapshot, how many log records replayed, and
    /// whether the log tail was damaged).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.shared.recovery
    }

    /// The write-ahead log (for monitoring: live segments, I/O counters).
    pub fn wal(&self) -> &Wal {
        &self.shared.wal
    }

    /// The WAL-shipping hub (primary side of replication): replica
    /// subscriptions, the shipping pump, and the acked-LSN floor that
    /// clamps checkpoint truncation.
    pub fn replication_hub(&self) -> &Arc<ReplicationHub> {
        &self.shared.replication
    }

    /// The subscription hub (`SUBSCRIBE` change feeds): registrations,
    /// bounded per-subscriber outboxes, and the change pump.
    pub fn reactivity_hub(&self) -> &Arc<ReactivityHub> {
        &self.shared.reactivity
    }

    pub(crate) fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    pub(crate) fn txn_runtime(&self) -> &TxnRuntime {
        &self.shared.txn
    }

    /// Per-stage monitoring (the §5.2 "easy to tune" observability).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.runtime.stats()
    }

    /// Execution-engine stage monitoring.
    pub fn engine_stats(&self) -> Vec<StageStats> {
        self.shared.engine.runtime().stats()
    }

    /// The runtime, for autotuner attachment.
    pub fn runtime(&self) -> &StagedRuntime<SPacket> {
        &self.runtime
    }

    /// The inner staged execution engine.
    pub fn engine(&self) -> &Arc<StagedEngine> {
        &self.shared.engine
    }

    /// Queries completed.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stop all stage workers (drains in-flight requests first).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
        self.shared.engine.shutdown();
    }
}

/// A client session on the staged server. Statements submitted here flow
/// through the normal stage pipeline but share the session's transaction
/// state. Dropping the handle aborts an in-flight transaction
/// (abort-on-drop), releasing its locks and undoing its writes.
pub struct StagedSession {
    server: Arc<StagedServer>,
    sid: u64,
}

impl StagedSession {
    /// Session id.
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// Submit SQL under this session.
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        self.server.submit_in(sql, Some(self.sid))
    }

    /// Run one statement to completion under this session.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql).recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Run one statement to completion, entering the pipeline at the `net`
    /// admission stage (the network front end's path; see [`crate::net`]).
    pub fn execute_sql_admitted(&self, sql: &str) -> Response {
        self.server
            .submit_admitted(sql, Some(self.sid))
            .recv()
            .unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Non-blocking admission at the `net` stage: `Err(Overloaded)` when
    /// the admission queue is full. The event-driven front end turns that
    /// refusal into *not reading the socket*, so overload propagates to
    /// TCP flow control instead of parking a thread.
    pub fn try_submit_admitted(
        &self,
        sql: impl Into<String>,
    ) -> Result<Receiver<Response>, ServerError> {
        self.server.try_submit_admitted(sql, Some(self.sid))
    }
}

impl Drop for StagedSession {
    fn drop(&mut self) {
        let shared = &self.server.shared;
        shared.txn.close_session(self.sid, &shared.ctx, &shared.wal);
    }
}
