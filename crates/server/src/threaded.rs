//! The work-centric thread-pool baseline (paper §3.1.1).
//!
//! "A pool of threads that picks a client from the queue, works on the
//! client until it exits the execution engine, puts it on an exit queue and
//! picks another client from the input queue." Each worker runs the entire
//! parse → optimize → execute pipeline as direct procedure calls on the
//! Volcano engine; the pool size is the knob whose tuning dilemma Figure 2
//! demonstrates.

use crate::pipeline::{self, Exec, Parsed, PlannedAction};
use crate::reactivity::ReactivityHub;
use crate::replication::ReplicationHub;
use crate::session::{StatementCtx, TxnRuntime};
use crate::types::{QueryOutput, Request, RequestBody, Response, ServerError};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use staged_core::error::EnqueueError;
use staged_core::queue::{Dequeued, StageQueue};
use staged_engine::checkpoint;
use staged_engine::context::ExecContext;
use staged_engine::txn::LockMode;
use staged_planner::PlannerConfig;
use staged_storage::wal::Wal;
use staged_storage::{Catalog, MemSegmentStore, MemSnapshotStore, SegmentStore, SnapshotStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct Inner {
    catalog: Arc<Catalog>,
    ctx: ExecContext,
    wal: Arc<Wal>,
    snapshots: Arc<dyn SnapshotStore>,
    planner: PlannerConfig,
    queue: StageQueue<Request>,
    txn: TxnRuntime,
    lock_timeout: Duration,
    served: AtomicU64,
    pool_size: usize,
    /// WAL-shipping hub (primary side of replication); pumped by the
    /// dedicated `repl-pump` thread — the monolithic counterpart of the
    /// staged server's `replication` stage.
    replication: Arc<ReplicationHub>,
    /// `SUBSCRIBE` change-feed hub, pumped by the same `repl-pump`
    /// thread that drives WAL shipping.
    reactivity: Arc<ReactivityHub>,
    /// Stops the `repl-pump` thread at shutdown.
    stop: AtomicBool,
}

impl Inner {
    fn submit(&self, sql: String, session: Option<u64>) -> Receiver<Response> {
        let (tx, rx) = bounded(1);
        let req = Request { body: RequestBody::Sql(sql), session, reply: tx };
        if let Err(e) = self.queue.enqueue(req) {
            let _ = e.into_packet().reply.send(Err(ServerError::ShuttingDown));
        }
        rx
    }

    /// Non-blocking submission for the event-driven front end: a full
    /// pool queue is reported as `Overloaded` instead of blocking the
    /// caller, so the network loop can stop reading the socket and let
    /// back-pressure reach TCP.
    fn try_submit(
        &self,
        sql: String,
        session: Option<u64>,
    ) -> Result<Receiver<Response>, ServerError> {
        let (tx, rx) = bounded(1);
        let req = Request { body: RequestBody::Sql(sql), session, reply: tx };
        match self.queue.try_enqueue(req) {
            Ok(()) => Ok(rx),
            Err(EnqueueError::Full(_)) => Err(ServerError::Overloaded),
            Err(EnqueueError::Closed(_)) => Err(ServerError::ShuttingDown),
        }
    }
}

/// The thread-pool server.
pub struct ThreadedServer {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    pump: Mutex<Option<JoinHandle<()>>>,
}

impl ThreadedServer {
    /// Start a pool of `pool_size` workers over `catalog`.
    pub fn new(catalog: Arc<Catalog>, pool_size: usize, planner: PlannerConfig) -> Self {
        Self::with_lock_timeout(catalog, pool_size, planner, Duration::from_secs(2))
    }

    /// Like [`new`](Self::new) with an explicit deadlock timeout for the
    /// lock manager.
    pub fn with_lock_timeout(
        catalog: Arc<Catalog>,
        pool_size: usize,
        planner: PlannerConfig,
        lock_timeout: Duration,
    ) -> Self {
        Self::with_stores(
            catalog,
            pool_size,
            planner,
            lock_timeout,
            Arc::new(MemSegmentStore::new()),
            Arc::new(MemSnapshotStore::new()),
        )
        .expect("recovery from fresh in-memory stores cannot fail")
    }

    /// Build the pool over existing WAL-segment and snapshot stores,
    /// running checkpointed recovery first (the same protocol as
    /// `StagedServer::with_stores`: restore the snapshot, replay the WAL
    /// tail, repair the log).
    pub fn with_stores(
        catalog: Arc<Catalog>,
        pool_size: usize,
        planner: PlannerConfig,
        lock_timeout: Duration,
        segments: Arc<dyn SegmentStore>,
        snapshots: Arc<dyn SnapshotStore>,
    ) -> Result<Self, ServerError> {
        let ctx = ExecContext::new(Arc::clone(&catalog));
        let (wal, _report) = checkpoint::recover(
            &ctx,
            segments,
            snapshots.as_ref(),
            staged_storage::DEFAULT_SEGMENT_PAGES,
        )
        .map_err(|e| ServerError::Execution(format!("recovery failed: {e}")))?;
        let wal = Arc::new(wal);
        let replication = Arc::new(ReplicationHub::new(
            Arc::clone(&wal),
            crate::replication::DEFAULT_OUTBOX_CAPACITY,
        ));
        let reactivity = Arc::new(ReactivityHub::new(
            Arc::clone(&wal),
            Arc::clone(&catalog),
            crate::replication::DEFAULT_OUTBOX_CAPACITY,
        ));
        let txn = TxnRuntime::for_catalog(&catalog);
        let inner = Arc::new(Inner {
            ctx,
            catalog,
            wal,
            snapshots,
            planner,
            queue: StageQueue::new(1024),
            txn,
            lock_timeout,
            served: AtomicU64::new(0),
            pool_size: pool_size.max(1),
            replication,
            reactivity,
            stop: AtomicBool::new(false),
        });
        let workers = (0..pool_size.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn pool worker")
            })
            .collect();
        // The shipping pump: in the monolithic server there is no stage to
        // hang an idle hook on, so a dedicated thread pumps the hub. Feed
        // connection threads still self-pump when caught up; this thread
        // mainly bounds stalled-replica eviction latency.
        let pump = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("repl-pump".into())
                .spawn(move || {
                    while !inner.stop.load(Ordering::Acquire) {
                        inner.replication.pump();
                        inner.reactivity.pump();
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
                .expect("spawn replication pump")
        };
        Ok(Self { inner, workers: Mutex::new(workers), pump: Mutex::new(Some(pump)) })
    }

    /// Run a checkpoint on the calling thread — the monolithic-server
    /// shape of the staged server's checkpoint stage: block until every
    /// partition lock is held (quiescing the writers), snapshot, truncate
    /// the WAL below the snapshot's LSN, release.
    pub fn checkpoint(&self) -> Response {
        let inner = &self.inner;
        let locks = inner.txn.mgr().locks();
        let _guard = checkpoint::quiesce(locks, &inner.catalog, inner.lock_timeout)
            .map_err(|e| ServerError::Execution(e.to_string()))?;
        // Truncation holds back history a live replica has not yet acked,
        // so a reconnect resumes instead of re-seeding.
        let outcome = checkpoint::checkpoint_with_floor(
            &inner.catalog,
            &inner.wal,
            inner.snapshots.as_ref(),
            inner.replication.min_acked(),
        )
        .map_err(|e| ServerError::Execution(e.to_string()))?;
        // The quiesce guard is still held: the database is still, so this
        // is the one safe moment to reclaim dead versions.
        let gc = checkpoint::vacuum(&inner.catalog, inner.txn.mgr());
        Ok(QueryOutput::message(format!(
            "CHECKPOINT {} rows={} segments_deleted={} versions_gc={}",
            outcome.lsn, outcome.rows, outcome.segments_deleted, gc.dead_removed
        )))
    }

    /// Submit SQL for execution (one-shot autocommit; use
    /// [`session`](Self::session) for multi-statement transactions).
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        self.inner.submit(sql.into(), None)
    }

    /// Run one statement to completion.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql).recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Open a client session. Statements run through the handle share the
    /// session's transaction state (`BEGIN` … `COMMIT`/`ROLLBACK`);
    /// dropping the handle aborts any transaction still open.
    pub fn session(&self) -> ThreadedSession {
        ThreadedSession { inner: Arc::clone(&self.inner), sid: self.inner.txn.open_session() }
    }

    /// Live transactions (diagnostics).
    pub fn active_txns(&self) -> usize {
        self.inner.txn.mgr().active_count()
    }

    /// Queries completed so far.
    pub fn served(&self) -> u64 {
        self.inner.served.load(Ordering::Relaxed)
    }

    /// Current input-queue depth.
    pub fn backlog(&self) -> usize {
        self.inner.queue.len()
    }

    /// Size of the worker pool, as configured at construction.
    pub fn pool_size(&self) -> usize {
        self.inner.pool_size
    }

    /// The WAL-shipping hub (primary side of replication): replica
    /// subscriptions, the shipping pump, and the acked-LSN floor that
    /// clamps checkpoint truncation.
    pub fn replication_hub(&self) -> &Arc<ReplicationHub> {
        &self.inner.replication
    }

    /// The subscription hub (`SUBSCRIBE` change feeds): registrations,
    /// bounded per-subscriber outboxes, and the change pump.
    pub fn reactivity_hub(&self) -> &Arc<ReactivityHub> {
        &self.inner.reactivity
    }

    pub(crate) fn catalog(&self) -> &Arc<Catalog> {
        &self.inner.catalog
    }

    pub(crate) fn txn_runtime(&self) -> &TxnRuntime {
        &self.inner.txn
    }

    /// Stop the pool, draining queued requests first. Takes `&self` —
    /// the same shutdown contract as `StagedServer::shutdown` — and is
    /// idempotent: every request admitted before the call is answered
    /// (closing the queue lets workers drain pending packets and then
    /// observe `Closed`), later submissions get `ShuttingDown`.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        self.inner.stop.store(true, Ordering::Release);
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
        if let Some(p) = self.pump.lock().take() {
            let _ = p.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        match inner.queue.dequeue_timeout(Duration::from_millis(20)) {
            Dequeued::Packet(req) => {
                let res = process(&inner, &req);
                inner.served.fetch_add(1, Ordering::Relaxed);
                let _ = req.reply.send(res);
            }
            Dequeued::TimedOut => continue,
            Dequeued::Closed => return,
        }
    }
}

/// A client session on the thread-pool server. Statements submitted here
/// run sequentially under the session's transaction state. Dropping the
/// handle aborts an in-flight transaction (abort-on-drop), releasing its
/// locks and undoing its writes.
pub struct ThreadedSession {
    inner: Arc<Inner>,
    sid: u64,
}

impl ThreadedSession {
    /// Session id.
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// Submit SQL under this session.
    pub fn submit(&self, sql: impl Into<String>) -> Receiver<Response> {
        self.inner.submit(sql.into(), Some(self.sid))
    }

    /// Non-blocking submit under this session: `Err(Overloaded)` when the
    /// pool queue is full. This is the event-driven front end's admission
    /// path — the refusal lets the network loop stop reading the socket
    /// instead of blocking a thread on the queue.
    pub fn try_submit(&self, sql: impl Into<String>) -> Result<Receiver<Response>, ServerError> {
        self.inner.try_submit(sql.into(), Some(self.sid))
    }

    /// Run one statement to completion under this session.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.submit(sql).recv().unwrap_or(Err(ServerError::ShuttingDown))
    }

    /// Run one statement on the *calling* thread as a direct
    /// procedure-call chain, bypassing the pool queue. This is the network
    /// front end's thread-per-connection path: the connection's own thread
    /// is the worker that carries the statement through the whole
    /// pipeline — the classical monolithic shape the staged server is
    /// measured against. Refused once the server is shutting down.
    pub fn execute_sql_direct(&self, sql: &str) -> Response {
        if self.inner.queue.is_closed() {
            return Err(ServerError::ShuttingDown);
        }
        let (tx, _rx) = bounded(1);
        let req =
            Request { body: RequestBody::Sql(sql.to_string()), session: Some(self.sid), reply: tx };
        let res = process(&self.inner, &req);
        self.inner.served.fetch_add(1, Ordering::Relaxed);
        res
    }
}

impl Drop for ThreadedSession {
    fn drop(&mut self) {
        self.inner.txn.close_session(self.sid, &self.inner.ctx, &self.inner.wal);
    }
}

/// The whole pipeline as one procedure call chain — the monolithic model.
/// Lock acquisition is *sequential* here (block, then execute), the
/// baseline counterpart of the staged server's lock-manager stage.
fn process(inner: &Inner, req: &Request) -> Response {
    let RequestBody::Sql(sql) = &req.body else {
        return Err(ServerError::Sql("threaded server accepts raw SQL only".into()));
    };
    let action = match pipeline::parse_stage(sql, &inner.catalog, None)? {
        Parsed::NeedsPlan(bound) => {
            pipeline::optimize_stage(&bound, &inner.catalog, &inner.planner)?
        }
        Parsed::Action(a) => *a,
    };
    if let PlannedAction::TxnControl(stmt) = &action {
        return pipeline::execute_txn_control(
            stmt,
            req.session,
            &inner.txn,
            &inner.ctx,
            &inner.wal,
        );
    }
    // A session whose transaction was aborted server-side refuses every
    // statement until the client acknowledges with COMMIT/ROLLBACK.
    let stmt_ctx = inner.txn.statement_ctx(req.session)?;
    if matches!(stmt_ctx, StatementCtx::ReadOnly(_)) && pipeline::writes(&action) {
        return Err(ServerError::ReadOnly);
    }
    let mut keys = pipeline::dml_lock_keys(&action, &inner.catalog, &inner.planner);
    if keys.is_empty() {
        // Reads and DDL bypass the transaction machinery entirely; SELECTs
        // run as snapshot reads against the statement's MVCC view. The pin
        // guard (when one is taken) lives across execution so vacuum
        // cannot pass the view.
        let mut action = action;
        let _pin = pipeline::snapshot_select(&mut action, &inner.txn, &stmt_ctx);
        return pipeline::execute_stage(action, &inner.ctx, &inner.wal, 0, Exec::Volcano, None);
    }
    let mgr = inner.txn.mgr();
    let (xid, implicit) = match stmt_ctx {
        StatementCtx::Write(xid) => (xid, false),
        _ => (mgr.begin(&inner.wal).map_err(|e| ServerError::Execution(e.to_string()))?, true),
    };
    if mgr.locks().lock_all(xid, &mut keys, LockMode::Exclusive, inner.lock_timeout).is_err() {
        inner.txn.fail_txn(req.session, xid, &inner.ctx, &inner.wal);
        return Err(ServerError::Execution(
            "lock timeout: transaction aborted (presumed deadlock)".into(),
        ));
    }
    let res =
        pipeline::execute_stage(action, &inner.ctx, &inner.wal, xid, Exec::Volcano, Some(mgr));
    match &res {
        Ok(_) if implicit => {
            // Statement-level autocommit: the implicit transaction's commit
            // record is what makes it visible to redo recovery.
            if let Err(e) = mgr.commit(xid, &inner.ctx, &inner.wal) {
                return Err(ServerError::Execution(e.to_string()));
            }
        }
        Ok(_) => {}
        Err(_) => {
            // Failed statements abort the whole transaction (implicit or
            // explicit): partial writes are undone, locks released.
            inner.txn.fail_txn(req.session, xid, &inner.ctx, &inner.wal);
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::{BufferPool, MemDisk};

    fn server(pool: usize) -> ThreadedServer {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256)));
        ThreadedServer::new(cat, pool, PlannerConfig::default())
    }

    #[test]
    fn end_to_end_sql() {
        let s = server(2);
        s.execute_sql("CREATE TABLE kv (k INT, v VARCHAR(16))").unwrap();
        s.execute_sql("INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')").unwrap();
        let out = s.execute_sql("SELECT v FROM kv WHERE k = 2").unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].to_string(), "['two']");
        let out = s.execute_sql("DELETE FROM kv WHERE k > 1").unwrap();
        assert_eq!(out.message, "DELETE 2");
        s.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let s = server(4);
        s.execute_sql("CREATE TABLE n (x INT)").unwrap();
        for i in 0..32 {
            s.execute_sql(&format!("INSERT INTO n VALUES ({i})")).unwrap();
        }
        let receivers: Vec<_> = (0..16).map(|_| s.submit("SELECT COUNT(*) FROM n")).collect();
        for rx in receivers {
            let out = rx.recv().unwrap().unwrap();
            assert_eq!(out.rows[0].to_string(), "[32]");
        }
        assert!(s.served() >= 16 + 33);
        s.shutdown();
    }

    #[test]
    fn shutdown_drains_every_admitted_request() {
        let s = server(1);
        s.execute_sql("CREATE TABLE d (x INT)").unwrap();
        s.execute_sql("INSERT INTO d VALUES (1), (2), (3)").unwrap();
        // Flood the single worker so most requests are still queued when
        // shutdown is called: none may be silently dropped.
        let receivers: Vec<_> = (0..64).map(|_| s.submit("SELECT COUNT(*) FROM d")).collect();
        s.shutdown();
        for rx in receivers {
            let out = rx.recv().expect("drained response").unwrap();
            assert_eq!(out.rows[0].to_string(), "[3]");
        }
        // After shutdown new submissions are refused loudly, not dropped.
        assert!(matches!(
            s.submit("SELECT COUNT(*) FROM d").recv(),
            Ok(Err(ServerError::ShuttingDown))
        ));
        // And shutdown is idempotent under the unified `&self` contract.
        s.shutdown();
    }

    #[test]
    fn direct_execution_matches_pooled_and_respects_shutdown() {
        let s = server(2);
        s.execute_sql("CREATE TABLE d2 (x INT)").unwrap();
        let sess = s.session();
        sess.execute_sql_direct("BEGIN").unwrap();
        sess.execute_sql_direct("INSERT INTO d2 VALUES (7)").unwrap();
        sess.execute_sql_direct("COMMIT").unwrap();
        // Pooled and direct paths see the same state.
        let out = sess.execute_sql("SELECT x FROM d2").unwrap();
        assert_eq!(out.rows[0].to_string(), "[7]");
        assert!(s.served() >= 5);
        s.shutdown();
        assert!(matches!(
            sess.execute_sql_direct("SELECT x FROM d2"),
            Err(ServerError::ShuttingDown)
        ));
    }

    #[test]
    fn sql_errors_are_reported_not_fatal() {
        let s = server(1);
        assert!(matches!(s.execute_sql("SELEC nope"), Err(ServerError::Sql(_))));
        assert!(matches!(s.execute_sql("SELECT * FROM missing"), Err(ServerError::Sql(_))));
        // Server still healthy.
        s.execute_sql("CREATE TABLE ok (x INT)").unwrap();
        s.shutdown();
    }
}
