//! `dbserver` — run a staged-db server on a TCP port.
//!
//! ```sh
//! dbserver --port 5433 --mode staged --partitions 4
//! ```
//!
//! Serves the wire protocol of `PROTOCOL.md` over an in-memory catalog
//! until killed (SIGINT/SIGTERM/kill); `--mode threaded` runs the
//! monolithic thread-per-connection baseline instead, for apples-to-apples
//! comparisons against the same client scripts.
//!
//! `--replica-of HOST:PORT` starts a read-only replica instead: it
//! subscribes to the primary's `REPLICATE` feed, applies shipped WAL, and
//! serves snapshot reads (writes get `ERR READ_ONLY_REPLICA`). Mirror the
//! primary's `CREATE TABLE`s on the replica first — DDL is the replica's
//! schema-bootstrap path and is not shipped through the WAL.

use staged_planner::PlannerConfig;
use staged_server::net::{self, NetConfig};
use staged_server::{ReplicaConfig, ReplicaServer, ServerConfig, StagedServer, ThreadedServer};
use staged_storage::{BufferPool, Catalog, MemDisk, MemSegmentStore};
use std::net::TcpListener;
use std::sync::Arc;

const USAGE: &str = "usage: dbserver [--port N] [--mode staged|threaded] [--partitions N]
                [--max-connections N] [--execute-workers N] [--pool N]
                [--replica-of HOST:PORT]
  --port N             TCP port to listen on (default 5433; 0 = ephemeral)
  --mode M             staged (default) or threaded
  --partitions N       staged mode: hash partitions for tables created via DDL (default 1)
  --max-connections N  admission limit; extra clients get ERR OVERLOADED (default 64)
  --execute-workers N  staged mode: workers on the execute stage (default 4)
  --pool N             threaded mode: worker-pool size for in-process submissions
                       (network connections run thread-per-connection) (default 4)
  --replica-of ADDR    run as a read-only replica of the primary at ADDR
                       (ignores --mode; DDL allowed for schema bootstrap)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut port = 5433u16;
    let mut mode = "staged".to_string();
    let mut partitions = 1usize;
    let mut max_connections = 64usize;
    let mut execute_workers = 4usize;
    let mut pool = 4usize;
    let mut replica_of: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| die(USAGE));
        match args[i].as_str() {
            "--port" => port = parse(&value(i)),
            "--mode" => mode = value(i),
            "--partitions" => partitions = parse(&value(i)),
            "--max-connections" => max_connections = parse(&value(i)),
            "--execute-workers" => execute_workers = parse(&value(i)),
            "--pool" => pool = parse(&value(i)),
            "--replica-of" => replica_of = Some(value(i)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument {other}\n{USAGE}")),
        }
        i += 2;
    }

    let listener = TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| die(&format!("dbserver: cannot bind port {port}: {e}")));
    let catalog = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 4096)));
    let net_config = NetConfig { max_connections, ..Default::default() };

    if let Some(primary) = replica_of {
        let config = ReplicaConfig { partitions, ..Default::default() };
        let replica = ReplicaServer::open(catalog, Arc::new(MemSegmentStore::new()), config)
            .unwrap_or_else(|e| die(&format!("dbserver: cannot open replica: {e}")));
        replica.start(&primary);
        let handle = net::serve(listener, Arc::clone(&replica), net_config)
            .unwrap_or_else(|e| die(&format!("dbserver: cannot start front end: {e}")));
        println!("READY {} mode=replica primary={primary}", handle.local_addr());
        let _ = std::io::Write::flush(&mut std::io::stdout());
        loop {
            std::thread::park();
        }
    }

    let handle = match mode.as_str() {
        "staged" => {
            let server = StagedServer::new(
                catalog,
                ServerConfig { partitions, execute_workers, ..Default::default() },
            );
            net::serve(listener, server, net_config)
        }
        "threaded" => {
            let server = Arc::new(ThreadedServer::new(catalog, pool, PlannerConfig::default()));
            net::serve(listener, server, net_config)
        }
        other => die(&format!("unknown mode {other} (want staged or threaded)\n{USAGE}")),
    }
    .unwrap_or_else(|e| die(&format!("dbserver: cannot start front end: {e}")));

    // The `READY` line is load-bearing: scripts (CI's net-smoke job, the
    // net_throughput bench docs) wait for it before connecting.
    println!("READY {} mode={mode} partitions={partitions}", handle.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| die(&format!("bad numeric argument {s}\n{USAGE}")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
