//! WAL-shipping replication: a STAR-style asymmetric pair of roles.
//!
//! The **primary** (either server) runs transactions exactly as before and
//! grows a [`ReplicationHub`]: a registry of connected replicas, each with
//! a *bounded* outbox of framed protocol lines. A pump walks the primary's
//! own log segments from each replica's cursor and enqueues `WALREC`
//! frames plus a `WALEOF` watermark. A full outbox is ordinary flow
//! control — a catch-up backlog larger than the outbox drains over
//! several pump visits — but a replica that accepts *nothing* across
//! [`EVICTION_FULL_STRIKES`] consecutive full visits has stopped
//! draining and is **evicted** (disconnected) rather than buffered
//! without bound, so a stalled replica can never hold memory — or commit
//! latency — hostage. On the staged server the pump runs as a dedicated
//! `replication` pipeline stage; on the threaded baseline it is a plain
//! pump thread: the same asymmetry-of-policy the paper uses everywhere
//! else.
//!
//! The **replica** ([`ReplicaServer`]) dials the primary, sends
//! `REPLICATE <from-lsn>`, and from then on the connection is a one-way
//! record feed (plus `ACK` lines flowing back). Every shipped record is
//! appended *verbatim* to the replica's own segmented WAL, configured with
//! the **same segment size** as the primary: the log format packs records
//! deterministically, so the replica's append LSNs reproduce the
//! primary's exactly (an explicit `rotate()` mirrors the primary's
//! checkpoint rotations whenever a shipped record jumps to a new segment).
//! The invariant is checked on every append — a mismatch aborts the
//! stream as a protocol error instead of silently diverging. Because the
//! logs are byte-addressed identically, **resume is trivial**: after a
//! crash or disconnect the replica re-subscribes from its own
//! `wal.next_lsn()`, which *is* the primary's address of the first record
//! it is missing. No record is lost, none applies twice, and a torn tail
//! repaired by [`Wal::open_with_segment_pages`] simply re-ships the
//! damaged suffix.
//!
//! Apply is transactional: records buffer per xid and land only when the
//! transaction's `Commit` arrives, through
//! [`staged_engine::dml::apply_versioned_txn`] — heap changes are stamped
//! pending and visibility flips atomically through the commit oracle, so
//! the replica's snapshot readers never observe a torn transaction.
//!
//! A replica serves reads only. DML is refused with the
//! `READ_ONLY_REPLICA` wire code, and so is a plain `BEGIN`: a read-write
//! transaction would append its own `Begin` record to the replica's WAL
//! and break the mirror layout (nothing but shipped records may ever land
//! there). `BEGIN READ ONLY` / `COMMIT` / `ROLLBACK` work, and DDL is
//! allowed as the *schema bootstrap* path — DDL appends nothing to the
//! WAL, and the operator must run the same DDL in the same creation order
//! as the primary so table ids line up (see PROTOCOL.md §7).

use crate::pipeline::{self, Parsed, PlannedAction};
use crate::session::{StatementCtx, TxnRuntime};
use crate::types::{Response, ServerError};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use staged_engine::context::ExecContext;
use staged_engine::dml;
use staged_planner::PlannerConfig;
use staged_sql::ast::Statement;
use staged_storage::wal::{LogRecord, Lsn, Wal};
use staged_storage::{Catalog, Rid, SegmentStore};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-replica outbox capacity, in framed lines. The pump never
/// buffers more than this per replica; a bigger backlog waits in the log
/// and ships over later visits as the replica drains.
pub const DEFAULT_OUTBOX_CAPACITY: usize = 1024;

/// Consecutive pump visits that find a replica's outbox full without the
/// replica having accepted a single frame before it is evicted. One full
/// visit is flow control (the backlog may simply exceed the outbox); this
/// many in a row with zero drain is a subscriber that stopped reading.
pub const EVICTION_FULL_STRIKES: u32 = 4;

fn after(lsn: Lsn) -> Lsn {
    Lsn { segment: lsn.segment, offset: lsn.offset + 1 }
}

// ---------------------------------------------------------------------------
// Primary side: the hub
// ---------------------------------------------------------------------------

/// Point-in-time counters for the primary's `replication` STATS row and
/// for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Replicas currently subscribed.
    pub connected: u64,
    /// Records shipped to replicas, total (a record shipped to two
    /// replicas counts twice).
    pub shipped_records: u64,
    /// Replicas evicted because they stopped draining their bounded
    /// outbox ([`EVICTION_FULL_STRIKES`] consecutive full pump visits
    /// with nothing accepted).
    pub evicted: u64,
    /// High-water shipping cursor across replicas (one past the last
    /// record any replica has been handed).
    pub shipped_lsn: Lsn,
    /// Largest shipped-but-unacknowledged record count over the connected
    /// replicas: the worst per-replica lag.
    pub max_lag_records: u64,
    /// Total shipped-but-unacknowledged records across replicas.
    pub unacked_records: u64,
    /// The bounded outbox capacity, in lines.
    pub outbox_capacity: u64,
}

struct ReplicaHandle {
    tx: Sender<String>,
    /// Next record LSN this replica needs.
    cursor: Lsn,
    /// Durability watermark the replica last acknowledged.
    acked: Lsn,
    /// Records shipped so far.
    sent: u64,
    /// Records acknowledged so far.
    acked_records: u64,
    /// Outstanding `WALEOF` watermarks: `(watermark, sent-at-that-point)`,
    /// drained as `ACK`s arrive to keep `acked_records` honest.
    eofs: VecDeque<(Lsn, u64)>,
    /// Records shipped without a trailing `WALEOF` yet (the watermark hit
    /// a full outbox); the next visit with space retries it.
    eof_pending: bool,
    /// Consecutive pump visits that found the outbox full with nothing
    /// accepted; [`EVICTION_FULL_STRIKES`] of them evict the replica.
    full_strikes: u32,
}

struct HubInner {
    next_id: u64,
    replicas: HashMap<u64, ReplicaHandle>,
    shipped: Lsn,
}

/// The primary's replica registry and shipping pump. One per server,
/// shared by the network front end (which subscribes feeds and relays
/// `ACK`s), the pump driver (stage or thread), and the checkpoint path
/// (which clamps truncation to [`min_acked`](Self::min_acked)).
pub struct ReplicationHub {
    wal: Arc<Wal>,
    outbox_capacity: usize,
    inner: Mutex<HubInner>,
    evicted: AtomicU64,
    shipped_records: AtomicU64,
}

impl ReplicationHub {
    /// A hub shipping `wal`, with per-replica outboxes of `outbox_capacity`
    /// framed lines.
    pub fn new(wal: Arc<Wal>, outbox_capacity: usize) -> Self {
        Self {
            wal,
            outbox_capacity: outbox_capacity.max(2),
            inner: Mutex::new(HubInner {
                next_id: 0,
                replicas: HashMap::new(),
                shipped: Lsn::ZERO,
            }),
            evicted: AtomicU64::new(0),
            shipped_records: AtomicU64::new(0),
        }
    }

    /// Register a replica that wants records from `from` on. Returns the
    /// feed id and the outbox receiver the caller must drain to the
    /// socket. Refused when the history below `from` — or the segment
    /// `from` addresses — has already been truncated by a checkpoint: a
    /// replica that far behind must re-seed, it cannot catch up.
    pub fn subscribe(&self, from: Lsn) -> Result<(u64, Receiver<String>), ServerError> {
        let segs = self
            .wal
            .segments()
            .map_err(|e| ServerError::Execution(format!("replication: segment list: {e}")))?;
        if let Some(oldest) = segs.first() {
            if from.segment < *oldest {
                return Err(ServerError::Execution(format!(
                    "replication history truncated: oldest live segment is {oldest}, \
                     cannot resume from {from}; re-seed the replica"
                )));
            }
        }
        let (tx, rx) = bounded(self.outbox_capacity);
        // An immediate watermark so a caught-up replica acks its position
        // right away and the checkpoint floor learns where it stands.
        let _ = tx.try_send(staged_wire::encode_waleof(from.segment, from.offset));
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.replicas.insert(
            id,
            ReplicaHandle {
                tx,
                cursor: from,
                acked: from,
                sent: 0,
                acked_records: 0,
                eofs: VecDeque::new(),
                eof_pending: false,
                full_strikes: 0,
            },
        );
        Ok((id, rx))
    }

    /// Drop a feed (orderly disconnect — not counted as an eviction).
    pub fn disconnect(&self, id: u64) {
        self.inner.lock().replicas.remove(&id);
    }

    /// Record a replica's `ACK <lsn>`: everything below `lsn` is durable
    /// on that replica and will never need re-shipping.
    pub fn ack(&self, id: u64, lsn: Lsn) {
        let mut inner = self.inner.lock();
        if let Some(r) = inner.replicas.get_mut(&id) {
            if lsn > r.acked {
                r.acked = lsn;
            }
            while r.eofs.front().is_some_and(|(w, _)| *w <= lsn) {
                let (_, sent) = r.eofs.pop_front().expect("front checked");
                r.acked_records = sent;
            }
        }
    }

    /// The minimum acknowledged LSN over the connected replicas — the
    /// floor below which checkpoint truncation must not delete history
    /// (`None` when no replica is connected: nothing holds the log back;
    /// a disconnected or evicted replica does *not* pin the log, and may
    /// find its history gone when it returns).
    pub fn min_acked(&self) -> Option<Lsn> {
        self.inner.lock().replicas.values().map(|r| r.acked).min()
    }

    /// Walk the log from each replica's cursor and enqueue what fits in
    /// its outbox, followed by a `WALEOF` watermark. A full outbox is
    /// flow control, not a failure: the visit stops there and the next
    /// one resumes from the cursor, so a catch-up backlog larger than the
    /// outbox drains over several visits. Eviction is reserved for a
    /// subscriber that has stopped draining — [`EVICTION_FULL_STRIKES`]
    /// consecutive full visits in which the replica accepted nothing drop
    /// its handle (and sender), which hangs up the connection.
    /// Non-blocking; safe to call from any thread, any time.
    pub fn pump(&self) {
        let mut inner = self.inner.lock();
        if inner.replicas.is_empty() {
            return;
        }
        let store = self.wal.store();
        let mut dropped: Vec<(u64, bool)> = Vec::new();
        for (id, r) in inner.replicas.iter_mut() {
            let (records, _damage) = Wal::read_store_from(store.as_ref(), r.cursor);
            let mut shipped_any = false;
            let mut hit_full = false;
            let mut gone: Option<bool> = None; // Some(true) = evicted (stalled)
            for (lsn, rec) in &records {
                let line = staged_wire::encode_walrec(lsn.segment, lsn.offset, &rec.to_bytes());
                match r.tx.try_send(line) {
                    Ok(()) => {
                        r.cursor = after(*lsn);
                        r.sent += 1;
                        self.shipped_records.fetch_add(1, Ordering::Relaxed);
                        shipped_any = true;
                    }
                    Err(TrySendError::Full(_)) => {
                        hit_full = true;
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        gone = Some(false);
                        break;
                    }
                }
            }
            if gone.is_none() {
                if shipped_any {
                    r.eof_pending = true;
                }
                if !hit_full && r.eof_pending {
                    let eof = staged_wire::encode_waleof(r.cursor.segment, r.cursor.offset);
                    match r.tx.try_send(eof) {
                        Ok(()) => {
                            r.eofs.push_back((r.cursor, r.sent));
                            r.eof_pending = false;
                        }
                        Err(TrySendError::Full(_)) => hit_full = true,
                        Err(TrySendError::Disconnected(_)) => gone = Some(false),
                    }
                }
            }
            if gone.is_none() {
                if hit_full && !shipped_any {
                    r.full_strikes += 1;
                    if r.full_strikes >= EVICTION_FULL_STRIKES {
                        gone = Some(true);
                    }
                } else {
                    r.full_strikes = 0;
                }
            }
            if let Some(evicted) = gone {
                dropped.push((*id, evicted));
            }
        }
        for (id, evicted) in dropped {
            inner.replicas.remove(&id);
            if evicted {
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let max_cursor = inner.replicas.values().map(|r| r.cursor).max();
        if let Some(m) = max_cursor {
            if m > inner.shipped {
                inner.shipped = m;
            }
        }
    }

    /// Current shipping counters.
    pub fn stats(&self) -> ReplicationStats {
        let inner = self.inner.lock();
        let mut max_lag = 0u64;
        let mut unacked = 0u64;
        for r in inner.replicas.values() {
            let lag = r.sent.saturating_sub(r.acked_records);
            max_lag = max_lag.max(lag);
            unacked += lag;
        }
        ReplicationStats {
            connected: inner.replicas.len() as u64,
            shipped_records: self.shipped_records.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            shipped_lsn: inner.shipped,
            max_lag_records: max_lag,
            unacked_records: unacked,
            outbox_capacity: self.outbox_capacity as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Replica side
// ---------------------------------------------------------------------------

/// Replica construction parameters.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Pages per WAL segment. **Must equal the primary's** — the mirror
    /// layout (and with it exactly-once resume) depends on both logs
    /// packing records identically.
    pub wal_segment_pages: u64,
    /// Hash partitions for tables created through the replica's bootstrap
    /// DDL. Match the primary for an identical physical layout.
    pub partitions: usize,
    /// Planner switches for the replica's read sessions.
    pub planner: PlannerConfig,
    /// Pause between reconnect attempts after the feed drops.
    pub reconnect: Duration,
    /// How often the streaming thread re-checks the shutdown flag while
    /// the feed is quiet.
    pub poll_interval: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            wal_segment_pages: staged_storage::DEFAULT_SEGMENT_PAGES,
            partitions: 1,
            planner: PlannerConfig::default(),
            reconnect: Duration::from_millis(100),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// A replica's position, as reported by the `replication` STATS row and
/// the `\replica` dbsh command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// One past the last record whose transaction outcome (commit or
    /// abort) has been applied to the replica's tables. Monotone across
    /// crashes and reconnects.
    pub applied_lsn: Lsn,
    /// Records received and persisted but not yet applied: buffered behind
    /// their transaction's commit, or deferred because their table's
    /// bootstrap DDL has not run here yet.
    pub lag_records: u64,
}

struct ApplyState {
    /// Per-xid record runs awaiting their `Commit`.
    pending: HashMap<u64, Vec<LogRecord>>,
    /// Committed transactions whose apply failed — typically because they
    /// shipped before the operator mirrored the table's `CREATE TABLE`
    /// here. They are durable in the replica WAL; the apply is retried in
    /// commit order at every later commit, watermark, and read.
    deferred: VecDeque<Vec<LogRecord>>,
    /// Primary rid → local rid, carried across restarts by boot replay.
    rid_map: HashMap<(u32, Rid), Rid>,
    applied_lsn: Lsn,
}

/// The read-only replica: a catalog fed exclusively by shipped WAL
/// records, serving snapshot reads. Build with [`open`](Self::open)
/// (which replays any durable local log), then [`start`](Self::start)
/// the streaming thread; read sessions come from
/// [`session`](Self::session) or the network front end.
pub struct ReplicaServer {
    catalog: Arc<Catalog>,
    ctx: ExecContext,
    wal: Wal,
    txn: TxnRuntime,
    config: ReplicaConfig,
    apply: Mutex<ApplyState>,
    connected: AtomicBool,
    connects: AtomicU64,
    stream_errors: AtomicU64,
    applied_records: AtomicU64,
    served: AtomicU64,
    stop: AtomicBool,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Feed-side counters for the replica's `replication` STATS row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFeedStats {
    /// Currently subscribed to a primary.
    pub connected: bool,
    /// Successful subscriptions so far (reconnects = `connects - 1`).
    pub connects: u64,
    /// Stream teardowns caused by errors (decode failures, layout
    /// divergence, refused subscriptions, I/O errors).
    pub stream_errors: u64,
    /// Records applied to tables (committed transactions only).
    pub applied_records: u64,
}

impl ReplicaServer {
    /// Open a replica over `segments` — its own WAL store, *not* the
    /// primary's. Any durable records found there are replayed first:
    /// committed transactions land in the tables, and the records of
    /// still-open transactions at the tail are re-buffered (their
    /// `Commit` may arrive on the resumed feed without the body being
    /// re-shipped). A torn tail is repaired; the damaged suffix will
    /// simply be shipped again.
    ///
    /// `catalog` must already hold the schema — created by the same DDL,
    /// in the same order, as on the primary (see the module docs).
    pub fn open(
        catalog: Arc<Catalog>,
        segments: Arc<dyn SegmentStore>,
        config: ReplicaConfig,
    ) -> Result<Arc<Self>, ServerError> {
        let ctx = ExecContext::new(Arc::clone(&catalog)).with_partitions(config.partitions);
        let exec_err = |e: &dyn std::fmt::Display| ServerError::Execution(format!("replica: {e}"));
        let (records, _damage) = Wal::read_store(segments.as_ref());
        let wal = Wal::open_with_segment_pages(segments, config.wal_segment_pages)
            .map_err(|e| exec_err(&e))?;
        let mut rid_map = HashMap::new();
        dml::apply_records(&ctx, &records, &mut rid_map, &HashMap::new())
            .map_err(|e| exec_err(&e))?;
        let resolved: HashSet<u64> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { xid } | LogRecord::Abort { xid } => Some(*xid),
                _ => None,
            })
            .collect();
        let mut pending: HashMap<u64, Vec<LogRecord>> = HashMap::new();
        for (_, rec) in &records {
            if matches!(rec, LogRecord::Insert { .. } | LogRecord::Delete { .. })
                && !resolved.contains(&rec.xid())
            {
                pending.entry(rec.xid()).or_default().push(rec.clone());
            }
        }
        let applied_lsn = records
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Commit { .. } | LogRecord::Abort { .. }))
            .map(|(l, _)| after(*l))
            .max()
            .unwrap_or(Lsn::ZERO);
        let txn = TxnRuntime::for_catalog(&catalog);
        Ok(Arc::new(Self {
            catalog,
            ctx,
            wal,
            txn,
            config,
            apply: Mutex::new(ApplyState {
                pending,
                deferred: VecDeque::new(),
                rid_map,
                applied_lsn,
            }),
            connected: AtomicBool::new(false),
            connects: AtomicU64::new(0),
            stream_errors: AtomicU64::new(0),
            applied_records: AtomicU64::new(0),
            served: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            thread: Mutex::new(None),
        }))
    }

    /// Start (or restart) the streaming thread against `primary`
    /// (`host:port`). The thread subscribes from the replica's own
    /// durable position, applies the feed, and reconnects with backoff
    /// whenever the feed drops — including after an eviction — until
    /// [`shutdown`](Self::shutdown).
    pub fn start(self: &Arc<Self>, primary: impl Into<String>) {
        let primary = primary.into();
        // At most one feed thread: stop any previous one, then re-arm the
        // flag (after a shutdown the old value would kill the new thread
        // on arrival).
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
        self.stop.store(false, Ordering::SeqCst);
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("replica-feed".into())
            .spawn(move || me.stream_loop(&primary))
            .expect("spawn replica feed thread");
        *self.thread.lock() = Some(handle);
    }

    /// Stop the streaming thread and wait for it. Idempotent; read
    /// sessions keep working on the last applied state.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }

    /// The replica's position.
    pub fn status(&self) -> ReplicaStatus {
        let st = self.apply.lock();
        ReplicaStatus {
            applied_lsn: st.applied_lsn,
            lag_records: st.pending.values().map(|v| v.len() as u64).sum::<u64>()
                + st.deferred.iter().map(|v| v.len() as u64).sum::<u64>(),
        }
    }

    /// Feed-side counters.
    pub fn feed_stats(&self) -> ReplicaFeedStats {
        ReplicaFeedStats {
            connected: self.connected.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            stream_errors: self.stream_errors.load(Ordering::Relaxed),
            applied_records: self.applied_records.load(Ordering::Relaxed),
        }
    }

    /// The replica's own WAL (tests probe `next_lsn` and the store).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Statements served.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    pub(crate) fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub(crate) fn txn_runtime(&self) -> &TxnRuntime {
        &self.txn
    }

    /// Open a read session. `BEGIN READ ONLY` pins a snapshot exactly as
    /// on the primary; DML and plain `BEGIN` are refused with
    /// [`ServerError::ReadOnlyReplica`].
    pub fn session(self: &Arc<Self>) -> ReplicaSession {
        ReplicaSession { replica: Arc::clone(self), sid: self.txn.open_session() }
    }

    /// Run one statement outside any session (autocommit reads, bootstrap
    /// DDL).
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.execute(sql, None)
    }

    fn execute(&self, sql: &str, session: Option<u64>) -> Response {
        // Transactions that shipped before their table's bootstrap DDL sit
        // in the deferred queue; give them a chance to land before this
        // statement runs (cheap no-op when the queue is empty).
        {
            let mut st = self.apply.lock();
            if !st.deferred.is_empty() {
                self.drain_deferred(&mut st);
            }
        }
        let action = match pipeline::parse_stage(sql, &self.catalog, None)? {
            Parsed::NeedsPlan(bound) => {
                pipeline::optimize_stage(&bound, &self.catalog, &self.config.planner)?
            }
            Parsed::Action(a) => *a,
        };
        if let PlannedAction::TxnControl(stmt) = &action {
            // A read-write BEGIN would allocate an xid and append its own
            // Begin record to the replica's WAL — breaking the mirror
            // layout. Only the snapshot flavour may open a transaction.
            if matches!(stmt, Statement::Begin { read_only: false }) {
                return Err(ServerError::ReadOnlyReplica);
            }
            return pipeline::execute_txn_control(stmt, session, &self.txn, &self.ctx, &self.wal);
        }
        if action.is_dml() {
            return Err(ServerError::ReadOnlyReplica);
        }
        let stmt_ctx = self.txn.statement_ctx(session)?;
        if matches!(stmt_ctx, StatementCtx::ReadOnly(_)) && pipeline::writes(&action) {
            return Err(ServerError::ReadOnly);
        }
        // Reads and bootstrap DDL. DDL touches only the catalog (it is
        // not WAL-logged), so the mirror layout is safe.
        let mut action = action;
        let _pin = pipeline::snapshot_select(&mut action, &self.txn, &stmt_ctx);
        let res =
            pipeline::execute_stage(action, &self.ctx, &self.wal, 0, pipeline::Exec::Volcano, None);
        self.served.fetch_add(1, Ordering::Relaxed);
        res
    }

    // -- the feed ----------------------------------------------------------

    fn stream_loop(self: Arc<Self>, primary: &str) {
        let mut first = true;
        while !self.stop.load(Ordering::SeqCst) {
            if !first {
                std::thread::sleep(self.config.reconnect);
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            first = false;
            if let Err(_e) = self.stream_once(primary) {
                self.stream_errors.fetch_add(1, Ordering::Relaxed);
            }
            self.connected.store(false, Ordering::Relaxed);
        }
    }

    /// One subscription: connect, handshake, apply until the feed drops.
    /// `Ok` is a clean teardown (remote closed, shutdown); `Err` is a
    /// protocol or I/O failure. Either way the caller reconnects.
    fn stream_once(&self, primary: &str) -> Result<(), String> {
        let io_err = |e: std::io::Error| format!("replica feed: {e}");
        let mut stream = TcpStream::connect(primary).map_err(io_err)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.config.poll_interval)).map_err(io_err)?;
        let from = self.wal.next_lsn();
        stream
            .write_all(
                format!("REPLICATE {}\n", staged_wire::format_lsn(from.segment, from.offset))
                    .as_bytes(),
            )
            .map_err(io_err)?;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut greeted = false;
        loop {
            while let Some(nl) = buf.iter().position(|b| *b == b'\n') {
                let line: Vec<u8> = buf.drain(..=nl).collect();
                let line = std::str::from_utf8(&line[..nl])
                    .map_err(|_| "feed line is not UTF-8".to_string())?
                    .trim_end_matches('\r');
                if !greeted {
                    // The server greets before reading our REPLICATE.
                    if !line.starts_with("HELLO ") {
                        return Err(format!("expected HELLO, got: {line}"));
                    }
                    greeted = true;
                    self.connected.store(true, Ordering::Relaxed);
                    self.connects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Some(err) = line.strip_prefix("ERR ") {
                    return Err(format!("subscription refused: {err}"));
                }
                match staged_wire::parse_repl_frame(line)? {
                    staged_wire::ReplFrame::Record { segment, offset, payload } => {
                        let rec = LogRecord::from_bytes(&payload)
                            .map_err(|e| format!("bad shipped record: {e}"))?;
                        self.ingest(Lsn { segment, offset }, rec)?;
                    }
                    staged_wire::ReplFrame::Eof { .. } => {
                        {
                            let mut st = self.apply.lock();
                            if !st.deferred.is_empty() {
                                self.drain_deferred(&mut st);
                            }
                        }
                        self.wal.flush().map_err(|e| format!("replica WAL flush: {e}"))?;
                        let durable = self.wal.flushed_lsn();
                        stream
                            .write_all(
                                format!(
                                    "{}\n",
                                    staged_wire::encode_ack(durable.segment, durable.offset)
                                )
                                .as_bytes(),
                            )
                            .map_err(io_err)?;
                    }
                }
            }
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // evicted or primary gone
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Persist one shipped record at its primary address and apply its
    /// transaction if this record resolves it.
    fn ingest(&self, lsn: Lsn, rec: LogRecord) -> Result<(), String> {
        let mut st = self.apply.lock();
        if lsn < self.wal.next_lsn() {
            // Already durable here (the primary re-shipped past our ack).
            return Ok(());
        }
        // Mirror the primary's explicit (checkpoint) rotations; in-segment
        // growth rotates by itself because the segment sizes match.
        while self.wal.next_lsn().segment < lsn.segment {
            self.wal.rotate().map_err(|e| format!("replica WAL rotate: {e}"))?;
        }
        let got = self.wal.append(&rec).map_err(|e| format!("replica WAL append: {e}"))?;
        if got != lsn {
            return Err(format!(
                "replica WAL diverged from the shipped layout: record {lsn} landed at {got} \
                 (segment size mismatch?)"
            ));
        }
        match &rec {
            LogRecord::Commit { xid } => {
                let recs = st.pending.remove(xid).unwrap_or_default();
                st.deferred.push_back(recs);
                self.drain_deferred(&mut st);
                st.applied_lsn = after(lsn);
            }
            LogRecord::Abort { xid } => {
                st.pending.remove(xid);
                st.applied_lsn = after(lsn);
            }
            LogRecord::Begin { .. } => {}
            LogRecord::Insert { .. } | LogRecord::Delete { .. } => {
                st.pending.entry(rec.xid()).or_default().push(rec);
            }
        }
        Ok(())
    }

    /// Apply deferred committed transactions in commit order, stopping at
    /// the first that still fails (its bootstrap DDL has not run yet). A
    /// failure never drops the transaction: it is durable in the replica
    /// WAL and stays queued for the next retry.
    fn drain_deferred(&self, st: &mut ApplyState) {
        let mut applied = 0u64;
        while let Some(txn) = st.deferred.pop_front() {
            match dml::apply_versioned_txn(&self.ctx, &txn, &mut st.rid_map) {
                Ok(n) => applied += n,
                Err(_) => {
                    st.deferred.push_front(txn);
                    break;
                }
            }
        }
        if applied > 0 {
            self.applied_records.fetch_add(applied, Ordering::Relaxed);
        }
    }
}

/// A read session on a replica. Dropping it aborts (unpins) any open
/// `BEGIN READ ONLY` transaction, exactly like the primary's sessions.
pub struct ReplicaSession {
    replica: Arc<ReplicaServer>,
    sid: u64,
}

impl ReplicaSession {
    /// Session id.
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// Run one statement under this session.
    pub fn execute_sql(&self, sql: &str) -> Response {
        self.replica.execute(sql, Some(self.sid))
    }
}

impl Drop for ReplicaSession {
    fn drop(&mut self) {
        self.replica.txn.close_session(self.sid, &self.replica.ctx, &self.replica.wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::{BufferPool, MemDisk, MemSegmentStore};

    fn catalog() -> Arc<Catalog> {
        Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 512)))
    }

    fn hub_with_records(n: u64, capacity: usize) -> (Arc<Wal>, ReplicationHub) {
        let wal =
            Arc::new(Wal::open_with_segment_pages(Arc::new(MemSegmentStore::new()), 4).unwrap());
        for xid in 1..=n {
            wal.append(&LogRecord::Begin { xid }).unwrap();
            wal.append(&LogRecord::Commit { xid }).unwrap();
        }
        let hub = ReplicationHub::new(Arc::clone(&wal), capacity);
        (wal, hub)
    }

    #[test]
    fn pump_ships_in_order_and_watermarks() {
        let (wal, hub) = hub_with_records(3, 64);
        let (_id, rx) = hub.subscribe(Lsn::ZERO).unwrap();
        hub.pump();
        let mut lsns = Vec::new();
        let mut eofs = Vec::new();
        while let Ok(line) = rx.try_recv() {
            match staged_wire::parse_repl_frame(&line).unwrap() {
                staged_wire::ReplFrame::Record { segment, offset, payload } => {
                    assert!(LogRecord::from_bytes(&payload).is_ok());
                    lsns.push(Lsn { segment, offset });
                }
                staged_wire::ReplFrame::Eof { segment, offset } => {
                    eofs.push(Lsn { segment, offset });
                }
            }
        }
        assert_eq!(lsns.len(), 6, "three Begin/Commit pairs");
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "shipped in log order");
        // Subscribe enqueues an immediate watermark at the resume point;
        // the pump follows with one just past the last shipped record.
        assert_eq!(eofs.first(), Some(&Lsn::ZERO));
        assert_eq!(eofs.last(), Some(&after(*lsns.last().unwrap())));
        assert!(*lsns.last().unwrap() < wal.next_lsn());
        assert_eq!(hub.stats().shipped_records, 6);
    }

    #[test]
    fn full_outbox_evicts_the_slow_replica() {
        let (_wal, hub) = hub_with_records(16, 4);
        let (_id, rx) = hub.subscribe(Lsn::ZERO).unwrap();
        // The first visit fills the outbox — that alone is flow control,
        // not an eviction. A subscriber that then accepts nothing across
        // the whole strike window has stopped draining and is cut.
        hub.pump();
        assert_eq!(hub.stats().connected, 1, "one full visit is not an eviction");
        for _ in 0..EVICTION_FULL_STRIKES {
            hub.pump();
        }
        assert_eq!(hub.stats().connected, 0, "evicted, not buffered");
        assert_eq!(hub.stats().evicted, 1);
        // The feed is cut: the sender side is dropped.
        while rx.try_recv().is_ok() {}
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn catchup_backlog_larger_than_outbox_is_flow_controlled_not_evicted() {
        // 32 records against a 4-line outbox: a draining subscriber must
        // receive everything over several pump visits, never be evicted.
        let (wal, hub) = hub_with_records(16, 4);
        let (_id, rx) = hub.subscribe(Lsn::ZERO).unwrap();
        let mut records = 0u32;
        let mut last_eof = None;
        while records < 32 {
            hub.pump();
            let mut progressed = false;
            while let Ok(line) = rx.try_recv() {
                progressed = true;
                match staged_wire::parse_repl_frame(&line).unwrap() {
                    staged_wire::ReplFrame::Record { .. } => records += 1,
                    staged_wire::ReplFrame::Eof { segment, offset } => {
                        last_eof = Some(Lsn { segment, offset });
                    }
                }
            }
            assert!(progressed, "pump stopped making progress mid-catch-up");
        }
        hub.pump(); // the trailing watermark, if the last visit was full
        while let Ok(line) = rx.try_recv() {
            if let staged_wire::ReplFrame::Eof { segment, offset } =
                staged_wire::parse_repl_frame(&line).unwrap()
            {
                last_eof = Some(Lsn { segment, offset });
            }
        }
        assert_eq!(hub.stats().connected, 1, "still subscribed");
        assert_eq!(hub.stats().evicted, 0);
        assert_eq!(hub.stats().shipped_records, 32);
        // The watermark covers every shipped record (offset arithmetic of
        // the final EOF is after(last record), at or below the append
        // position — see pump_ships_in_order_and_watermarks).
        let eof = last_eof.expect("a trailing watermark was shipped");
        assert!(eof > Lsn::ZERO && eof <= wal.next_lsn());
    }

    #[test]
    fn acks_move_the_truncation_floor() {
        let (wal, hub) = hub_with_records(4, 64);
        let (id, rx) = hub.subscribe(Lsn::ZERO).unwrap();
        hub.pump();
        drop(rx);
        assert_eq!(hub.min_acked(), Some(Lsn::ZERO));
        hub.ack(id, wal.next_lsn());
        assert_eq!(hub.min_acked(), Some(wal.next_lsn()));
        assert_eq!(hub.stats().max_lag_records, 0, "everything acked");
        hub.disconnect(id);
        assert_eq!(hub.min_acked(), None, "a departed replica pins nothing");
    }

    #[test]
    fn subscribe_below_truncated_history_is_refused() {
        let (wal, hub) = hub_with_records(2, 64);
        wal.rotate().unwrap();
        wal.truncate_below(wal.next_lsn()).unwrap();
        assert!(hub.subscribe(Lsn::ZERO).is_err());
        assert!(hub.subscribe(wal.next_lsn()).is_ok());
    }

    #[test]
    fn replica_refuses_writes_and_plain_begin_but_serves_reads() {
        let replica = ReplicaServer::open(
            catalog(),
            Arc::new(MemSegmentStore::new()),
            ReplicaConfig::default(),
        )
        .unwrap();
        replica.execute_sql("CREATE TABLE t (k INT, v INT)").unwrap();
        assert!(matches!(
            replica.execute_sql("INSERT INTO t VALUES (1, 2)"),
            Err(ServerError::ReadOnlyReplica)
        ));
        let sess = replica.session();
        assert!(matches!(sess.execute_sql("BEGIN"), Err(ServerError::ReadOnlyReplica)));
        sess.execute_sql("BEGIN READ ONLY").unwrap();
        let out = sess.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.rows[0].to_string(), "[0]");
        sess.execute_sql("COMMIT").unwrap();
        assert_eq!(replica.status().applied_lsn, Lsn::ZERO);
    }

    #[test]
    fn boot_replay_applies_committed_and_rebuffers_open_transactions() {
        // Build a "shipped" log by hand: one committed insert, one insert
        // whose commit has not arrived yet.
        let store = Arc::new(MemSegmentStore::new());
        {
            let wal = Wal::open_with_segment_pages(Arc::clone(&store) as Arc<dyn SegmentStore>, 4)
                .unwrap();
            let cat = catalog();
            let ctx = ExecContext::new(Arc::clone(&cat));
            let t = {
                cat.create_table_partitioned(
                    "t",
                    staged_storage::Schema::new(vec![staged_storage::Column::new(
                        "k",
                        staged_storage::DataType::Int,
                    )]),
                    1,
                    0,
                )
                .unwrap()
            };
            let row = staged_storage::Tuple::new(vec![staged_storage::Value::Int(7)]);
            let (_, rid) = t.heap.insert_routed(&row).unwrap();
            wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
            wal.append(&LogRecord::Insert { xid: 1, table: t.id.0, rid, bytes: row.encode() })
                .unwrap();
            wal.append(&LogRecord::Commit { xid: 1 }).unwrap();
            wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
            wal.append(&LogRecord::Insert { xid: 2, table: t.id.0, rid, bytes: row.encode() })
                .unwrap();
            wal.flush().unwrap();
            let _ = ctx;
        }
        // The schema must exist (same DDL, same order) before boot replay.
        let cat = catalog();
        cat.create_table_partitioned(
            "t",
            staged_storage::Schema::new(vec![staged_storage::Column::new(
                "k",
                staged_storage::DataType::Int,
            )]),
            1,
            0,
        )
        .unwrap();
        let replica = ReplicaServer::open(
            cat,
            store as Arc<dyn SegmentStore>,
            ReplicaConfig { wal_segment_pages: 4, ..ReplicaConfig::default() },
        )
        .unwrap();
        let status = replica.status();
        assert_eq!(status.lag_records, 1, "open transaction re-buffered");
        assert!(status.applied_lsn > Lsn::ZERO, "committed prefix applied");
    }
}
