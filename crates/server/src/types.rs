//! Server-facing request/response types and configuration.

use staged_core::BatchPolicy;
use staged_engine::staged::EngineConfig;
use staged_planner::PlannerConfig;
use staged_storage::{Schema, Tuple};
use std::fmt;
use std::time::Duration;

/// Result rows (or an affected-row message) returned to a client.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Tuple>,
    /// Schema of the rows, when the statement produces any.
    pub schema: Option<Schema>,
    /// Human-readable completion tag (`INSERT 3`, `CREATE TABLE`, …).
    pub message: String,
}

impl QueryOutput {
    /// Message-only output.
    pub fn message(m: impl Into<String>) -> Self {
        Self { rows: Vec::new(), schema: None, message: m.into() }
    }
}

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// SQL could not be parsed/bound/planned.
    Sql(String),
    /// Execution failed.
    Execution(String),
    /// The session's transaction was aborted server-side (statement
    /// failure or lock timeout); statements are refused until the client
    /// acknowledges with `COMMIT`/`ROLLBACK` (the Postgres convention).
    TxnAborted,
    /// The statement writes (DML/DDL) inside a `BEGIN READ ONLY`
    /// transaction; only reads may run until `COMMIT`/`ROLLBACK`.
    ReadOnly,
    /// The statement writes on a read-only replica (or opens a read-write
    /// transaction there). Replicas apply shipped WAL only; retry against
    /// the primary.
    ReadOnlyReplica,
    /// The server is overloaded (connect queue full, §5.2).
    Overloaded,
    /// The server is shutting down.
    ShuttingDown,
    /// Unknown prepared statement.
    UnknownPrepared(String),
    /// The request violated the wire protocol (network front end only).
    Protocol(String),
}

impl ServerError {
    /// The stable wire error code for this error (`ERR <code> <message>`
    /// lines; see `PROTOCOL.md`). Clients branch on the code, never on the
    /// message text.
    pub fn code(&self) -> staged_wire::ErrorCode {
        use staged_wire::ErrorCode;
        match self {
            ServerError::Sql(_) => ErrorCode::Sql,
            ServerError::Execution(_) => ErrorCode::Exec,
            ServerError::TxnAborted => ErrorCode::TxnAborted,
            ServerError::ReadOnly => ErrorCode::ReadOnly,
            ServerError::ReadOnlyReplica => ErrorCode::ReadOnlyReplica,
            ServerError::Overloaded => ErrorCode::Overloaded,
            ServerError::ShuttingDown => ErrorCode::Shutdown,
            ServerError::UnknownPrepared(_) => ErrorCode::UnknownPrepared,
            ServerError::Protocol(_) => ErrorCode::Proto,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Sql(m) => write!(f, "sql error: {m}"),
            ServerError::Execution(m) => write!(f, "execution error: {m}"),
            ServerError::TxnAborted => {
                write!(f, "current transaction is aborted; issue ROLLBACK before new statements")
            }
            ServerError::ReadOnly => {
                write!(f, "cannot execute a write statement in a read-only transaction")
            }
            ServerError::ReadOnlyReplica => {
                write!(
                    f,
                    "this server is a read-only replica; \
                     writes (and BEGIN without READ ONLY) must go to the primary"
                )
            }
            ServerError::Overloaded => write!(f, "server overloaded"),
            ServerError::ShuttingDown => write!(f, "server shutting down"),
            ServerError::UnknownPrepared(n) => write!(f, "unknown prepared statement {n}"),
            ServerError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<staged_engine::EngineError> for ServerError {
    /// Engine → client error mapping: front-end errors that surfaced at
    /// run time keep the `SQL` wire code, everything else is an execution
    /// error (wire code `EXEC`). The engine's finer-grained class
    /// ([`staged_engine::EngineError::code`]) stays visible through the
    /// message's class prefix (`storage:`, `evaluation error:`, …).
    fn from(e: staged_engine::EngineError) -> Self {
        match &e {
            staged_engine::EngineError::Sql(inner) => ServerError::Sql(inner.to_string()),
            _ => ServerError::Execution(e.to_string()),
        }
    }
}

/// A client response.
pub type Response = Result<QueryOutput, ServerError>;

/// A client request, as accepted by either server.
pub struct Request {
    /// SQL text, or a prepared-statement invocation.
    pub body: RequestBody,
    /// Session the statement belongs to (`None` = one-shot autocommit).
    /// Session-bound DML joins the session's open transaction, if any.
    pub session: Option<u64>,
    /// Channel the response is delivered on.
    pub reply: crossbeam::channel::Sender<Response>,
}

/// What the client asked for.
pub enum RequestBody {
    /// Run a SQL string.
    Sql(String),
    /// Run a previously prepared statement by name (routes connect →
    /// execute, bypassing parse and optimize — paper §4.1).
    Prepared(String),
}

/// Which engine executes SELECT plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Pull-based iterators on the calling worker.
    Volcano,
    /// The staged page-push engine.
    Staged,
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// SELECT execution engine.
    pub mode: ExecutionMode,
    /// Workers for the connect/parse/optimize/disconnect stages.
    pub control_workers: usize,
    /// Workers for the execute stage (it hosts the longest operations).
    pub execute_workers: usize,
    /// Capacity of each top-level stage queue (connect-queue capacity is
    /// the admission limit under overload).
    pub queue_capacity: usize,
    /// Packets a pipeline-stage worker may serve per queue visit (cohort
    /// scheduling, paper §4.2): the connect/parse/optimize/execute/
    /// disconnect stages serve gated cohorts of at most this many packets,
    /// amortizing each stage's cache warm-up and queue synchronization
    /// over the visit. The `net` and `lock` stages always serve
    /// one-at-a-time (see DESIGN.md §11). Tunable at run time through
    /// [`StagedRuntime::set_batch`] on the server's runtime handle.
    ///
    /// [`StagedRuntime::set_batch`]: staged_core::StagedRuntime::set_batch
    pub max_cohort: usize,
    /// Cohort discipline of the batched pipeline stages: gated by
    /// default; [`BatchPolicy::Exhaustive`] or [`BatchPolicy::TGated`]
    /// select non-gated or cutoff service (the §4.2 policy space). The
    /// `net`/`lock` stages ignore this and stay [`BatchPolicy::Single`].
    pub batch: BatchPolicy,
    /// Hash partitions for tables created through this server's DDL path
    /// (1 = unpartitioned). Partitioned tables are scanned and aggregated
    /// partition-parallel by the staged engine (paper §6), and DML routes
    /// rows by hash key through the normal WAL-logged path.
    pub partitions: usize,
    /// Staged-engine tuning.
    pub engine: EngineConfig,
    /// Planner switches.
    pub planner: PlannerConfig,
    /// How long a DML statement may wait for its partition locks before
    /// its transaction is aborted (timeout-abort deadlock resolution at
    /// the lock-manager stage). The checkpoint stage quiesces writers
    /// under the same deadline.
    pub lock_timeout: Duration,
    /// Pages per WAL segment (the log rotates to a new segment file once
    /// the current one reaches this size; checkpoints truncate whole
    /// segments below the checkpoint LSN).
    pub wal_segment_pages: u64,
    /// Auto-checkpoint threshold: when the live log holds more than this
    /// many segments, the checkpoint stage starts a checkpoint on its own
    /// during an idle moment. `None` disables automatic checkpoints
    /// (the `CHECKPOINT` command still works).
    pub checkpoint_segments: Option<u64>,
    /// Per-replica outbox capacity in framed lines: how far a replica's
    /// feed may fall behind the shipping pump before the replica is
    /// evicted rather than buffered further (bounded-queue policy, like
    /// every other stage).
    pub replication_outbox: usize,
    /// Per-subscriber outbox capacity in `CHANGE` lines: how far a
    /// `SUBSCRIBE` feed may fall behind the commit stream before the
    /// subscriber is evicted rather than buffered further (same
    /// bounded-queue policy as replication).
    pub subscription_outbox: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            mode: ExecutionMode::Staged,
            control_workers: 1,
            execute_workers: 4,
            queue_capacity: 128,
            max_cohort: 16,
            batch: BatchPolicy::DGated,
            partitions: 1,
            engine: EngineConfig::default(),
            planner: PlannerConfig::default(),
            lock_timeout: Duration::from_secs(2),
            wal_segment_pages: staged_storage::DEFAULT_SEGMENT_PAGES,
            checkpoint_segments: None,
            replication_outbox: crate::replication::DEFAULT_OUTBOX_CAPACITY,
            subscription_outbox: crate::replication::DEFAULT_OUTBOX_CAPACITY,
        }
    }
}
