//! FluxDB-style reactivity: `SUBSCRIBE` change feeds sourced from the WAL.
//!
//! The [`ReactivityHub`] is the subscription twin of the replication hub
//! (see `replication.rs`): a registry of subscribers, each with a
//! *bounded* outbox of framed `CHANGE` lines and its own cursor into the
//! primary's log. A pump walks the WAL from each subscriber's cursor,
//! buffers row changes per transaction, and on that transaction's
//! `Commit` enqueues the run — whole transactions at a time, in commit
//! order, filtered down to the subscriber's table (and optional `WHERE`
//! predicate). Aborted transactions are discarded unseen, so a feed can
//! never show a change that did not commit, and because the WAL's
//! `Commit` records *are* the commit order, every feed replays the
//! database's history in the exact order it happened.
//!
//! The flow-control policy is lifted verbatim from replication: a full
//! outbox is back-pressure (the cursor simply stays put and the next pump
//! visit retries), but a subscriber that accepts *nothing* across
//! [`crate::replication::EVICTION_FULL_STRIKES`]
//! consecutive full visits has stopped reading and is evicted — its
//! sender drops, the network front end sees the hang-up and closes the
//! socket. Commits never wait on a slow subscriber.
//!
//! Subscriptions start *now*: the cursor begins at the WAL's append
//! position at subscribe time, so a new feed sees only transactions that
//! commit after it. There is no historical replay — a client that wants
//! the current state runs a query first, then subscribes (the usual CDC
//! bootstrap; PROTOCOL.md §8 spells out the guarantee).

use crate::types::ServerError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use staged_engine::expr::eval_predicate;
use staged_sql::ast::Expr;
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::Parser;
use staged_sql::rewrite::fold;
use staged_storage::catalog::TableId;
use staged_storage::wal::{LogRecord, Lsn, Wal};
use staged_storage::{Catalog, Tuple, Value};
use staged_wire::ChangeOp;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::replication::EVICTION_FULL_STRIKES;

/// Point-in-time counters for the `subscriptions` STATS row and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// Subscribers currently connected.
    pub connected: u64,
    /// `CHANGE` lines delivered into subscriber outboxes, total (a change
    /// matching two subscribers counts twice).
    pub delivered_changes: u64,
    /// Subscribers evicted because they stopped draining their bounded
    /// outbox.
    pub evicted: u64,
    /// Committed-but-undelivered `CHANGE` lines currently buffered across
    /// subscribers (each one's outbox overflow queue).
    pub queued_changes: u64,
    /// The worst single subscriber's overflow backlog (committed lines
    /// beyond what its outbox could hold).
    pub max_backlog: u64,
    /// The bounded outbox capacity, in lines.
    pub outbox_capacity: u64,
}

struct Subscriber {
    tx: Sender<String>,
    /// The subscribed table (changes to other tables never match).
    table: TableId,
    /// Bound `WHERE` predicate; `None` matches every row.
    predicate: Option<Expr>,
    /// Next WAL record this subscriber's walk needs.
    cursor: Lsn,
    /// Per-xid runs of encoded `CHANGE` lines awaiting their `Commit`.
    pending: HashMap<u64, Vec<String>>,
    /// Committed lines that did not fit in the outbox yet, in commit
    /// order. Bounded indirectly: the walk stops while this is non-empty,
    /// so it never holds more than the in-flight transactions of one pump
    /// visit.
    ready: VecDeque<String>,
    /// Consecutive pump visits that could deliver nothing into a full
    /// outbox; [`EVICTION_FULL_STRIKES`] of them evict the subscriber.
    full_strikes: u32,
}

struct HubInner {
    next_id: u64,
    subscribers: HashMap<u64, Subscriber>,
}

/// The primary's subscriber registry and change pump. One per server,
/// shared by the network front end (which registers feeds and drains
/// outboxes to sockets) and the pump drivers (the `replication` stage on
/// the staged server, the pump thread on the threaded baseline).
pub struct ReactivityHub {
    wal: Arc<Wal>,
    catalog: Arc<Catalog>,
    outbox_capacity: usize,
    inner: Mutex<HubInner>,
    evicted: AtomicU64,
    delivered: AtomicU64,
}

impl ReactivityHub {
    /// A hub sourcing changes from `wal`, resolving tables and binding
    /// predicates against `catalog`, with per-subscriber outboxes of
    /// `outbox_capacity` framed lines.
    pub fn new(wal: Arc<Wal>, catalog: Arc<Catalog>, outbox_capacity: usize) -> Self {
        Self {
            wal,
            catalog,
            outbox_capacity: outbox_capacity.max(2),
            inner: Mutex::new(HubInner { next_id: 0, subscribers: HashMap::new() }),
            evicted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        }
    }

    /// Register a subscriber for committed changes to `table`, optionally
    /// filtered by a `WHERE` predicate (source text, without the
    /// keyword). Returns the feed id and the outbox receiver the caller
    /// must drain to the socket. The feed starts at the WAL's current
    /// append position: only transactions committing after this call are
    /// streamed.
    pub fn subscribe(
        &self,
        table: &str,
        predicate: Option<&str>,
    ) -> Result<(u64, Receiver<String>), ServerError> {
        let info =
            self.catalog.table(table).map_err(|e| ServerError::Sql(format!("SUBSCRIBE: {e}")))?;
        let predicate = match predicate {
            None => None,
            Some(src) => {
                let mut expr = Parser::new(src, None)
                    .and_then(|mut p| p.parse_expr())
                    .map_err(|e| ServerError::Sql(format!("SUBSCRIBE WHERE: {e}")))?;
                Binder::new(BindContext::new(&self.catalog))
                    .bind_table_predicate(&mut expr, &info)
                    .map_err(|e| ServerError::Sql(format!("SUBSCRIBE WHERE: {e}")))?;
                Some(fold(expr))
            }
        };
        let (tx, rx) = bounded(self.outbox_capacity);
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subscribers.insert(
            id,
            Subscriber {
                tx,
                table: info.id,
                predicate,
                cursor: self.wal.next_lsn(),
                pending: HashMap::new(),
                ready: VecDeque::new(),
                full_strikes: 0,
            },
        );
        Ok((id, rx))
    }

    /// Drop a feed (orderly `UNSUBSCRIBE` or disconnect — not counted as
    /// an eviction).
    pub fn unsubscribe(&self, id: u64) {
        self.inner.lock().subscribers.remove(&id);
    }

    /// True if the subscriber has no committed lines waiting beyond its
    /// outbox (used by the front end to decide whether a drained feed is
    /// fully caught up).
    pub fn is_drained(&self, id: u64) -> bool {
        self.inner.lock().subscribers.get(&id).is_none_or(|s| s.ready.is_empty())
    }

    /// Remove a feed and return every committed line it was still owed:
    /// the overflow queue, plus a final walk of the WAL to the current
    /// tail. This is the orderly-`UNSUBSCRIBE` path — together with a
    /// drain of the outbox receiver it guarantees that every transaction
    /// committed before the `UNSUBSCRIBE` is delivered before the closing
    /// `OK` (PROTOCOL.md §8). Transactions still in flight (no `Commit`
    /// record yet) are not waited for.
    pub fn drain(&self, id: u64) -> Vec<String> {
        let Some(mut s) = self.inner.lock().subscribers.remove(&id) else {
            return Vec::new();
        };
        let mut out: Vec<String> = s.ready.drain(..).collect();
        let store = self.wal.store();
        let (records, _damage) = Wal::read_store_from(store.as_ref(), s.cursor);
        for (lsn, rec) in &records {
            if *lsn < s.cursor {
                continue;
            }
            match rec {
                LogRecord::Begin { .. } => {}
                LogRecord::Insert { xid, table, bytes, .. } => {
                    if let Some(line) = self.encode_match(&s, *table, bytes, ChangeOp::Insert) {
                        s.pending.entry(*xid).or_default().push(line);
                    }
                }
                LogRecord::Delete { xid, table, before, .. } => {
                    if let Some(line) = self.encode_match(&s, *table, before, ChangeOp::Delete) {
                        s.pending.entry(*xid).or_default().push(line);
                    }
                }
                LogRecord::Abort { xid } => {
                    s.pending.remove(xid);
                }
                LogRecord::Commit { xid } => {
                    if let Some(run) = s.pending.remove(xid) {
                        out.extend(run);
                    }
                }
            }
        }
        self.delivered.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Walk the log from each subscriber's cursor, emit committed changes
    /// into its bounded outbox, and apply the replication hub's eviction
    /// discipline to subscribers that stopped draining. Non-blocking;
    /// safe to call from any thread, any time.
    pub fn pump(&self) {
        let mut inner = self.inner.lock();
        if inner.subscribers.is_empty() {
            return;
        }
        let store = self.wal.store();
        let mut dropped: Vec<(u64, bool)> = Vec::new();
        for (id, s) in inner.subscribers.iter_mut() {
            // First drain what previous visits committed but couldn't fit.
            let mut delivered_any = false;
            let mut hit_full = false;
            let mut gone: Option<bool> = None;
            while let Some(line) = s.ready.front() {
                match s.tx.try_send(line.clone()) {
                    Ok(()) => {
                        s.ready.pop_front();
                        self.delivered.fetch_add(1, Ordering::Relaxed);
                        delivered_any = true;
                    }
                    Err(TrySendError::Full(_)) => {
                        hit_full = true;
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        gone = Some(false);
                        break;
                    }
                }
            }
            // Only advance the WAL walk while nothing committed is stuck:
            // that keeps the overflow queue bounded by one visit's worth
            // of commits and makes a stalled subscriber cheap to hold
            // until the strikes evict it.
            if gone.is_none() && s.ready.is_empty() {
                let (records, _damage) = Wal::read_store_from(store.as_ref(), s.cursor);
                for (lsn, rec) in &records {
                    if *lsn < s.cursor {
                        continue;
                    }
                    s.cursor = Lsn { segment: lsn.segment, offset: lsn.offset + 1 };
                    match rec {
                        LogRecord::Begin { .. } => {}
                        LogRecord::Insert { xid, table, bytes, .. } => {
                            if let Some(line) =
                                self.encode_match(s, *table, bytes, ChangeOp::Insert)
                            {
                                s.pending.entry(*xid).or_default().push(line);
                            }
                        }
                        LogRecord::Delete { xid, table, before, .. } => {
                            if let Some(line) =
                                self.encode_match(s, *table, before, ChangeOp::Delete)
                            {
                                s.pending.entry(*xid).or_default().push(line);
                            }
                        }
                        LogRecord::Abort { xid } => {
                            s.pending.remove(xid);
                        }
                        LogRecord::Commit { xid } => {
                            let Some(run) = s.pending.remove(xid) else { continue };
                            for line in run {
                                if gone.is_some() || hit_full {
                                    s.ready.push_back(line);
                                    continue;
                                }
                                match s.tx.try_send(line) {
                                    Ok(()) => {
                                        self.delivered.fetch_add(1, Ordering::Relaxed);
                                        delivered_any = true;
                                    }
                                    Err(TrySendError::Full(l)) => {
                                        hit_full = true;
                                        s.ready.push_back(l);
                                    }
                                    Err(TrySendError::Disconnected(_)) => gone = Some(false),
                                }
                            }
                            // Stop walking once this visit is saturated;
                            // the cursor already passed this commit, and
                            // `ready` holds the overflow in order.
                            if gone.is_some() || hit_full {
                                break;
                            }
                        }
                    }
                }
            }
            if gone.is_none() {
                if hit_full && !delivered_any {
                    s.full_strikes += 1;
                    if s.full_strikes >= EVICTION_FULL_STRIKES {
                        gone = Some(true);
                    }
                } else {
                    s.full_strikes = 0;
                }
            }
            if let Some(evicted) = gone {
                dropped.push((*id, evicted));
            }
        }
        for (id, evicted) in dropped {
            inner.subscribers.remove(&id);
            if evicted {
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Decode a logged row image and encode the `CHANGE` line, when the
    /// record is for the subscriber's table and its row passes the
    /// predicate. Rows that fail to decode or evaluate are skipped — a
    /// feed filters, it never fails the pump.
    fn encode_match(
        &self,
        s: &Subscriber,
        table: u32,
        row_bytes: &[u8],
        op: ChangeOp,
    ) -> Option<String> {
        if s.table.0 != table {
            return None;
        }
        let tuple = Tuple::decode(row_bytes).ok()?;
        if let Some(pred) = &s.predicate {
            if !eval_predicate(pred, &tuple).unwrap_or(false) {
                return None;
            }
        }
        let info = self.catalog.table_by_id(s.table).ok()?;
        let fields: Vec<Option<String>> = tuple
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => None,
                other => Some(other.to_string()),
            })
            .collect();
        Some(staged_wire::encode_change(&info.name, op, &fields))
    }

    /// Current subscription counters.
    pub fn stats(&self) -> SubscriptionStats {
        let inner = self.inner.lock();
        let mut queued = 0u64;
        let mut max_backlog = 0u64;
        for s in inner.subscribers.values() {
            let backlog = s.ready.len() as u64;
            queued += s.ready.len() as u64;
            max_backlog = max_backlog.max(backlog);
        }
        SubscriptionStats {
            connected: inner.subscribers.len() as u64,
            delivered_changes: self.delivered.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            queued_changes: queued,
            max_backlog,
            outbox_capacity: self.outbox_capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::{
        BufferPool, Column, DataType, MemDisk, MemSegmentStore, Schema, SegmentStore,
    };

    fn catalog() -> Arc<Catalog> {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256)));
        cat.create_table(
            "t",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
        )
        .unwrap();
        cat
    }

    fn row(id: i64, v: i64) -> Vec<u8> {
        Tuple::new(vec![Value::Int(id), Value::Int(v)]).encode()
    }

    fn hub_with(catalog: Arc<Catalog>, capacity: usize) -> (ReactivityHub, Arc<Wal>) {
        let wal =
            Arc::new(Wal::open(Arc::new(MemSegmentStore::new()) as Arc<dyn SegmentStore>).unwrap());
        let hub = ReactivityHub::new(Arc::clone(&wal), catalog, capacity);
        (hub, wal)
    }

    fn table_id(cat: &Catalog) -> u32 {
        cat.table("t").unwrap().id.0
    }

    #[test]
    fn committed_changes_stream_in_commit_order_and_aborts_vanish() {
        let cat = catalog();
        let tid = table_id(&cat);
        let (hub, wal) = hub_with(Arc::clone(&cat), 64);
        let (_id, rx) = hub.subscribe("t", None).unwrap();

        // Interleaved xids: 1 commits, 2 aborts, 3 commits after 1.
        let rid = staged_storage::Rid { page: staged_storage::PageId(0), slot: 0 };
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        wal.append(&LogRecord::Insert { xid: 2, table: tid, rid, bytes: row(99, 0) }).unwrap();
        wal.append(&LogRecord::Insert { xid: 1, table: tid, rid, bytes: row(1, 10) }).unwrap();
        wal.append(&LogRecord::Abort { xid: 2 }).unwrap();
        wal.append(&LogRecord::Insert { xid: 1, table: tid, rid, bytes: row(2, 20) }).unwrap();
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();
        wal.append(&LogRecord::Begin { xid: 3 }).unwrap();
        wal.append(&LogRecord::Delete { xid: 3, table: tid, rid, before: row(1, 10) }).unwrap();
        wal.append(&LogRecord::Commit { xid: 3 }).unwrap();

        hub.pump();
        let lines: Vec<String> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        assert_eq!(
            lines,
            vec![
                "CHANGE t INSERT\t1\t10".to_string(),
                "CHANGE t INSERT\t2\t20".to_string(),
                "CHANGE t DELETE\t1\t10".to_string(),
            ]
        );
        assert_eq!(hub.stats().delivered_changes, 3);
    }

    #[test]
    fn subscriptions_start_at_the_current_wal_position() {
        let cat = catalog();
        let tid = table_id(&cat);
        let (hub, wal) = hub_with(Arc::clone(&cat), 64);
        let rid = staged_storage::Rid { page: staged_storage::PageId(0), slot: 0 };
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        wal.append(&LogRecord::Insert { xid: 1, table: tid, rid, bytes: row(1, 1) }).unwrap();
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

        // History before the subscribe call never replays.
        let (_id, rx) = hub.subscribe("t", None).unwrap();
        hub.pump();
        assert!(rx.try_recv().is_err());

        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        wal.append(&LogRecord::Insert { xid: 2, table: tid, rid, bytes: row(2, 2) }).unwrap();
        wal.append(&LogRecord::Commit { xid: 2 }).unwrap();
        hub.pump();
        assert_eq!(rx.try_recv().unwrap(), "CHANGE t INSERT\t2\t2");
    }

    #[test]
    fn where_predicates_filter_the_feed() {
        let cat = catalog();
        let tid = table_id(&cat);
        let (hub, wal) = hub_with(Arc::clone(&cat), 64);
        let (_id, rx) = hub.subscribe("t", Some("v > 15 AND id < 100")).unwrap();
        let rid = staged_storage::Rid { page: staged_storage::PageId(0), slot: 0 };
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        for (id, v) in [(1, 10), (2, 20), (3, 30), (200, 99)] {
            wal.append(&LogRecord::Insert { xid: 1, table: tid, rid, bytes: row(id, v) }).unwrap();
        }
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();
        hub.pump();
        let lines: Vec<String> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        assert_eq!(lines, vec!["CHANGE t INSERT\t2\t20", "CHANGE t INSERT\t3\t30"]);
    }

    #[test]
    fn bad_subscriptions_are_refused() {
        let cat = catalog();
        let (hub, _wal) = hub_with(cat, 64);
        assert!(matches!(hub.subscribe("nope", None), Err(ServerError::Sql(_))));
        assert!(matches!(hub.subscribe("t", Some("bogus !!")), Err(ServerError::Sql(_))));
        assert!(matches!(hub.subscribe("t", Some("missing > 1")), Err(ServerError::Sql(_))));
        // Aggregates can't stream row-at-a-time.
        assert!(matches!(hub.subscribe("t", Some("SUM(v) > 1")), Err(ServerError::Sql(_))));
    }

    #[test]
    fn full_outbox_is_flow_control_then_strikes_evict() {
        let cat = catalog();
        let tid = table_id(&cat);
        let (hub, wal) = hub_with(Arc::clone(&cat), 2);
        let (id, rx) = hub.subscribe("t", None).unwrap();
        let rid = staged_storage::Rid { page: staged_storage::PageId(0), slot: 0 };
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        for i in 0..6 {
            wal.append(&LogRecord::Insert { xid: 1, table: tid, rid, bytes: row(i, i) }).unwrap();
        }
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();

        // Visit 1 delivers what fits; the rest is queued, not dropped.
        hub.pump();
        assert_eq!(hub.stats().connected, 1);
        assert_eq!(hub.stats().queued_changes, 4);

        // A draining subscriber keeps receiving every line, in order.
        let mut got = Vec::new();
        for _ in 0..4 {
            while let Ok(l) = rx.try_recv() {
                got.push(l);
            }
            hub.pump();
        }
        while let Ok(l) = rx.try_recv() {
            got.push(l);
        }
        assert_eq!(got.len(), 6);
        assert!(got.iter().enumerate().all(|(i, l)| l == &format!("CHANGE t INSERT\t{i}\t{i}")));
        assert_eq!(hub.stats().evicted, 0);
        hub.unsubscribe(id);

        // A subscriber that stops reading entirely: strikes, then eviction.
        let (_id2, rx2) = hub.subscribe("t", None).unwrap();
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        for i in 0..6 {
            wal.append(&LogRecord::Insert { xid: 2, table: tid, rid, bytes: row(i, i) }).unwrap();
        }
        wal.append(&LogRecord::Commit { xid: 2 }).unwrap();
        hub.pump(); // fills the outbox (delivers 2) — not a strike yet
        for _ in 0..EVICTION_FULL_STRIKES {
            assert_eq!(hub.stats().connected, 1, "still connected while striking");
            hub.pump();
        }
        assert_eq!(hub.stats().connected, 0);
        assert_eq!(hub.stats().evicted, 1);
        // The sender side dropped: the front end sees the hang-up.
        let drained: Vec<String> = std::iter::from_fn(|| rx2.try_recv().ok()).collect();
        assert_eq!(drained.len(), 2);
        assert!(rx2.try_recv().is_err());
    }

    #[test]
    fn drain_returns_the_owed_tail_in_order() {
        let cat = catalog();
        let tid = table_id(&cat);
        let (hub, wal) = hub_with(Arc::clone(&cat), 2);
        let (id, rx) = hub.subscribe("t", None).unwrap();
        let rid = staged_storage::Rid { page: staged_storage::PageId(0), slot: 0 };
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        for i in 0..4 {
            wal.append(&LogRecord::Insert { xid: 1, table: tid, rid, bytes: row(i, i) }).unwrap();
        }
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();
        hub.pump(); // outbox (cap 2) takes two lines, overflow queues two
                    // Commit a transaction the pump never visits, and leave one in
                    // flight: drain owes the overflow + the unseen commit, nothing
                    // from the open transaction.
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        wal.append(&LogRecord::Insert { xid: 2, table: tid, rid, bytes: row(9, 9) }).unwrap();
        wal.append(&LogRecord::Commit { xid: 2 }).unwrap();
        wal.append(&LogRecord::Begin { xid: 3 }).unwrap();
        wal.append(&LogRecord::Insert { xid: 3, table: tid, rid, bytes: row(8, 8) }).unwrap();

        let tail = hub.drain(id);
        let outbox: Vec<String> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        let mut all = outbox;
        all.extend(tail);
        assert_eq!(
            all,
            vec![
                "CHANGE t INSERT\t0\t0".to_string(),
                "CHANGE t INSERT\t1\t1".to_string(),
                "CHANGE t INSERT\t2\t2".to_string(),
                "CHANGE t INSERT\t3\t3".to_string(),
                "CHANGE t INSERT\t9\t9".to_string(),
            ]
        );
        assert_eq!(hub.stats().connected, 0);
        assert_eq!(hub.stats().delivered_changes, 5);
    }

    #[test]
    fn unsubscribe_releases_the_feed() {
        let cat = catalog();
        let (hub, _wal) = hub_with(cat, 8);
        let (id, rx) = hub.subscribe("t", None).unwrap();
        assert_eq!(hub.stats().connected, 1);
        hub.unsubscribe(id);
        assert_eq!(hub.stats().connected, 0);
        assert!(rx.try_recv().is_err());
    }
}
