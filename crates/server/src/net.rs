//! The network front end: a TCP wire protocol feeding the staged pipeline.
//!
//! This module opens both servers to real client traffic over
//! [`std::net::TcpListener`], speaking the newline-delimited text protocol
//! of `PROTOCOL.md` (executable vocabulary in the `staged-wire` crate).
//! The two servers keep their architectural identities:
//!
//! * **Staged** — connection reader threads are *pure I/O*: they frame
//!   lines, decode commands and enqueue each statement into the staged
//!   server's dedicated `net` **admission stage**. From there the packet
//!   flows `net → connect → parse → (optimize | lock) → execute →
//!   disconnect` exactly as an in-process submission would. The `net`
//!   stage's bounded queue is the admission buffer: when the pipeline
//!   falls behind, `enqueue` blocks the reader thread, the reader stops
//!   draining its socket, and TCP's own flow control pushes back on the
//!   client — back-pressure end to end, with zero protocol machinery.
//! * **Threaded** — thread-per-connection, the classical monolithic
//!   design: the connection's thread decodes and runs each statement as a
//!   direct procedure-call chain. The two front ends answer byte-identical
//!   responses for the same script (`tests/net.rs` diffs them over real
//!   sockets).
//!
//! **Connection lifecycle.** Every connection owns one session
//! ([`crate::StagedServer::session`] / [`crate::ThreadedServer::session`]),
//! so `BEGIN` binds transactions to the connection and a disconnect —
//! orderly `QUIT`, client crash, or read error — drops the session handle
//! and aborts any open transaction (PR 3's abort-on-drop), releasing its
//! locks. A connection beyond [`NetConfig::max_connections`] is greeted
//! with `ERR OVERLOADED` and closed: admission control before any session
//! state is allocated.

use crate::replication::{ReplicaServer, ReplicaSession, ReplicationHub};
use crate::types::{QueryOutput, Response, ServerError};
use crate::{StagedServer, StagedSession, ThreadedServer, ThreadedSession};
use parking_lot::Mutex;
use staged_storage::wal::Lsn;
use staged_storage::{Column, DataType, Schema, Tuple, Value};
use staged_wire as wire;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Network front-end tuning.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connections served concurrently; further clients are refused with
    /// `ERR OVERLOADED` at accept time.
    pub max_connections: usize,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag. Purely an internal latency/CPU trade-off.
    pub poll_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { max_connections: 64, poll_interval: Duration::from_millis(25) }
    }
}

/// Front-end counters (monotonic except `active`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Connections accepted (including later-refused ones).
    pub accepted: u64,
    /// Connections refused by the `max_connections` admission limit.
    pub rejected: u64,
    /// Connections currently being served.
    pub active: usize,
}

/// One server-side wire session: a connection's statement executor.
///
/// Dropping the value must abort any transaction the connection left open
/// (both impls wrap the servers' session handles, which already do).
pub trait WireSession: Send + 'static {
    /// Run one SQL statement under the connection's session, to completion.
    fn statement(&self, sql: &str) -> Response;
}

/// A server that can sit behind [`serve`]: it opens per-connection
/// sessions and answers the `STATS` monitor command.
pub trait WireBackend: Send + Sync + Clone + 'static {
    /// The per-connection session type.
    type Session: WireSession;
    /// Open a session for a newly accepted connection.
    fn open_session(&self) -> Self::Session;
    /// One row per stage (or pool) for the `STATS` command; schema
    /// documented in `PROTOCOL.md` §6.
    fn stats_output(&self) -> QueryOutput;
    /// The `CHECKPOINT` admin command: quiesce, snapshot, truncate the
    /// WAL. Blocks the caller until the checkpoint finishes (or times out
    /// against writers that will not drain).
    fn checkpoint(&self) -> Response;
    /// The WAL-shipping hub, when this backend can act as a replication
    /// primary. `None` (the default) refuses `REPLICATE` — a replica, for
    /// instance, does not re-ship its feed.
    fn replication(&self) -> Option<Arc<ReplicationHub>> {
        None
    }
}

/// The result-set schema of the `STATS` wire command.
fn stats_schema() -> Schema {
    Schema::new(vec![
        Column::new("stage", DataType::Str),
        Column::new("processed", DataType::Int),
        Column::new("errors", DataType::Int),
        Column::new("retries", DataType::Int),
        Column::new("idle_polls", DataType::Int),
        Column::new("cohorts", DataType::Int),
        Column::new("max_cohort", DataType::Int),
        Column::new("preempts", DataType::Int),
        Column::new("batch", DataType::Int),
        Column::new("queued", DataType::Int),
        Column::new("workers", DataType::Int),
    ])
}

/// The synthetic `mvcc` STATS row, following the wal/exchange convention of
/// reusing the stage columns for the layer's own quantities: `processed` =
/// commit timestamps allocated, `cohorts` = tracked creation stamps,
/// `max_cohort` = dead versions retained, `preempts` = writer transactions
/// with unflipped entries, `batch` = dead versions reclaimed by vacuum so
/// far, `queued` = snapshot pins currently held. See PROTOCOL.md §6.
fn mvcc_row(catalog: &staged_storage::Catalog, txn: &crate::session::TxnRuntime) -> Tuple {
    let mut created = 0u64;
    let mut dead = 0u64;
    let mut pending = 0u64;
    let mut reclaimed = 0u64;
    for table in catalog.list_tables() {
        let s = table.versions.stats();
        created += s.created;
        dead += s.dead;
        pending += s.pending_txns;
        reclaimed += table.versions.gc_totals().0;
    }
    let oracle = txn.mgr().oracle();
    Tuple::new(vec![
        Value::Str("mvcc".into()),
        Value::Int(oracle.latest() as i64),
        Value::Int(0),
        Value::Int(0),
        Value::Int(0),
        Value::Int(created as i64),
        Value::Int(dead as i64),
        Value::Int(pending as i64),
        Value::Int(reclaimed as i64),
        Value::Int(oracle.pins() as i64),
        Value::Int(0),
    ])
}

/// The synthetic `replication` STATS row of a **primary**, reusing the
/// stage columns: `processed` = records shipped, `errors` = slow replicas
/// evicted, `idle_polls`/`preempts` = shipped LSN (segment/offset),
/// `cohorts` = connected replicas, `max_cohort` = worst per-replica lag in
/// unacked records, `batch` = outbox capacity, `queued` = total unacked
/// records. See PROTOCOL.md §6.
fn replication_row(hub: &ReplicationHub) -> Tuple {
    let s = hub.stats();
    Tuple::new(vec![
        Value::Str("replication".into()),
        Value::Int(s.shipped_records as i64),
        Value::Int(s.evicted as i64),
        Value::Int(0),
        Value::Int(s.shipped_lsn.segment as i64),
        Value::Int(s.connected as i64),
        Value::Int(s.max_lag_records as i64),
        Value::Int(s.shipped_lsn.offset as i64),
        Value::Int(s.outbox_capacity as i64),
        Value::Int(s.unacked_records as i64),
        Value::Int(0),
    ])
}

// ---------------------------------------------------------------------------
// Backend impls for the two servers
// ---------------------------------------------------------------------------

/// A staged-server wire session: statements enter through the `net`
/// admission stage and flow down the full pipeline.
pub struct StagedWireSession {
    session: StagedSession,
}

impl WireSession for StagedWireSession {
    fn statement(&self, sql: &str) -> Response {
        self.session.execute_sql_admitted(sql)
    }
}

impl WireBackend for Arc<StagedServer> {
    type Session = StagedWireSession;

    fn open_session(&self) -> StagedWireSession {
        StagedWireSession { session: self.session() }
    }

    fn stats_output(&self) -> QueryOutput {
        let mut rows = self
            .stage_stats()
            .into_iter()
            // The replication stage's only work is its idle-hook pump; its
            // queue row would shadow the shipping summary row of the same
            // name pushed below, which carries the useful counters.
            .filter(|s| s.name != "replication")
            .map(|s| {
                Tuple::new(vec![
                    Value::Str(s.name),
                    Value::Int(s.processed as i64),
                    Value::Int(s.errors as i64),
                    Value::Int(s.retries as i64),
                    Value::Int(s.idle_polls as i64),
                    Value::Int(s.cohorts as i64),
                    Value::Int(s.max_cohort as i64),
                    Value::Int(s.cutoff_preempts as i64),
                    Value::Int(s.batch_limit as i64),
                    Value::Int(s.queue.depth as i64),
                    Value::Int(s.spawned_workers as i64),
                ])
            })
            .collect::<Vec<_>>();
        // One synthetic row for the engine's exchange layer: the `batch`
        // column carries the live exchange page size (§4.4 knob (c)), the
        // same way stage rows carry their cohort bound (knob (b)). See
        // PROTOCOL.md §6.
        rows.push(Tuple::new(vec![
            Value::Str("exchange".into()),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(self.engine().page_size() as i64),
            Value::Int(0),
            Value::Int(0),
        ]));
        // And one for the write-ahead log, following the same convention
        // of reusing the stage columns for the layer's own quantities:
        // `processed` = pages written, `queued` = live segments, `batch` =
        // pages per segment (the rotation threshold). See PROTOCOL.md §6.
        let wal = self.wal();
        rows.push(Tuple::new(vec![
            Value::Str("wal".into()),
            Value::Int(wal.io_stats().writes as i64),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(wal.segment_pages() as i64),
            Value::Int(wal.segments().map(|s| s.len()).unwrap_or(0) as i64),
            Value::Int(0),
        ]));
        // And one for the MVCC layer (version overlays + commit oracle).
        rows.push(mvcc_row(self.catalog(), self.txn_runtime()));
        // And one for the WAL-shipping hub.
        rows.push(replication_row(self.replication_hub()));
        let n = rows.len();
        QueryOutput { rows, schema: Some(stats_schema()), message: format!("STATS {n}") }
    }

    fn checkpoint(&self) -> Response {
        StagedServer::checkpoint(self)
    }

    fn replication(&self) -> Option<Arc<ReplicationHub>> {
        Some(Arc::clone(self.replication_hub()))
    }
}

impl WireSession for ThreadedSession {
    fn statement(&self, sql: &str) -> Response {
        // Thread-per-connection: the connection's thread runs the whole
        // pipeline itself instead of parking behind the shared pool queue.
        self.execute_sql_direct(sql)
    }
}

impl WireBackend for Arc<ThreadedServer> {
    type Session = ThreadedSession;

    fn open_session(&self) -> ThreadedSession {
        self.session()
    }

    fn stats_output(&self) -> QueryOutput {
        // The monolithic baseline has no per-stage monitors — one coarse
        // row for the whole pool, same schema. It also has no cohorts:
        // a thread runs one query start to finish (batch reads as 1).
        let mut rows = vec![Tuple::new(vec![
            Value::Str("pool".into()),
            Value::Int(self.served() as i64),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(1),
            Value::Int(self.backlog() as i64),
            Value::Int(self.pool_size() as i64),
        ])];
        rows.push(mvcc_row(self.catalog(), self.txn_runtime()));
        rows.push(replication_row(self.replication_hub()));
        let n = rows.len();
        QueryOutput { rows, schema: Some(stats_schema()), message: format!("STATS {n}") }
    }

    fn checkpoint(&self) -> Response {
        ThreadedServer::checkpoint(self)
    }

    fn replication(&self) -> Option<Arc<ReplicationHub>> {
        Some(Arc::clone(self.replication_hub()))
    }
}

/// A replica wire session: snapshot reads (and bootstrap DDL) only.
pub struct ReplicaWireSession {
    session: ReplicaSession,
}

impl WireSession for ReplicaWireSession {
    fn statement(&self, sql: &str) -> Response {
        self.session.execute_sql(sql)
    }
}

impl WireBackend for Arc<ReplicaServer> {
    type Session = ReplicaWireSession;

    fn open_session(&self) -> ReplicaWireSession {
        ReplicaWireSession { session: self.session() }
    }

    fn stats_output(&self) -> QueryOutput {
        // The replica's `replication` row is the *apply* side of the
        // shipping columns: `processed` = records applied, `errors` =
        // stream errors, `retries` = subscriptions (reconnect count + 1),
        // `idle_polls`/`preempts` = applied LSN (segment/offset),
        // `cohorts` = 1 when the feed is connected, `queued` =
        // records buffered behind their commit. See PROTOCOL.md §6.
        let feed = self.feed_stats();
        let status = self.status();
        let rows = vec![
            Tuple::new(vec![
                Value::Str("replication".into()),
                Value::Int(feed.applied_records as i64),
                Value::Int(feed.stream_errors as i64),
                Value::Int(feed.connects as i64),
                Value::Int(status.applied_lsn.segment as i64),
                Value::Int(feed.connected as i64),
                Value::Int(status.lag_records as i64),
                Value::Int(status.applied_lsn.offset as i64),
                Value::Int(0),
                Value::Int(status.lag_records as i64),
                Value::Int(0),
            ]),
            mvcc_row(self.catalog(), self.txn_runtime()),
        ];
        let n = rows.len();
        QueryOutput { rows, schema: Some(stats_schema()), message: format!("STATS {n}") }
    }

    fn checkpoint(&self) -> Response {
        // The replica's WAL layout mirrors the primary's; truncating it
        // locally would break exactly-once resume.
        Err(ServerError::ReadOnlyReplica)
    }
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => wire::NULL_FIELD.to_string(),
        Value::Str(s) => wire::escape_field(s),
        other => wire::escape_field(&other.to_string()),
    }
}

/// Encode one response as protocol lines (`META`/`ROW`* then `OK`, or one
/// `ERR`). Exposed for the front end and its tests; the byte format is
/// specified in `PROTOCOL.md` §4.
pub fn encode_response(resp: &Response) -> String {
    let mut out = String::new();
    match resp {
        Ok(output) => {
            if let Some(schema) = &output.schema {
                out.push_str(&format!("META {}", schema.len()));
                for col in schema.columns() {
                    out.push_str(&format!(" {}:{}", col.name, col.ty));
                }
                out.push('\n');
                for row in &output.rows {
                    out.push_str("ROW ");
                    for (i, v) in row.values().iter().enumerate() {
                        if i > 0 {
                            out.push('\t');
                        }
                        out.push_str(&encode_value(v));
                    }
                    out.push('\n');
                }
            }
            out.push_str(&format!("OK {}\n", wire::escape_message(&output.message)));
        }
        Err(e) => {
            out.push_str(&format!("ERR {} {}\n", e.code(), wire::escape_message(&e.to_string())));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The listener
// ---------------------------------------------------------------------------

struct NetShared {
    stop: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    active: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
    config: NetConfig,
}

/// A running TCP front end; dropping (or [`shutdown`](Self::shutdown)ing)
/// it stops the accept loop and joins every connection handler.
pub struct NetHandle {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl NetHandle {
    /// The address the front end is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current connection counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            active: self.shared.active.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, close live connections at the next poll tick, and
    /// join all front-end threads. Idempotent. The backend server is NOT
    /// shut down — callers own that.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        let conns: Vec<_> = self.shared.conns.lock().drain(..).collect();
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve the wire protocol on `listener`, opening one backend session per
/// connection. Returns immediately; the accept loop runs on its own thread
/// until the handle is shut down or dropped.
pub fn serve<B: WireBackend>(
    listener: TcpListener,
    backend: B,
    config: NetConfig,
) -> std::io::Result<NetHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(NetShared {
        stop: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        conns: Mutex::new(Vec::new()),
        config,
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("net-accept".into())
        .spawn(move || accept_loop(listener, backend, accept_shared))?;
    Ok(NetHandle { addr, shared, accept_thread: Mutex::new(Some(accept_thread)) })
}

fn accept_loop<B: WireBackend>(listener: TcpListener, backend: B, shared: Arc<NetShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        // Reap finished connection handlers so a long-lived server's
        // handle list tracks *live* connections, not every connection it
        // has ever served (shutdown still joins whatever remains).
        shared.conns.lock().retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                let backend = backend.clone();
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("net-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &backend, &conn_shared);
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection handler");
                shared.conns.lock().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

/// Over the admission limit: say why, then hang up. No session is opened.
///
/// The goodbye is more delicate than it looks: dropping the stream right
/// after the write can turn into a TCP RST (if the client sends anything
/// against the closed socket), and an RST discards data the client has
/// not yet read — the client would see ECONNRESET instead of the
/// `ERR OVERLOADED` code PROTOCOL.md §2 promises. So: half-close the
/// write side, then briefly drain reads until the client observes EOF and
/// closes (or a short deadline passes). Runs on a detached thread so an
/// overload storm cannot stall the accept loop behind slow refusals.
fn refuse(mut stream: TcpStream) {
    std::thread::spawn(move || {
        let err: Response = Err(ServerError::Overloaded);
        let _ = stream.write_all(greeting().as_bytes());
        let _ = stream.write_all(encode_response(&err).as_bytes());
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 256];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });
}

fn greeting() -> String {
    format!("HELLO {} staged-db\n", wire::PROTOCOL_VERSION)
}

/// Serve one connection until EOF, `QUIT`, shutdown or a fatal framing
/// error. The backend session (and with it any open transaction) is
/// dropped — aborted — on every exit path.
fn handle_connection<B: WireBackend>(
    mut stream: TcpStream,
    backend: &B,
    shared: &Arc<NetShared>,
) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    stream.write_all(greeting().as_bytes())?;
    let session = backend.open_session();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Drain complete lines already buffered before reading more.
        while let Some(nl) = buf.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            match respond(&line[..nl], &session, backend) {
                Reply::Text(text) => {
                    stream.write_all(text.as_bytes())?;
                    stream.flush()?;
                }
                Reply::Bye => {
                    stream.write_all(b"BYE\n")?;
                    break 'conn;
                }
                Reply::Replicate(from) => {
                    // The connection stops being request/response and
                    // becomes a WAL feed; it never comes back.
                    match backend.replication() {
                        Some(hub) => {
                            let r = stream_feed(stream, &hub, from, shared, buf);
                            return r;
                        }
                        None => {
                            let err: Response = Err(ServerError::Protocol(
                                "this server does not ship WAL (not a primary)".into(),
                            ));
                            stream.write_all(encode_response(&err).as_bytes())?;
                            break 'conn;
                        }
                    }
                }
            }
        }
        if buf.len() > wire::MAX_LINE_BYTES {
            let err: Response =
                Err(ServerError::Protocol(format!("line exceeds {} bytes", wire::MAX_LINE_BYTES)));
            stream.write_all(encode_response(&err).as_bytes())?;
            break 'conn;
        }
        if shared.stop.load(Ordering::SeqCst) {
            let err: Response = Err(ServerError::ShuttingDown);
            let _ = stream.write_all(encode_response(&err).as_bytes());
            break 'conn;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn, // client hung up; session drop aborts
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break 'conn,
        }
    }
    Ok(())
}

/// How many outbox bytes a feed connection will hold in its own write
/// buffer before it stops draining the outbox — so a stalled socket fills
/// the *bounded* outbox (and gets the replica evicted by the pump) instead
/// of growing an unbounded local buffer.
const FEED_PENDING_CAP: usize = 64 * 1024;

/// Drop guard: a feed that exits any way (error, eviction, shutdown)
/// unregisters its replica so it stops pinning the checkpoint floor.
struct FeedGuard<'a> {
    hub: &'a ReplicationHub,
    id: u64,
}

impl Drop for FeedGuard<'_> {
    fn drop(&mut self) {
        self.hub.disconnect(self.id);
    }
}

/// Serve one `REPLICATE` subscription: relay the hub's outbox to the
/// socket and `ACK` lines back to the hub, until eviction, disconnect or
/// shutdown. `leftover` is whatever the reader buffered past the
/// `REPLICATE` line (early ACKs).
fn stream_feed(
    mut stream: TcpStream,
    hub: &Arc<ReplicationHub>,
    from: Lsn,
    shared: &Arc<NetShared>,
    mut leftover: Vec<u8>,
) -> std::io::Result<()> {
    let (id, rx) = match hub.subscribe(from) {
        Ok(sub) => sub,
        Err(e) => {
            let err: Response = Err(e);
            stream.write_all(encode_response(&err).as_bytes())?;
            return Ok(());
        }
    };
    let _guard = FeedGuard { hub, id };
    // Short timeouts make the relay loop responsive in both directions: a
    // blocked write must not stop ACK reading for long, and vice versa.
    stream.set_write_timeout(Some(shared.config.poll_interval))?;
    stream.set_read_timeout(Some(Duration::from_millis(1)))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Pull framed lines from the outbox — but only while our own
        // write buffer is small; past the cap the bounded outbox must
        // fill so the pump can evict us.
        if pending.len() < FEED_PENDING_CAP {
            loop {
                match rx.try_recv() {
                    Ok(line) => {
                        pending.extend_from_slice(line.as_bytes());
                        pending.push(b'\n');
                        if pending.len() >= FEED_PENDING_CAP {
                            break;
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return Ok(()),
                }
            }
        }
        // Push to the socket (bounded by the write timeout).
        while !pending.is_empty() {
            match stream.write(&pending) {
                Ok(0) => return Ok(()),
                Ok(n) => {
                    pending.drain(..n);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(_) => return Ok(()),
            }
        }
        // Relay ACK lines back to the hub.
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                leftover.extend_from_slice(&chunk[..n]);
                while let Some(nl) = leftover.iter().position(|b| *b == b'\n') {
                    let line: Vec<u8> = leftover.drain(..=nl).collect();
                    if let Ok(text) = std::str::from_utf8(&line[..nl]) {
                        if let Ok((segment, offset)) = wire::parse_ack(text.trim_end()) {
                            hub.ack(id, Lsn { segment, offset });
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Ok(()),
        }
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        if pending.is_empty() {
            // Caught up: let the hub look for fresh records (the feed
            // thread drives its own catch-up instead of waiting for the
            // pump stage's idle tick), then block briefly on the outbox.
            hub.pump();
            match rx.recv_timeout(shared.config.poll_interval) {
                Ok(line) => {
                    pending.extend_from_slice(line.as_bytes());
                    pending.push(b'\n');
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }
}

enum Reply {
    Text(String),
    Bye,
    /// `REPLICATE <lsn>`: hand the connection over to the WAL feed.
    Replicate(Lsn),
}

fn respond<B: WireBackend>(raw: &[u8], session: &B::Session, backend: &B) -> Reply {
    let Ok(line) = std::str::from_utf8(raw) else {
        let err: Response = Err(ServerError::Protocol("request is not valid UTF-8".into()));
        return Reply::Text(encode_response(&err));
    };
    if line.trim().is_empty() {
        return Reply::Text(String::new());
    }
    match wire::parse_command(line) {
        Ok(wire::Command::Ping) => Reply::Text("PONG\n".into()),
        Ok(wire::Command::Quit) => Reply::Bye,
        Ok(wire::Command::Stats) => Reply::Text(encode_response(&Ok(backend.stats_output()))),
        Ok(wire::Command::Checkpoint) => Reply::Text(encode_response(&backend.checkpoint())),
        Ok(wire::Command::Replicate { segment, offset }) => {
            Reply::Replicate(Lsn { segment, offset })
        }
        Ok(wire::Command::Query(sql)) => Reply::Text(encode_response(&session.statement(&sql))),
        Err(msg) => {
            let err: Response = Err(ServerError::Protocol(msg));
            Reply::Text(encode_response(&err))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_ok_with_rows() {
        let out = QueryOutput {
            rows: vec![
                Tuple::new(vec![Value::Int(1), Value::Str("a\tb".into())]),
                Tuple::new(vec![Value::Null, Value::Str("plain".into())]),
            ],
            schema: Some(Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Str),
            ])),
            message: "SELECT 2".into(),
        };
        let text = encode_response(&Ok(out));
        assert_eq!(text, "META 2 k:INT v:VARCHAR\nROW 1\ta\\tb\nROW \\N\tplain\nOK SELECT 2\n");
    }

    #[test]
    fn encode_message_only() {
        assert_eq!(encode_response(&Ok(QueryOutput::message("BEGIN"))), "OK BEGIN\n");
    }

    #[test]
    fn encode_errors_carry_stable_codes() {
        let cases: Vec<(Response, &str)> = vec![
            (Err(ServerError::Sql("nope".into())), "ERR SQL sql error: nope\n"),
            (Err(ServerError::Overloaded), "ERR OVERLOADED server overloaded\n"),
            (
                Err(ServerError::TxnAborted),
                "ERR TXN_ABORTED current transaction is aborted; \
                 issue ROLLBACK before new statements\n",
            ),
        ];
        for (resp, want) in cases {
            assert_eq!(encode_response(&resp), want);
        }
    }

    #[test]
    fn multiline_error_messages_stay_one_line() {
        let resp: Response = Err(ServerError::Execution("two\nlines".into()));
        let text = encode_response(&resp);
        assert_eq!(text.matches('\n').count(), 1);
        assert!(text.ends_with('\n'));
    }
}
