//! The network front end: one event-driven reader multiplexing every
//! connection, feeding the staged pipeline.
//!
//! This module opens both servers to real client traffic over
//! [`std::net::TcpListener`], speaking the newline-delimited text protocol
//! of `PROTOCOL.md` (executable vocabulary in the `staged-wire` crate).
//! Since PR 10 the front end is a **single-threaded event loop** (the
//! `net-loop` thread): every socket is nonblocking and registered with a
//! `poll(2)` readiness set (the std-only `polling` shim), so one thread
//! multiplexes thousands of connections — accepting, framing lines
//! incrementally from per-connection read buffers, and flushing
//! per-connection write buffers under write-side readiness. The
//! thread-per-connection reader is gone for both servers; what remains
//! per-connection is a few KB of buffer state, not a stack.
//!
//! The two servers keep their architectural identities behind the same
//! loop:
//!
//! * **Staged** — each decoded statement is enqueued *without blocking*
//!   into the staged server's dedicated `net` **admission stage**
//!   ([`crate::StagedServer::try_submit_admitted`]); from there the packet
//!   flows `net → connect → parse → (optimize | lock) → execute →
//!   disconnect` exactly as an in-process submission would.
//! * **Threaded** — statements enter the monolithic baseline's pool queue
//!   and a pool worker runs the whole pipeline as direct procedure calls
//!   (§3.1.1). The front end is pure I/O for both; the two answer
//!   byte-identical responses for the same script (`tests/net.rs` diffs
//!   them over real sockets).
//!
//! **Back-pressure.** When a backend queue is full the submission returns
//! [`Submission::Busy`]; the loop parks the decoded line and — crucially —
//! stops registering read interest for that socket. The client's sends
//! accumulate in kernel buffers until TCP's own flow control pushes back:
//! overload propagates to the wire with zero protocol machinery and zero
//! parked threads (DESIGN.md §16). The same rule bounds the write side: a
//! connection whose responses aren't draining stops being read.
//!
//! **Connection lifecycle.** Every connection owns one session
//! ([`crate::StagedServer::session`] / [`crate::ThreadedServer::session`]),
//! so `BEGIN` binds transactions to the connection and a disconnect —
//! orderly `QUIT`, client crash, or read error — drops the session handle
//! and aborts any open transaction (PR 3's abort-on-drop), releasing its
//! locks. A connection beyond [`NetConfig::max_connections`] is greeted
//! with `ERR OVERLOADED` and closed — handled by the same loop as a
//! write-then-drain connection, so an overload storm costs buffers, not
//! threads.
//!
//! **Feeds.** A `REPLICATE` connection becomes a WAL relay (outbox →
//! socket, `ACK` lines → hub) and a `SUBSCRIBE` connection a change-feed
//! relay (`CHANGE` lines from the [`crate::ReactivityHub`]); both are
//! served in-loop, draining their bounded outboxes into the connection's
//! write buffer only while it is small — a stalled socket fills the
//! bounded outbox and gets the subscriber evicted by the pump, never an
//! unbounded local buffer (PROTOCOL.md §7–8).

use crate::reactivity::ReactivityHub;
use crate::replication::{ReplicaServer, ReplicaSession, ReplicationHub};
use crate::types::{QueryOutput, Response, ServerError};
use crate::{StagedServer, StagedSession, ThreadedServer, ThreadedSession};
use crossbeam::channel::{bounded, Receiver, TryRecvError, WakeHook};
use parking_lot::Mutex;
use polling::{Interest, PollFd};
use staged_storage::wal::Lsn;
use staged_storage::{Column, DataType, Schema, Tuple, Value};
use staged_wire as wire;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Network front-end tuning.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connections served concurrently; further clients are refused with
    /// `ERR OVERLOADED` at accept time.
    pub max_connections: usize,
    /// The event loop's idle tick: the longest `poll(2)` sleep when no
    /// statement is in flight. Bounds shutdown latency, feed-pump latency
    /// and `Busy` retry latency. Purely an internal latency/CPU trade-off.
    pub poll_interval: Duration,
    /// The loop-wide multiprogramming level: connections *doing work* —
    /// a statement in flight, or a transaction open — concurrently,
    /// across the whole fleet. The event loop parks any statement that
    /// would acquire a new slot beyond this (it waits decoded in its
    /// connection, whose read interest drops — back-pressure reaches
    /// TCP), so a four-digit connection fleet cannot flood the
    /// pipeline's bounded stage queues: concurrent transactions stay
    /// below `ServerConfig::queue_capacity` no matter how many sockets
    /// are connected. Statements that *continue* an open transaction
    /// (its DML, its COMMIT/ROLLBACK) are always admitted — the slot is
    /// already held, and throttling them is a priority inversion:
    /// without the exemption, admitted lock waiters occupy every slot
    /// while the statements that would release those locks sit parked,
    /// and nothing moves until lock timeouts fire. The same convoy is
    /// why the cap exists at all: >queue_capacity concurrent writers
    /// fill the lock stage's queue with parked waiters, upstream stages
    /// block, and COMMIT packets can't get in.
    pub max_inflight: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { max_connections: 64, poll_interval: Duration::from_millis(25), max_inflight: 64 }
    }
}

/// Front-end counters (monotonic except `active`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Connections accepted (including later-refused ones).
    pub accepted: u64,
    /// Connections refused by the `max_connections` admission limit.
    pub rejected: u64,
    /// Connections currently being served.
    pub active: usize,
}

/// What a backend did with one submitted statement. The event loop never
/// blocks on a statement; this is the three-way contract that makes that
/// possible.
pub enum Submission {
    /// Answered synchronously (replica reads, refusals).
    Ready(Response),
    /// Admitted; the response arrives on the receiver when the pipeline
    /// (or pool) finishes it.
    Queued(Receiver<Response>),
    /// The backend's bounded queue is full. The loop keeps the decoded
    /// statement and retries; until it is admitted the connection's
    /// socket is not read — back-pressure reaches TCP.
    Busy,
}

/// One server-side wire session: a connection's statement executor.
///
/// Dropping the value must abort any transaction the connection left open
/// (all impls wrap the servers' session handles, which already do).
pub trait WireSession: Send + 'static {
    /// Submit one SQL statement under the connection's session, without
    /// blocking the caller.
    fn submit(&self, sql: &str) -> Submission;
}

/// A server that can sit behind [`serve`]: it opens per-connection
/// sessions and answers the `STATS` monitor command.
pub trait WireBackend: Send + Sync + Clone + 'static {
    /// The per-connection session type.
    type Session: WireSession;
    /// Open a session for a newly accepted connection.
    fn open_session(&self) -> Self::Session;
    /// One row per stage (or pool) for the `STATS` command; schema
    /// documented in `PROTOCOL.md` §6.
    fn stats_output(&self) -> QueryOutput;
    /// Start the `CHECKPOINT` admin command (quiesce, snapshot, truncate
    /// the WAL) without blocking the caller; the receiver completes when
    /// the checkpoint does.
    fn submit_checkpoint(&self) -> Receiver<Response>;
    /// The WAL-shipping hub, when this backend can act as a replication
    /// primary. `None` (the default) refuses `REPLICATE` — a replica, for
    /// instance, does not re-ship its feed.
    fn replication(&self) -> Option<Arc<ReplicationHub>> {
        None
    }
    /// The `SUBSCRIBE` change-feed hub. `None` (the default) refuses
    /// `SUBSCRIBE` — a replica serves snapshot reads, not feeds.
    fn reactivity(&self) -> Option<Arc<ReactivityHub>> {
        None
    }
}

/// The result-set schema of the `STATS` wire command.
fn stats_schema() -> Schema {
    Schema::new(vec![
        Column::new("stage", DataType::Str),
        Column::new("processed", DataType::Int),
        Column::new("errors", DataType::Int),
        Column::new("retries", DataType::Int),
        Column::new("idle_polls", DataType::Int),
        Column::new("cohorts", DataType::Int),
        Column::new("max_cohort", DataType::Int),
        Column::new("preempts", DataType::Int),
        Column::new("batch", DataType::Int),
        Column::new("queued", DataType::Int),
        Column::new("workers", DataType::Int),
    ])
}

/// The synthetic `mvcc` STATS row, following the wal/exchange convention of
/// reusing the stage columns for the layer's own quantities: `processed` =
/// commit timestamps allocated, `cohorts` = tracked creation stamps,
/// `max_cohort` = dead versions retained, `preempts` = writer transactions
/// with unflipped entries, `batch` = dead versions reclaimed by vacuum so
/// far, `queued` = snapshot pins currently held. See PROTOCOL.md §6.
fn mvcc_row(catalog: &staged_storage::Catalog, txn: &crate::session::TxnRuntime) -> Tuple {
    let mut created = 0u64;
    let mut dead = 0u64;
    let mut pending = 0u64;
    let mut reclaimed = 0u64;
    for table in catalog.list_tables() {
        let s = table.versions.stats();
        created += s.created;
        dead += s.dead;
        pending += s.pending_txns;
        reclaimed += table.versions.gc_totals().0;
    }
    let oracle = txn.mgr().oracle();
    Tuple::new(vec![
        Value::Str("mvcc".into()),
        Value::Int(oracle.latest() as i64),
        Value::Int(0),
        Value::Int(0),
        Value::Int(0),
        Value::Int(created as i64),
        Value::Int(dead as i64),
        Value::Int(pending as i64),
        Value::Int(reclaimed as i64),
        Value::Int(oracle.pins() as i64),
        Value::Int(0),
    ])
}

/// The synthetic `replication` STATS row of a **primary**, reusing the
/// stage columns: `processed` = records shipped, `errors` = slow replicas
/// evicted, `idle_polls`/`preempts` = shipped LSN (segment/offset),
/// `cohorts` = connected replicas, `max_cohort` = worst per-replica lag in
/// unacked records, `batch` = outbox capacity, `queued` = total unacked
/// records. See PROTOCOL.md §6.
fn replication_row(hub: &ReplicationHub) -> Tuple {
    let s = hub.stats();
    Tuple::new(vec![
        Value::Str("replication".into()),
        Value::Int(s.shipped_records as i64),
        Value::Int(s.evicted as i64),
        Value::Int(0),
        Value::Int(s.shipped_lsn.segment as i64),
        Value::Int(s.connected as i64),
        Value::Int(s.max_lag_records as i64),
        Value::Int(s.shipped_lsn.offset as i64),
        Value::Int(s.outbox_capacity as i64),
        Value::Int(s.unacked_records as i64),
        Value::Int(0),
    ])
}

/// The synthetic `subscriptions` STATS row (the `SUBSCRIBE` feed hub),
/// reusing the stage columns: `processed` = `CHANGE` lines delivered to
/// outboxes, `errors` = slow subscribers evicted, `cohorts` = live
/// subscribers, `max_cohort` = worst single subscriber's overflow backlog,
/// `batch` = outbox capacity, `queued` = committed lines queued beyond
/// full outboxes. See PROTOCOL.md §6.
fn subscriptions_row(hub: &ReactivityHub) -> Tuple {
    let s = hub.stats();
    Tuple::new(vec![
        Value::Str("subscriptions".into()),
        Value::Int(s.delivered_changes as i64),
        Value::Int(s.evicted as i64),
        Value::Int(0),
        Value::Int(0),
        Value::Int(s.connected as i64),
        Value::Int(s.max_backlog as i64),
        Value::Int(0),
        Value::Int(s.outbox_capacity as i64),
        Value::Int(s.queued_changes as i64),
        Value::Int(0),
    ])
}

// ---------------------------------------------------------------------------
// Backend impls for the two servers
// ---------------------------------------------------------------------------

/// A staged-server wire session: statements enter through the `net`
/// admission stage and flow down the full pipeline.
pub struct StagedWireSession {
    session: StagedSession,
}

impl WireSession for StagedWireSession {
    fn submit(&self, sql: &str) -> Submission {
        match self.session.try_submit_admitted(sql) {
            Ok(rx) => Submission::Queued(rx),
            Err(ServerError::Overloaded) => Submission::Busy,
            Err(e) => Submission::Ready(Err(e)),
        }
    }
}

impl WireBackend for Arc<StagedServer> {
    type Session = StagedWireSession;

    fn open_session(&self) -> StagedWireSession {
        StagedWireSession { session: self.session() }
    }

    fn stats_output(&self) -> QueryOutput {
        let mut rows = self
            .stage_stats()
            .into_iter()
            // The replication stage's only work is its idle-hook pump; its
            // queue row would shadow the shipping summary row of the same
            // name pushed below, which carries the useful counters.
            .filter(|s| s.name != "replication")
            .map(|s| {
                Tuple::new(vec![
                    Value::Str(s.name),
                    Value::Int(s.processed as i64),
                    Value::Int(s.errors as i64),
                    Value::Int(s.retries as i64),
                    Value::Int(s.idle_polls as i64),
                    Value::Int(s.cohorts as i64),
                    Value::Int(s.max_cohort as i64),
                    Value::Int(s.cutoff_preempts as i64),
                    Value::Int(s.batch_limit as i64),
                    Value::Int(s.queue.depth as i64),
                    Value::Int(s.spawned_workers as i64),
                ])
            })
            .collect::<Vec<_>>();
        // One synthetic row for the engine's exchange layer: the `batch`
        // column carries the live exchange page size (§4.4 knob (c)), the
        // same way stage rows carry their cohort bound (knob (b)). See
        // PROTOCOL.md §6.
        rows.push(Tuple::new(vec![
            Value::Str("exchange".into()),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(self.engine().page_size() as i64),
            Value::Int(0),
            Value::Int(0),
        ]));
        // And one for the write-ahead log, following the same convention
        // of reusing the stage columns for the layer's own quantities:
        // `processed` = pages written, `queued` = live segments, `batch` =
        // pages per segment (the rotation threshold). See PROTOCOL.md §6.
        let wal = self.wal();
        rows.push(Tuple::new(vec![
            Value::Str("wal".into()),
            Value::Int(wal.io_stats().writes as i64),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(wal.segment_pages() as i64),
            Value::Int(wal.segments().map(|s| s.len()).unwrap_or(0) as i64),
            Value::Int(0),
        ]));
        // And one for the MVCC layer (version overlays + commit oracle).
        rows.push(mvcc_row(self.catalog(), self.txn_runtime()));
        // And one for the WAL-shipping hub, one for the SUBSCRIBE hub.
        rows.push(replication_row(self.replication_hub()));
        rows.push(subscriptions_row(self.reactivity_hub()));
        let n = rows.len();
        QueryOutput { rows, schema: Some(stats_schema()), message: format!("STATS {n}") }
    }

    fn submit_checkpoint(&self) -> Receiver<Response> {
        StagedServer::submit_checkpoint(self)
    }

    fn replication(&self) -> Option<Arc<ReplicationHub>> {
        Some(Arc::clone(self.replication_hub()))
    }

    fn reactivity(&self) -> Option<Arc<ReactivityHub>> {
        Some(Arc::clone(self.reactivity_hub()))
    }
}

impl WireSession for ThreadedSession {
    fn submit(&self, sql: &str) -> Submission {
        // The monolithic baseline: a pool worker runs the whole pipeline.
        // The front end only enqueues — a full pool queue is `Busy`, and
        // the event loop stops reading the socket until it drains.
        match self.try_submit(sql) {
            Ok(rx) => Submission::Queued(rx),
            Err(ServerError::Overloaded) => Submission::Busy,
            Err(e) => Submission::Ready(Err(e)),
        }
    }
}

impl WireBackend for Arc<ThreadedServer> {
    type Session = ThreadedSession;

    fn open_session(&self) -> ThreadedSession {
        self.session()
    }

    fn stats_output(&self) -> QueryOutput {
        // The monolithic baseline has no per-stage monitors — one coarse
        // row for the whole pool, same schema. It also has no cohorts:
        // a thread runs one query start to finish (batch reads as 1).
        let mut rows = vec![Tuple::new(vec![
            Value::Str("pool".into()),
            Value::Int(self.served() as i64),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Int(1),
            Value::Int(self.backlog() as i64),
            Value::Int(self.pool_size() as i64),
        ])];
        rows.push(mvcc_row(self.catalog(), self.txn_runtime()));
        rows.push(replication_row(self.replication_hub()));
        rows.push(subscriptions_row(self.reactivity_hub()));
        let n = rows.len();
        QueryOutput { rows, schema: Some(stats_schema()), message: format!("STATS {n}") }
    }

    fn submit_checkpoint(&self) -> Receiver<Response> {
        // The monolithic checkpoint blocks its caller through the quiesce;
        // an ephemeral thread keeps that contract away from the event
        // loop. Rare (admin command), so the thread cost is irrelevant.
        let (tx, rx) = bounded(1);
        let server = Arc::clone(self);
        std::thread::Builder::new()
            .name("ckpt".into())
            .spawn(move || {
                let _ = tx.send(ThreadedServer::checkpoint(&server));
            })
            .expect("spawn checkpoint thread");
        rx
    }

    fn replication(&self) -> Option<Arc<ReplicationHub>> {
        Some(Arc::clone(self.replication_hub()))
    }

    fn reactivity(&self) -> Option<Arc<ReactivityHub>> {
        Some(Arc::clone(self.reactivity_hub()))
    }
}

/// A replica wire session: snapshot reads (and bootstrap DDL) only.
pub struct ReplicaWireSession {
    session: ReplicaSession,
}

impl WireSession for ReplicaWireSession {
    fn submit(&self, sql: &str) -> Submission {
        // Replica statements are snapshot reads answered inline; there is
        // no queue to overload.
        Submission::Ready(self.session.execute_sql(sql))
    }
}

impl WireBackend for Arc<ReplicaServer> {
    type Session = ReplicaWireSession;

    fn open_session(&self) -> ReplicaWireSession {
        ReplicaWireSession { session: self.session() }
    }

    fn stats_output(&self) -> QueryOutput {
        // The replica's `replication` row is the *apply* side of the
        // shipping columns: `processed` = records applied, `errors` =
        // stream errors, `retries` = subscriptions (reconnect count + 1),
        // `idle_polls`/`preempts` = applied LSN (segment/offset),
        // `cohorts` = 1 when the feed is connected, `queued` =
        // records buffered behind their commit. See PROTOCOL.md §6.
        let feed = self.feed_stats();
        let status = self.status();
        let rows = vec![
            Tuple::new(vec![
                Value::Str("replication".into()),
                Value::Int(feed.applied_records as i64),
                Value::Int(feed.stream_errors as i64),
                Value::Int(feed.connects as i64),
                Value::Int(status.applied_lsn.segment as i64),
                Value::Int(feed.connected as i64),
                Value::Int(status.lag_records as i64),
                Value::Int(status.applied_lsn.offset as i64),
                Value::Int(0),
                Value::Int(status.lag_records as i64),
                Value::Int(0),
            ]),
            mvcc_row(self.catalog(), self.txn_runtime()),
        ];
        let n = rows.len();
        QueryOutput { rows, schema: Some(stats_schema()), message: format!("STATS {n}") }
    }

    fn submit_checkpoint(&self) -> Receiver<Response> {
        // The replica's WAL layout mirrors the primary's; truncating it
        // locally would break exactly-once resume.
        let (tx, rx) = bounded(1);
        let _ = tx.send(Err(ServerError::ReadOnlyReplica));
        rx
    }
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => wire::NULL_FIELD.to_string(),
        Value::Str(s) => wire::escape_field(s),
        other => wire::escape_field(&other.to_string()),
    }
}

/// Encode one response as protocol lines (`META`/`ROW`* then `OK`, or one
/// `ERR`). Exposed for the front end and its tests; the byte format is
/// specified in `PROTOCOL.md` §4.
pub fn encode_response(resp: &Response) -> String {
    let mut out = String::new();
    match resp {
        Ok(output) => {
            if let Some(schema) = &output.schema {
                out.push_str(&format!("META {}", schema.len()));
                for col in schema.columns() {
                    out.push_str(&format!(" {}:{}", col.name, col.ty));
                }
                out.push('\n');
                for row in &output.rows {
                    out.push_str("ROW ");
                    for (i, v) in row.values().iter().enumerate() {
                        if i > 0 {
                            out.push('\t');
                        }
                        out.push_str(&encode_value(v));
                    }
                    out.push('\n');
                }
            }
            out.push_str(&format!("OK {}\n", wire::escape_message(&output.message)));
        }
        Err(e) => {
            out.push_str(&format!("ERR {} {}\n", e.code(), wire::escape_message(&e.to_string())));
        }
    }
    out
}

fn greeting() -> String {
    format!("HELLO {} staged-db\n", wire::PROTOCOL_VERSION)
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// How many outbox bytes a feed connection will hold in its write buffer
/// before it stops draining the outbox — so a stalled socket fills the
/// *bounded* outbox (and gets the replica or subscriber evicted by the
/// pump) instead of growing an unbounded local buffer.
const FEED_PENDING_CAP: usize = 64 * 1024;

/// Stop reading a connection whose write buffer has grown past this: its
/// responses aren't draining, so new requests must wait in the kernel.
const WBUF_SOFT_CAP: usize = 256 * 1024;

/// How long a closing connection's reads are drained after the half-close,
/// so the goodbye (`BYE`, `ERR OVERLOADED`, …) survives instead of being
/// discarded by a TCP RST.
const CLOSE_DRAIN: Duration = Duration::from_millis(250);

/// Yield-spin budget while statements are in flight: the loop gives the
/// stage (or pool) workers the CPU and re-checks completions before
/// falling back to a 1 ms `poll`, keeping request→response latency close
/// to the old blocking reader's.
const INFLIGHT_SPIN: usize = 128;

struct NetShared {
    stop: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    active: AtomicUsize,
    config: NetConfig,
}

/// A running TCP front end; dropping (or [`shutdown`](Self::shutdown)ing)
/// it stops the event loop and joins its thread.
pub struct NetHandle {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl NetHandle {
    /// The address the front end is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current connection counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            active: self.shared.active.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting, close live connections at the next loop tick, and
    /// join the event-loop thread. Idempotent. The backend server is NOT
    /// shut down — callers own that.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve the wire protocol on `listener`, opening one backend session per
/// connection. Returns immediately; a single `net-loop` thread accepts and
/// multiplexes every connection until the handle is shut down or dropped.
pub fn serve<B: WireBackend>(
    listener: TcpListener,
    backend: B,
    config: NetConfig,
) -> std::io::Result<NetHandle> {
    listener.set_nonblocking(true)?;
    widen_backlog(&listener, &config);
    let addr = listener.local_addr()?;
    let shared = Arc::new(NetShared {
        stop: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        config,
    });
    let loop_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("net-loop".into())
        .spawn(move || net_loop(listener, backend, loop_shared))?;
    Ok(NetHandle { addr, shared, thread: Mutex::new(Some(thread)) })
}

/// What a connection currently is, beyond a plain command/response stream.
enum Mode {
    /// Request/response statements.
    Command,
    /// A `REPLICATE` WAL feed: outbox → socket, `ACK` lines → hub.
    Replicate { hub: Arc<ReplicationHub>, id: u64, rx: Receiver<String> },
    /// A `SUBSCRIBE` change feed: outbox → socket; only `UNSUBSCRIBE`,
    /// `PING` and `QUIT` are accepted inbound.
    Subscribe { hub: Arc<ReactivityHub>, id: u64, rx: Receiver<String> },
    /// Goodbye written (or being written): flush, half-close, drain reads
    /// briefly, drop.
    Closing,
}

/// Per-connection state: a nonblocking socket plus the buffers and
/// in-flight bookkeeping the loop multiplexes over. This is the whole
/// per-connection footprint — no thread, no stack.
struct Conn<S> {
    stream: TcpStream,
    session: Option<S>,
    mode: Mode,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// The admitted statement's reply channel, while one is running. At
    /// most one per connection: the protocol is sequential per client.
    inflight: Option<Receiver<Response>>,
    /// A decoded statement the backend refused with [`Submission::Busy`]
    /// (its queue was full); retried every pass. While set, the socket is
    /// not read.
    pending: Option<String>,
    /// What the in-flight statement's completion does to [`Self::txn_open`]
    /// (classified from its leading keyword at dispatch).
    inflight_effect: TxnEffect,
    /// The session has an open transaction: this connection holds an
    /// admission slot ([`NetConfig::max_inflight`]) until it closes, and
    /// its statements bypass the budget — they finish work the pipeline
    /// has already invested locks in.
    txn_open: bool,
    write_closed: bool,
    drain_deadline: Option<Instant>,
    dead: bool,
}

/// How a statement's completion changes the connection's transaction
/// state. Tracked at the front end (the session does not expose it) so
/// admission can distinguish new work from work a held slot is finishing.
#[derive(Clone, Copy, PartialEq)]
enum TxnEffect {
    /// Ordinary statement: no change.
    Keep,
    /// `BEGIN …`: success opens a transaction (failure means one was
    /// already open, so the state is true either way on error-inside-txn;
    /// a failed BEGIN outside a transaction leaves it closed).
    Opens,
    /// `COMMIT` / `ROLLBACK`: the transaction is closed whatever the
    /// outcome — committing a failed transaction rolls it back.
    Closes,
}

/// Classify a statement's transaction effect from its leading keyword.
fn txn_effect(sql: &str) -> TxnEffect {
    let word = sql.split_whitespace().next().unwrap_or("");
    if word.eq_ignore_ascii_case("BEGIN") {
        TxnEffect::Opens
    } else if word.eq_ignore_ascii_case("COMMIT") || word.eq_ignore_ascii_case("ROLLBACK") {
        TxnEffect::Closes
    } else {
        TxnEffect::Keep
    }
}

impl<S: WireSession> Conn<S> {
    fn new(stream: TcpStream, session: S) -> Conn<S> {
        Conn {
            stream,
            session: Some(session),
            mode: Mode::Command,
            rbuf: Vec::new(),
            wbuf: greeting().into_bytes(),
            inflight: None,
            pending: None,
            inflight_effect: TxnEffect::Keep,
            txn_open: false,
            write_closed: false,
            drain_deadline: None,
            dead: false,
        }
    }

    /// Over the admission limit: greet, say why, then hang up — no
    /// session is opened. The same flush → half-close → drain path every
    /// closing connection takes; the drain keeps the refusal from being
    /// discarded by a TCP RST (PROTOCOL.md §2 promises the client sees
    /// `ERR OVERLOADED`, not ECONNRESET).
    fn refused(stream: TcpStream) -> Conn<S> {
        let mut wbuf = greeting().into_bytes();
        let err: Response = Err(ServerError::Overloaded);
        wbuf.extend_from_slice(encode_response(&err).as_bytes());
        Conn {
            stream,
            session: None,
            mode: Mode::Closing,
            rbuf: Vec::new(),
            wbuf,
            inflight: None,
            pending: None,
            inflight_effect: TxnEffect::Keep,
            txn_open: false,
            write_closed: false,
            drain_deadline: None,
            dead: false,
        }
    }

    /// Should the loop register read interest for this socket? This
    /// predicate *is* the back-pressure policy: an in-flight or parked
    /// statement, an undispatched line, or an undrained write buffer all
    /// mean "don't pull more bytes off the wire".
    fn wants_read(&self) -> bool {
        match self.mode {
            Mode::Command => {
                self.inflight.is_none()
                    && self.pending.is_none()
                    && !self.rbuf.contains(&b'\n')
                    && self.wbuf.len() < WBUF_SOFT_CAP
            }
            Mode::Replicate { .. } | Mode::Subscribe { .. } | Mode::Closing => true,
        }
    }

    /// Append one `ERR` reply to the write buffer.
    fn push_err(&mut self, e: ServerError) {
        let resp: Response = Err(e);
        self.wbuf.extend_from_slice(encode_response(&resp).as_bytes());
    }

    /// Release everything the connection holds on the server — feed
    /// registration, session (abort-on-drop for open transactions) — and
    /// leave it in `Closing`. Idempotent; called on every exit path.
    fn release(&mut self) {
        match std::mem::replace(&mut self.mode, Mode::Closing) {
            Mode::Replicate { hub, id, .. } => hub.disconnect(id),
            Mode::Subscribe { hub, id, .. } => hub.unsubscribe(id),
            _ => {}
        }
        self.session = None;
        self.inflight = None;
        self.pending = None;
        self.txn_open = false;
    }

    /// Nonblocking read into the frame buffer (discarded in `Closing`).
    fn read_some(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    if !matches!(self.mode, Mode::Closing) {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                    }
                    if n < chunk.len() || self.rbuf.len() > WBUF_SOFT_CAP {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Nonblocking flush of the write buffer.
    fn flush(&mut self) {
        while !self.wbuf.is_empty() {
            match self.stream.write(&self.wbuf) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Drive a closing connection: once the goodbye is flushed, half-close
    /// the write side and drain reads until the client observes EOF and
    /// closes (or a short deadline passes).
    fn advance_closing(&mut self) {
        if !matches!(self.mode, Mode::Closing) || self.dead {
            return;
        }
        if self.wbuf.is_empty() && !self.write_closed {
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
            self.write_closed = true;
            self.drain_deadline = Some(Instant::now() + CLOSE_DRAIN);
        }
        if let Some(d) = self.drain_deadline {
            if Instant::now() >= d {
                self.dead = true;
            }
        }
    }

    /// Consume a completed statement's response, if any.
    fn poll_completion(&mut self) {
        let Some(rx) = &self.inflight else { return };
        match rx.try_recv() {
            Ok(resp) => {
                match self.inflight_effect {
                    TxnEffect::Opens if resp.is_ok() => self.txn_open = true,
                    TxnEffect::Closes => self.txn_open = false,
                    _ => {}
                }
                self.inflight_effect = TxnEffect::Keep;
                self.wbuf.extend_from_slice(encode_response(&resp).as_bytes());
                self.inflight = None;
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                self.push_err(ServerError::ShuttingDown);
                self.release();
            }
        }
    }
}

/// Pop one complete line (without its newline) off the frame buffer.
fn take_line(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    let nl = buf.iter().position(|b| *b == b'\n')?;
    let mut line: Vec<u8> = buf.drain(..=nl).collect();
    line.pop();
    Some(line)
}

/// Submit one statement; `Busy` parks it for retry (and, transitively,
/// stops the socket being read).
fn dispatch_query<S: WireSession>(
    conn: &mut Conn<S>,
    sql: String,
    budget: &mut usize,
    waker: &LoopWaker,
) {
    let Some(session) = conn.session.as_ref() else {
        conn.push_err(ServerError::ShuttingDown);
        return;
    };
    // The loop-wide admission budget is exhausted and this statement
    // would acquire a new slot: park it without submitting (identical to
    // the backend itself answering Busy). A connection with an open
    // transaction already holds its slot — its statements are the path
    // to releasing locks, so they are never parked here.
    if *budget == 0 && !conn.txn_open {
        conn.pending = Some(sql);
        return;
    }
    let effect = txn_effect(&sql);
    match session.submit(&sql) {
        Submission::Ready(resp) => {
            match effect {
                TxnEffect::Opens if resp.is_ok() => conn.txn_open = true,
                TxnEffect::Closes => conn.txn_open = false,
                _ => {}
            }
            conn.wbuf.extend_from_slice(encode_response(&resp).as_bytes());
        }
        Submission::Queued(rx) => {
            waker.watch(&rx);
            conn.inflight = Some(rx);
            conn.inflight_effect = effect;
            if !conn.txn_open {
                *budget -= 1;
            }
        }
        Submission::Busy => conn.pending = Some(sql),
    }
}

/// Decode and act on one command line in request/response mode.
fn dispatch_command<B: WireBackend>(
    conn: &mut Conn<B::Session>,
    backend: &B,
    raw: Vec<u8>,
    budget: &mut usize,
    waker: &LoopWaker,
) {
    let Ok(text) = std::str::from_utf8(&raw) else {
        conn.push_err(ServerError::Protocol("request is not valid UTF-8".into()));
        return;
    };
    if text.trim().is_empty() {
        return;
    }
    match wire::parse_command(text) {
        Ok(wire::Command::Ping) => conn.wbuf.extend_from_slice(b"PONG\n"),
        Ok(wire::Command::Quit) => {
            conn.wbuf.extend_from_slice(b"BYE\n");
            conn.release();
        }
        Ok(wire::Command::Stats) => {
            let text = encode_response(&Ok(backend.stats_output()));
            conn.wbuf.extend_from_slice(text.as_bytes());
        }
        Ok(wire::Command::Checkpoint) => {
            let rx = backend.submit_checkpoint();
            waker.watch(&rx);
            conn.inflight = Some(rx);
            conn.inflight_effect = TxnEffect::Keep;
            *budget = budget.saturating_sub(1);
        }
        Ok(wire::Command::Replicate { segment, offset }) => match backend.replication() {
            Some(hub) => match hub.subscribe(Lsn { segment, offset }) {
                // The connection stops being request/response and becomes
                // a WAL feed; it never comes back.
                Ok((id, rx)) => {
                    waker.watch(&rx);
                    conn.mode = Mode::Replicate { hub, id, rx };
                }
                Err(e) => {
                    conn.push_err(e);
                    conn.release();
                }
            },
            None => {
                conn.push_err(ServerError::Protocol(
                    "this server does not ship WAL (not a primary)".into(),
                ));
                conn.release();
            }
        },
        Ok(wire::Command::Subscribe { table, predicate }) => match backend.reactivity() {
            Some(hub) => match hub.subscribe(&table, predicate.as_deref()) {
                Ok((id, rx)) => {
                    let ok: Response = Ok(QueryOutput::message(format!("SUBSCRIBE {table}")));
                    conn.wbuf.extend_from_slice(encode_response(&ok).as_bytes());
                    waker.watch(&rx);
                    conn.mode = Mode::Subscribe { hub, id, rx };
                }
                // Bad table / predicate: refuse the subscription, keep the
                // connection usable.
                Err(e) => conn.push_err(e),
            },
            None => conn.push_err(ServerError::Protocol(
                "this server does not serve change feeds (read-only replica)".into(),
            )),
        },
        Ok(wire::Command::Unsubscribe) => conn
            .push_err(ServerError::Protocol("no subscription is active on this connection".into())),
        Ok(wire::Command::Query(sql)) => dispatch_query(conn, sql, budget, waker),
        Err(msg) => conn.push_err(ServerError::Protocol(msg)),
    }
}

/// Decode one inbound line while a subscription is active: only
/// `UNSUBSCRIBE`, `PING` and `QUIT` make sense mid-feed.
fn dispatch_subscribed<S: WireSession>(conn: &mut Conn<S>, raw: Vec<u8>) {
    let Ok(text) = std::str::from_utf8(&raw) else {
        conn.push_err(ServerError::Protocol("request is not valid UTF-8".into()));
        return;
    };
    if text.trim().is_empty() {
        return;
    }
    match wire::parse_command(text) {
        Ok(wire::Command::Ping) => conn.wbuf.extend_from_slice(b"PONG\n"),
        Ok(wire::Command::Quit) => {
            conn.wbuf.extend_from_slice(b"BYE\n");
            conn.release();
        }
        Ok(wire::Command::Unsubscribe) => {
            if let Mode::Subscribe { hub, id, rx } =
                std::mem::replace(&mut conn.mode, Mode::Command)
            {
                // Unregister first (the pump stops feeding the outbox) and
                // collect the tail the hub still owed this feed, then relay
                // the outbox followed by that tail: every change committed
                // before the UNSUBSCRIBE is delivered before the closing OK.
                let tail = hub.drain(id);
                while let Ok(line) = rx.try_recv() {
                    conn.wbuf.extend_from_slice(line.as_bytes());
                    conn.wbuf.push(b'\n');
                }
                for line in tail {
                    conn.wbuf.extend_from_slice(line.as_bytes());
                    conn.wbuf.push(b'\n');
                }
                let ok: Response = Ok(QueryOutput::message("UNSUBSCRIBE"));
                conn.wbuf.extend_from_slice(encode_response(&ok).as_bytes());
            }
        }
        Ok(_) => conn.push_err(ServerError::Protocol(
            "a subscription is active on this connection; UNSUBSCRIBE first".into(),
        )),
        Err(msg) => conn.push_err(ServerError::Protocol(msg)),
    }
}

/// One multiplexing pass over a single connection: consume a completed
/// statement, retry a parked one, dispatch framed lines, relay feed
/// outboxes, flush, advance the close handshake. Everything nonblocking.
fn service<B: WireBackend>(
    conn: &mut Conn<B::Session>,
    backend: &B,
    budget: &mut usize,
    waker: &LoopWaker,
) {
    conn.poll_completion();
    if conn.inflight.is_none() && (*budget > 0 || conn.txn_open) {
        if let Some(sql) = conn.pending.take() {
            dispatch_query(conn, sql, budget, waker);
        }
    }
    loop {
        if conn.dead {
            break;
        }
        match conn.mode {
            Mode::Command => {
                if conn.inflight.is_some()
                    || conn.pending.is_some()
                    || conn.wbuf.len() >= WBUF_SOFT_CAP
                {
                    break;
                }
                match take_line(&mut conn.rbuf) {
                    Some(line) => dispatch_command(conn, backend, line, budget, waker),
                    None => break,
                }
            }
            Mode::Subscribe { .. } => match take_line(&mut conn.rbuf) {
                Some(line) => dispatch_subscribed(conn, line),
                None => break,
            },
            Mode::Replicate { .. } => {
                while let Some(line) = take_line(&mut conn.rbuf) {
                    if let (Ok(text), Mode::Replicate { hub, id, .. }) =
                        (std::str::from_utf8(&line), &conn.mode)
                    {
                        if let Ok((segment, offset)) = wire::parse_ack(text.trim_end()) {
                            hub.ack(*id, Lsn { segment, offset });
                        }
                    }
                }
                break;
            }
            Mode::Closing => {
                conn.rbuf.clear();
                break;
            }
        }
    }
    // A frame that can never complete (no newline within the line limit)
    // is a protocol error, not an invitation to buffer forever.
    if !matches!(conn.mode, Mode::Closing)
        && !conn.rbuf.contains(&b'\n')
        && conn.rbuf.len() > wire::MAX_LINE_BYTES
    {
        conn.push_err(ServerError::Protocol(format!(
            "line exceeds {} bytes",
            wire::MAX_LINE_BYTES
        )));
        conn.release();
    }
    // Feed relay: bounded outbox → write buffer, only while the buffer is
    // small (a stalled socket must fill the outbox so the pump evicts it).
    match &conn.mode {
        Mode::Replicate { rx, .. } | Mode::Subscribe { rx, .. } => {
            while conn.wbuf.len() < FEED_PENDING_CAP {
                match rx.try_recv() {
                    Ok(line) => {
                        conn.wbuf.extend_from_slice(line.as_bytes());
                        conn.wbuf.push(b'\n');
                    }
                    Err(TryRecvError::Empty) => break,
                    // Evicted by the pump (or the hub is gone): hang up.
                    Err(TryRecvError::Disconnected) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        _ => {}
    }
    conn.flush();
    conn.advance_closing();
}

/// Size the kernel accept queue to the configured fleet.
/// [`TcpListener::bind`] hard-codes a backlog of 128, which a burst of
/// simultaneous connects from a four-digit fleet overflows — and Linux
/// *silently drops* the overflow (`tcp_abort_on_overflow=0`): the client
/// completes its handshake and then hangs on a connection the server
/// will never see. Calling `listen(2)` again on a listening socket
/// updates the backlog in place (the kernel clamps it to
/// `net.core.somaxconn`); best-effort — a failure leaves the default.
fn widen_backlog(listener: &TcpListener, config: &NetConfig) {
    extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    let backlog = config.max_connections.clamp(128, 4096) as i32;
    unsafe {
        let _ = listen(listener.as_raw_fd(), backlog);
    }
}

/// Wakes the `net-loop` out of `poll(2)` the instant a watched channel
/// becomes ready: a nonblocking socketpair whose read end sits in every
/// poll set, and whose write end is shared (via the channel shim's
/// [`WakeHook`]) with every completion channel, feed outbox and
/// checkpoint the loop waits on. Without it, a completion landing after
/// the post-submit spin sleeps out the rest of the poll timeout — up to
/// a millisecond of dead time per statement, which closed-loop clients
/// pay on every round trip. A blocked reader thread got this wake-up
/// for free from the channel's condvar; the poll loop has to buy it
/// with a file descriptor.
struct LoopWaker {
    /// Read end, registered (`POLLIN`) in every poll set.
    rx: Option<UnixStream>,
    /// The armed hook: writes one byte to the other end. `None` when the
    /// socketpair could not be created — the loop then degrades to its
    /// timeout-based wake-ups.
    hook: Option<WakeHook>,
}

impl LoopWaker {
    fn new() -> Self {
        match UnixStream::pair() {
            Ok((tx, rx)) => {
                let _ = tx.set_nonblocking(true);
                let _ = rx.set_nonblocking(true);
                let hook: WakeHook = Arc::new(move || {
                    // A full pipe means wake-ups are already queued;
                    // dropping this byte loses nothing.
                    let _ = (&tx).write(&[1u8]);
                });
                Self { rx: Some(rx), hook: Some(hook) }
            }
            Err(_) => Self { rx: None, hook: None },
        }
    }

    /// Arm the wake hook on a channel the loop is about to wait on.
    fn watch<T>(&self, rx: &Receiver<T>) {
        if let Some(hook) = &self.hook {
            rx.set_wake_hook(Arc::clone(hook));
        }
    }

    /// Swallow queued wake bytes so the next `poll` can sleep.
    fn drain(&self) {
        if let Some(rx) = &self.rx {
            let mut buf = [0u8; 64];
            while matches!((&*rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

/// Accept every pending connection (the listener is nonblocking).
fn accept_ready<B: WireBackend>(
    listener: &TcpListener,
    backend: &B,
    shared: &NetShared,
    conns: &mut Vec<Conn<B::Session>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let served = conns.iter().filter(|c| c.session.is_some()).count();
                if served >= shared.config.max_connections {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    conns.push(Conn::refused(stream));
                } else {
                    conns.push(Conn::new(stream, backend.open_session()));
                }
            }
            // WouldBlock (drained) or a transient accept error: move on.
            Err(_) => return,
        }
    }
}

/// The event loop: ONE thread that accepts, reads, decodes, admits,
/// relays and writes for every connection, multiplexed by `poll(2)`
/// readiness. Statements run elsewhere (stage workers / pool workers);
/// this thread never blocks on any of them.
fn net_loop<B: WireBackend>(listener: TcpListener, backend: B, shared: Arc<NetShared>) {
    let mut conns: Vec<Conn<B::Session>> = Vec::new();
    let waker = LoopWaker::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Best-effort goodbye to request/response clients, then drop
            // everything (sessions abort open transactions, feeds
            // unregister).
            let bye = encode_response(&Err(ServerError::ShuttingDown));
            for conn in conns.iter_mut() {
                if conn.session.is_some() && !conn.write_closed {
                    let _ = conn.stream.write_all(bye.as_bytes());
                }
                conn.release();
            }
            shared.active.store(0, Ordering::SeqCst);
            return;
        }
        accept_ready(&listener, &backend, &shared, &mut conns);
        // The pass's slot-admission budget: how many more connections may
        // start doing work before the loop-wide multiprogramming cap is
        // hit. A slot is held by an in-flight statement or an open
        // transaction; counted at pass start, so a slot freed mid-pass is
        // reusable on the next pass, and parked statements retry then too.
        let busy = conns.iter().filter(|c| c.inflight.is_some() || c.txn_open).count();
        let mut budget = shared.config.max_inflight.saturating_sub(busy);
        for conn in conns.iter_mut() {
            service(conn, &backend, &mut budget, &waker);
        }
        // A feed that is fully caught up drives the hub's catch-up itself
        // instead of waiting for the owner's idle tick.
        let mut pump_repl = false;
        let mut pump_sub = false;
        for conn in &conns {
            match &conn.mode {
                Mode::Replicate { rx, .. } if conn.wbuf.is_empty() && rx.is_empty() => {
                    pump_repl = true;
                }
                Mode::Subscribe { rx, .. } if conn.wbuf.is_empty() && rx.is_empty() => {
                    pump_sub = true;
                }
                _ => {}
            }
        }
        if pump_repl {
            if let Some(hub) = backend.replication() {
                hub.pump();
            }
        }
        if pump_sub {
            if let Some(hub) = backend.reactivity() {
                hub.pump();
            }
        }
        conns.retain_mut(|c| {
            if c.dead {
                c.release();
                false
            } else {
                true
            }
        });
        shared.active.store(conns.iter().filter(|c| c.session.is_some()).count(), Ordering::SeqCst);
        // Completion latency: while statements are in flight, hand the CPU
        // to the workers and re-check before sleeping — a short reply
        // usually lands within the spin, keeping per-statement latency
        // close to a blocking reader's.
        let any_inflight = conns.iter().any(|c| c.inflight.is_some());
        if any_inflight {
            let mut landed = false;
            for _ in 0..INFLIGHT_SPIN {
                if conns.iter().any(|c| c.inflight.as_ref().is_some_and(|rx| !rx.is_empty())) {
                    landed = true;
                    break;
                }
                std::thread::yield_now();
            }
            if landed {
                continue;
            }
        }
        let any_pending = conns.iter().any(|c| c.pending.is_some());
        let timeout_ms = if any_inflight {
            1
        } else if any_pending {
            2
        } else {
            shared.config.poll_interval.as_millis().clamp(1, 1000) as i32
        };
        let mut fds = Vec::with_capacity(conns.len() + 1);
        fds.push(PollFd::new(listener.as_raw_fd(), Interest::READ));
        let mut map = Vec::with_capacity(conns.len());
        for (i, conn) in conns.iter().enumerate() {
            let mut interest = Interest::NONE;
            if conn.wants_read() {
                interest = interest.and(Interest::READ);
            }
            if !conn.wbuf.is_empty() {
                interest = interest.and(Interest::WRITE);
            }
            if interest != Interest::NONE {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), interest));
                map.push(i);
            }
        }
        // The waker's read end goes last, past the `map` range: a wake
        // byte (completion, feed line, checkpoint, disconnect) ends the
        // sleep immediately; the next pass consumes whatever landed.
        let wake_slot = waker.rx.as_ref().map(|w| {
            fds.push(PollFd::new(w.as_raw_fd(), Interest::READ));
            fds.len() - 1
        });
        match polling::poll(&mut fds, timeout_ms) {
            Ok(0) => {}
            Ok(_) => {
                if let Some(slot) = wake_slot {
                    if fds[slot].ready() {
                        waker.drain();
                    }
                }
                for (k, idx) in map.iter().enumerate() {
                    let pf = &fds[k + 1];
                    if !pf.ready() {
                        continue;
                    }
                    let conn = &mut conns[*idx];
                    if pf.writable() {
                        conn.flush();
                    }
                    if pf.readable() {
                        conn.read_some();
                    }
                }
            }
            // poll(2) only fails for structural reasons (EINVAL); back off
            // rather than spin.
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_ok_with_rows() {
        let out = QueryOutput {
            rows: vec![
                Tuple::new(vec![Value::Int(1), Value::Str("a\tb".into())]),
                Tuple::new(vec![Value::Null, Value::Str("plain".into())]),
            ],
            schema: Some(Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Str),
            ])),
            message: "SELECT 2".into(),
        };
        let text = encode_response(&Ok(out));
        assert_eq!(text, "META 2 k:INT v:VARCHAR\nROW 1\ta\\tb\nROW \\N\tplain\nOK SELECT 2\n");
    }

    #[test]
    fn encode_message_only() {
        assert_eq!(encode_response(&Ok(QueryOutput::message("BEGIN"))), "OK BEGIN\n");
    }

    #[test]
    fn encode_errors_carry_stable_codes() {
        let cases: Vec<(Response, &str)> = vec![
            (Err(ServerError::Sql("nope".into())), "ERR SQL sql error: nope\n"),
            (Err(ServerError::Overloaded), "ERR OVERLOADED server overloaded\n"),
            (
                Err(ServerError::TxnAborted),
                "ERR TXN_ABORTED current transaction is aborted; \
                 issue ROLLBACK before new statements\n",
            ),
        ];
        for (resp, want) in cases {
            assert_eq!(encode_response(&resp), want);
        }
    }

    #[test]
    fn multiline_error_messages_stay_one_line() {
        let resp: Response = Err(ServerError::Execution("two\nlines".into()));
        let text = encode_response(&resp);
        assert_eq!(text.matches('\n').count(), 1);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn take_line_frames_incrementally() {
        let mut buf = b"PING\npartial".to_vec();
        assert_eq!(take_line(&mut buf).as_deref(), Some(&b"PING"[..]));
        assert_eq!(take_line(&mut buf), None);
        buf.extend_from_slice(b" line\n");
        assert_eq!(take_line(&mut buf).as_deref(), Some(&b"partial line"[..]));
        assert!(buf.is_empty());
    }
}
