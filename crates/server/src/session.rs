//! Session-scoped transaction state shared by both servers.
//!
//! A *session* is one client's sequential statement stream. Sessions are
//! what `BEGIN` attaches a transaction to: every later statement from the
//! same session runs under that xid until `COMMIT`/`ROLLBACK`. Statements
//! submitted without a session (the plain `execute_sql` path) run in
//! autocommit mode — each DML statement is its own implicit transaction.
//!
//! Dropping a session handle with a transaction still open **aborts** it
//! (abort-on-drop): the undo log restores the heap and the lock manager
//! releases everything the transaction held, so a disconnected client can
//! never wedge the server.

use crate::types::{QueryOutput, ServerError};
use parking_lot::Mutex;
use staged_engine::context::ExecContext;
use staged_engine::txn::TxnManager;
use staged_storage::wal::Wal;
use staged_storage::SnapshotGuard;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A session's transaction binding. `Aborted` is the Postgres-style
/// failed-transaction state: the transaction was already rolled back
/// server-side (statement failure or lock timeout), and every further
/// statement fails until the client issues `COMMIT`/`ROLLBACK` — without
/// this, a client script that keeps sending the rest of its transaction
/// would silently run those statements as autocommit singletons.
/// `ReadOnly` is a `BEGIN READ ONLY` transaction: no xid, no locks, no
/// undo — just a pinned snapshot timestamp every statement reads at. The
/// held [`SnapshotGuard`] keeps the vacuum horizon at or below that
/// timestamp for as long as the transaction stays open.
#[derive(Debug)]
enum TxnBinding {
    Open(u64),
    ReadOnly(SnapshotGuard),
    Aborted,
}

/// How a new statement from a session must run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementCtx {
    /// No open transaction: the statement is its own implicit transaction.
    Autocommit,
    /// An open read-write transaction under this xid.
    Write(u64),
    /// An open `READ ONLY` transaction pinned at this commit timestamp.
    /// Only reads may run; DML and DDL must be refused.
    ReadOnly(u64),
}

/// Session/transaction bookkeeping: the [`TxnManager`] plus the
/// session → transaction-binding map. One instance per server.
#[derive(Default)]
pub struct TxnRuntime {
    mgr: TxnManager,
    active: Mutex<HashMap<u64, TxnBinding>>,
    next_session: AtomicU64,
}

impl TxnRuntime {
    /// A fresh runtime.
    pub fn new() -> Self {
        Self {
            mgr: TxnManager::new(),
            active: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }

    /// A runtime whose transactions commit against `catalog`'s shared
    /// timestamp oracle. Every server over a catalog must use this form:
    /// snapshot visibility only works when all writers stamp versions
    /// from the same clock readers pin against.
    pub fn for_catalog(catalog: &staged_storage::Catalog) -> Self {
        Self {
            mgr: TxnManager::with_oracle(std::sync::Arc::clone(catalog.oracle())),
            active: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }

    /// The transaction manager (xids, undo, the lock table).
    pub fn mgr(&self) -> &TxnManager {
        &self.mgr
    }

    /// Allocate a session id.
    pub fn open_session(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Close a session, aborting its in-flight transaction if one exists
    /// (abort-on-drop). Returns `true` when a transaction was rolled back.
    pub fn close_session(&self, session: u64, ctx: &ExecContext, wal: &Wal) -> bool {
        let binding = self.active.lock().remove(&session);
        match binding {
            Some(TxnBinding::Open(xid)) => {
                let _ = self.mgr.rollback(xid, ctx, wal);
                true
            }
            // Dropping the binding releases the snapshot pin; a read-only
            // transaction has nothing to undo.
            Some(TxnBinding::ReadOnly(_)) | Some(TxnBinding::Aborted) | None => false,
        }
    }

    /// The session's open transaction, if any (aborted-state sessions
    /// report `None`).
    pub fn active_xid(&self, session: Option<u64>) -> Option<u64> {
        match self.active.lock().get(&session?) {
            Some(TxnBinding::Open(xid)) => Some(*xid),
            _ => None,
        }
    }

    /// How a new statement from `session` must run, or `Err` in the
    /// failed-transaction state (the statement must not run).
    pub fn statement_ctx(&self, session: Option<u64>) -> Result<StatementCtx, ServerError> {
        let Some(sid) = session else { return Ok(StatementCtx::Autocommit) };
        match self.active.lock().get(&sid) {
            Some(TxnBinding::Open(xid)) => Ok(StatementCtx::Write(*xid)),
            Some(TxnBinding::ReadOnly(pin)) => Ok(StatementCtx::ReadOnly(pin.ts())),
            Some(TxnBinding::Aborted) => Err(ServerError::TxnAborted),
            None => Ok(StatementCtx::Autocommit),
        }
    }

    /// `BEGIN` / `BEGIN READ ONLY`: open a transaction on the session.
    ///
    /// A read-write transaction allocates an xid (locks, undo, WAL); a
    /// read-only one allocates nothing — it pins the commit-timestamp
    /// oracle at the current timestamp and every statement until
    /// `COMMIT`/`ROLLBACK` reads that snapshot, lock-free.
    pub fn begin(
        &self,
        session: Option<u64>,
        wal: &Wal,
        read_only: bool,
    ) -> Result<QueryOutput, ServerError> {
        let Some(sid) = session else {
            return Err(ServerError::Sql("BEGIN requires a client session".into()));
        };
        let mut active = self.active.lock();
        if active.contains_key(&sid) {
            return Err(ServerError::Sql("already in a transaction".into()));
        }
        if read_only {
            active.insert(sid, TxnBinding::ReadOnly(self.mgr.oracle().pin()));
            return Ok(QueryOutput::message("BEGIN"));
        }
        let xid = self.mgr.begin(wal).map_err(|e| ServerError::Execution(e.to_string()))?;
        active.insert(sid, TxnBinding::Open(xid));
        Ok(QueryOutput::message("BEGIN"))
    }

    /// `COMMIT`: make the session's transaction durable and release its
    /// locks. A transaction already aborted server-side commits as a
    /// rollback (the Postgres convention), so clients always have a way
    /// out of the failed state.
    pub fn commit(
        &self,
        session: Option<u64>,
        ctx: &ExecContext,
        wal: &Wal,
    ) -> Result<QueryOutput, ServerError> {
        match self.take_active(session) {
            Some(TxnBinding::Open(xid)) => {
                self.mgr
                    .commit(xid, ctx, wal)
                    .map_err(|e| ServerError::Execution(e.to_string()))?;
                Ok(QueryOutput::message("COMMIT"))
            }
            // Nothing to make durable: dropping the binding unpins the
            // snapshot and the vacuum horizon may advance past it.
            Some(TxnBinding::ReadOnly(_)) => Ok(QueryOutput::message("COMMIT")),
            Some(TxnBinding::Aborted) => Ok(QueryOutput::message("ROLLBACK")),
            None => Err(ServerError::Sql("COMMIT outside a transaction".into())),
        }
    }

    /// `ROLLBACK`: undo the session's transaction (a no-op for a
    /// transaction already aborted server-side).
    pub fn rollback(
        &self,
        session: Option<u64>,
        ctx: &ExecContext,
        wal: &Wal,
    ) -> Result<QueryOutput, ServerError> {
        match self.take_active(session) {
            Some(TxnBinding::Open(xid)) => {
                self.mgr
                    .rollback(xid, ctx, wal)
                    .map_err(|e| ServerError::Execution(e.to_string()))?;
                Ok(QueryOutput::message("ROLLBACK"))
            }
            Some(TxnBinding::ReadOnly(_)) | Some(TxnBinding::Aborted) => {
                Ok(QueryOutput::message("ROLLBACK"))
            }
            None => Err(ServerError::Sql("ROLLBACK outside a transaction".into())),
        }
    }

    /// Abort `xid` after a failed statement or lock timeout. The
    /// transaction rolls back immediately; an explicit (session-bound)
    /// transaction leaves the session in the failed state until the client
    /// acknowledges with `COMMIT`/`ROLLBACK`. Safe for implicit
    /// transactions (`session` = None or unbound).
    pub fn fail_txn(&self, session: Option<u64>, xid: u64, ctx: &ExecContext, wal: &Wal) {
        if let Some(sid) = session {
            let mut active = self.active.lock();
            if matches!(active.get(&sid), Some(TxnBinding::Open(x)) if *x == xid) {
                active.insert(sid, TxnBinding::Aborted);
            }
        }
        let _ = self.mgr.rollback(xid, ctx, wal);
    }

    fn take_active(&self, session: Option<u64>) -> Option<TxnBinding> {
        self.active.lock().remove(&session?)
    }
}
