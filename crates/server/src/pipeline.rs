//! The query pipeline, factored into the stage bodies of Figure 3 so the
//! staged server and the threaded baseline run byte-identical logic.

use crate::session::{StatementCtx, TxnRuntime};
use crate::types::{QueryOutput, ServerError};
use staged_cachesim::tracker::RefTracker;
use staged_engine::context::ExecContext;
use staged_engine::dml::{self, DmlLog};
use staged_engine::staged::StagedEngine;
use staged_engine::txn::{LockKey, TxnManager};
use staged_engine::volcano;
use staged_planner::{plan_select, plan_table_filter, PhysicalPlan, PlannerConfig};
use staged_sql::ast::{Expr, Statement};
use staged_sql::binder::{BindContext, Binder, BoundSelect};
use staged_sql::parser::parse_statement;
use staged_sql::rewrite::fold;
use staged_storage::catalog::TableInfo;
use staged_storage::wal::Wal;
use staged_storage::{Catalog, DataType, ReadView, Schema, SnapshotGuard, Tuple, Value};
use std::sync::Arc;

/// Output of the parse stage: either a bound SELECT still needing the
/// optimizer, or a fully-determined action that bypasses it (§4.1).
pub enum Parsed {
    /// Needs the optimize stage.
    NeedsPlan(Box<BoundSelect>),
    /// Ready for the execute stage.
    Action(Box<PlannedAction>),
}

/// An executable statement.
pub enum PlannedAction {
    /// Run a SELECT plan.
    Select {
        /// The physical plan.
        plan: PhysicalPlan,
        /// Result schema.
        schema: Schema,
    },
    /// Return a plan as text.
    Explain {
        /// Rendered plan.
        text: String,
    },
    /// Insert pre-evaluated rows.
    Insert {
        /// Target table.
        table: Arc<TableInfo>,
        /// Rows to insert.
        rows: Vec<Tuple>,
    },
    /// Update rows in place.
    Update {
        /// Target table.
        table: Arc<TableInfo>,
        /// `(column index, bound expression)` assignments.
        sets: Vec<(usize, Expr)>,
        /// Bound row filter.
        predicate: Option<Expr>,
    },
    /// Delete rows.
    Delete {
        /// Target table.
        table: Arc<TableInfo>,
        /// Bound row filter.
        predicate: Option<Expr>,
    },
    /// `BEGIN` / `COMMIT` / `ROLLBACK`, executed against the server's
    /// [`TxnRuntime`] (never reaches the execute engine proper).
    TxnControl(Statement),
    /// DDL, executed directly.
    Ddl(Statement),
}

impl PlannedAction {
    /// True for actions that write table data — the ones the lock-manager
    /// stage must grant partition locks for before execution.
    pub fn is_dml(&self) -> bool {
        matches!(
            self,
            PlannedAction::Insert { .. }
                | PlannedAction::Update { .. }
                | PlannedAction::Delete { .. }
        )
    }
}

/// Parse + bind one statement (the parse stage of Figure 3).
pub fn parse_stage(
    sql: &str,
    catalog: &Catalog,
    tracker: Option<&RefTracker>,
) -> Result<Parsed, ServerError> {
    let stmt = parse_statement(sql).map_err(|e| ServerError::Sql(e.to_string()))?;
    bind_statement(stmt, catalog, tracker)
}

/// Bind an already-parsed statement.
pub fn bind_statement(
    stmt: Statement,
    catalog: &Catalog,
    tracker: Option<&RefTracker>,
) -> Result<Parsed, ServerError> {
    let mut ctx = BindContext::new(catalog);
    if let Some(t) = tracker {
        ctx = ctx.with_tracker(t);
    }
    let binder = Binder::new(ctx);
    let sql_err = |e: staged_sql::SqlError| ServerError::Sql(e.to_string());
    match stmt {
        Statement::Select(sel) => {
            let bound = binder.bind_select(sel).map_err(sql_err)?;
            Ok(Parsed::NeedsPlan(Box::new(bound)))
        }
        Statement::Explain(inner) => match bind_statement(*inner, catalog, tracker)? {
            Parsed::NeedsPlan(bound) => Ok(Parsed::NeedsPlan(
                Box::new(BoundSelect {
                    stmt: bound.stmt,
                    tables: bound.tables,
                    scope: bound.scope,
                    output: bound.output,
                    projections: bound.projections,
                })
                .explained(),
            )),
            Parsed::Action(_) => Ok(Parsed::Action(Box::new(PlannedAction::Explain {
                text: "non-SELECT statements execute directly".into(),
            }))),
        },
        Statement::Insert { table, columns, rows } => {
            let info = catalog.table(&table).map_err(|e| ServerError::Sql(e.to_string()))?;
            let mut out_rows = Vec::with_capacity(rows.len());
            for row in rows {
                let mut vals = vec![Value::Null; info.schema.len()];
                let targets: Vec<usize> = match &columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| {
                            info.schema
                                .index_of(c)
                                .ok_or_else(|| ServerError::Sql(format!("unknown column {c}")))
                        })
                        .collect::<Result<_, _>>()?,
                    None => (0..info.schema.len()).collect(),
                };
                if targets.len() != row.len() {
                    return Err(ServerError::Sql(format!(
                        "INSERT expects {} values, got {}",
                        targets.len(),
                        row.len()
                    )));
                }
                for (slot, expr) in targets.into_iter().zip(row) {
                    let v = match fold(expr) {
                        Expr::Literal(v) => v,
                        other => {
                            return Err(ServerError::Sql(format!(
                                "INSERT values must be constants, got {other}"
                            )))
                        }
                    };
                    // Coerce ints into float columns at the boundary.
                    vals[slot] = match (info.schema.column(slot).ty, v) {
                        (DataType::Float, Value::Int(i)) => Value::Float(i as f64),
                        (_, v) => v,
                    };
                }
                out_rows.push(Tuple::new(vals));
            }
            Ok(Parsed::Action(Box::new(PlannedAction::Insert { table: info, rows: out_rows })))
        }
        Statement::Update { table, sets, filter } => {
            let info = catalog.table(&table).map_err(|e| ServerError::Sql(e.to_string()))?;
            let mut bound_sets = Vec::with_capacity(sets.len());
            for (col, mut expr) in sets {
                let idx = info
                    .schema
                    .index_of(&col)
                    .ok_or_else(|| ServerError::Sql(format!("unknown column {col}")))?;
                binder.bind_table_predicate(&mut expr, &info).map_err(sql_err)?;
                bound_sets.push((idx, expr));
            }
            let predicate = bind_filter(filter, &binder, &info)?;
            Ok(Parsed::Action(Box::new(PlannedAction::Update {
                table: info,
                sets: bound_sets,
                predicate,
            })))
        }
        Statement::Delete { table, filter } => {
            let info = catalog.table(&table).map_err(|e| ServerError::Sql(e.to_string()))?;
            let predicate = bind_filter(filter, &binder, &info)?;
            Ok(Parsed::Action(Box::new(PlannedAction::Delete { table: info, predicate })))
        }
        txn if txn.is_txn_control() => Ok(Parsed::Action(Box::new(PlannedAction::TxnControl(txn)))),
        ddl => Ok(Parsed::Action(Box::new(PlannedAction::Ddl(ddl)))),
    }
}

/// The lock-manager stage's policy: which partition locks a DML action
/// needs, at the finest granularity that is provably safe.
///
/// - INSERT locks exactly the partitions its rows hash to.
/// - DELETE locks the single partition the planner prunes the predicate to,
///   or every partition of the table when the predicate doesn't pin the
///   hash key.
/// - UPDATE is like DELETE, except that an assignment to the partition-key
///   column can move rows anywhere, so it locks the whole table.
///
/// Non-DML actions need no locks (reads are not locked; see DESIGN.md §9).
/// Both engines acquire exactly this key set — the staged server in its
/// lock stage, the Volcano baseline sequentially — so the two remain
/// diffable under concurrency.
pub fn dml_lock_keys(
    action: &PlannedAction,
    catalog: &Catalog,
    planner: &PlannerConfig,
) -> Vec<LockKey> {
    let all = |table: &Arc<TableInfo>| -> Vec<LockKey> {
        (0..table.partitions()).map(|p| LockKey::new(table.id.0, p as u32)).collect()
    };
    let pruned_to = |table: &Arc<TableInfo>, predicate: &Option<Expr>| -> Vec<LockKey> {
        match plan_table_filter(table, predicate.clone(), catalog, planner) {
            PhysicalPlan::PartitionScan { partition, .. } => {
                vec![LockKey::new(table.id.0, partition as u32)]
            }
            PhysicalPlan::IndexScan { index, lo, hi, .. } => {
                match table.pruned_partition(index.column, lo, hi) {
                    Some(p) => vec![LockKey::new(table.id.0, p as u32)],
                    None => all(table),
                }
            }
            _ => all(table),
        }
    };
    let mut keys = match action {
        PlannedAction::Insert { table, rows } => rows
            .iter()
            .map(|r| LockKey::new(table.id.0, table.heap.partition_of(r) as u32))
            .collect(),
        PlannedAction::Delete { table, predicate } => pruned_to(table, predicate),
        PlannedAction::Update { table, sets, predicate } => {
            if sets.iter().any(|(col, _)| *col == table.partition_key()) {
                all(table)
            } else {
                pruned_to(table, predicate)
            }
        }
        _ => Vec::new(),
    };
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Execute `BEGIN`/`COMMIT`/`ROLLBACK` against the server's transaction
/// runtime. Shared verbatim by both servers.
pub fn execute_txn_control(
    stmt: &Statement,
    session: Option<u64>,
    txn: &TxnRuntime,
    ctx: &ExecContext,
    wal: &Wal,
) -> Result<QueryOutput, ServerError> {
    match stmt {
        Statement::Begin { read_only } => txn.begin(session, wal, *read_only),
        Statement::Commit => txn.commit(session, ctx, wal),
        Statement::Rollback => txn.rollback(session, ctx, wal),
        other => Err(ServerError::Sql(format!("not transaction control: {other}"))),
    }
}

/// True when `action` writes — and so must be refused inside a
/// `BEGIN READ ONLY` transaction.
pub fn writes(action: &PlannedAction) -> bool {
    action.is_dml() || matches!(action, PlannedAction::Ddl(_))
}

/// Give a SELECT action an MVCC read view, making its scans snapshot
/// reads (lock-free, visibility-filtered): the core of the read-only fast
/// path. The view's timestamp comes from the session's transaction state:
///
/// - `ReadOnly` — the timestamp pinned at `BEGIN READ ONLY`, so every
///   statement in the transaction reads the same snapshot;
/// - `Write` — a fresh pin at the current timestamp, with the reader's
///   xid in the view so the transaction sees its own uncommitted writes;
/// - `Autocommit` — a fresh pin at the current timestamp.
///
/// Returns the pin guard for fresh pins; the caller must hold it across
/// execution so the vacuum horizon cannot pass the view (a `ReadOnly`
/// binding already holds its own pin, so none is returned). Non-SELECT
/// actions are untouched.
pub fn snapshot_select(
    action: &mut PlannedAction,
    txn: &TxnRuntime,
    stmt: &StatementCtx,
) -> Option<SnapshotGuard> {
    let PlannedAction::Select { plan, .. } = action else { return None };
    match stmt {
        StatementCtx::ReadOnly(ts) => {
            plan.attach_snapshot(ReadView { ts: *ts, xid: 0 });
            None
        }
        StatementCtx::Write(xid) => {
            let pin = txn.mgr().oracle().pin();
            plan.attach_snapshot(ReadView { ts: pin.ts(), xid: *xid });
            Some(pin)
        }
        StatementCtx::Autocommit => {
            let pin = txn.mgr().oracle().pin();
            plan.attach_snapshot(ReadView { ts: pin.ts(), xid: 0 });
            Some(pin)
        }
    }
}

fn bind_filter(
    filter: Option<Expr>,
    binder: &Binder<'_>,
    info: &Arc<TableInfo>,
) -> Result<Option<Expr>, ServerError> {
    match filter {
        Some(mut f) => {
            binder
                .bind_table_predicate(&mut f, info)
                .map_err(|e| ServerError::Sql(e.to_string()))?;
            Ok(Some(fold(f)))
        }
        None => Ok(None),
    }
}

/// Marker wrapper: an EXPLAIN'd bound select. We piggyback on `BoundSelect`
/// by setting a limit-0 sentinel; instead, the server tracks EXPLAIN out of
/// band — see [`BoundSelectExt`].
pub trait BoundSelectExt {
    /// Tag this bound SELECT as explain-only.
    fn explained(self) -> Box<BoundSelect>;
    /// Was this tagged?
    fn is_explain(&self) -> bool;
}

impl BoundSelectExt for Box<BoundSelect> {
    fn explained(mut self) -> Box<BoundSelect> {
        // A DISTINCT+LIMIT 0 combination cannot be produced by parsing
        // `EXPLAIN`-less SQL through this path, but rather than a sentinel
        // we use an explicit side flag carried in `stmt.limit`'s unused
        // high bit — too clever. Keep it simple: a dedicated marker field
        // would change the public sql AST, so the server wraps EXPLAIN
        // before this point. This impl only exists to keep the pipeline
        // uniform; it marks via an impossible limit value.
        self.stmt.limit = Some(u64::MAX);
        self
    }

    fn is_explain(&self) -> bool {
        self.stmt.limit == Some(u64::MAX)
    }
}

/// The optimize stage of Figure 3.
pub fn optimize_stage(
    bound: &BoundSelect,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> Result<PlannedAction, ServerError> {
    let is_explain = {
        let boxed: &BoundSelect = bound;
        boxed.stmt.limit == Some(u64::MAX)
    };
    let mut bound_clone = BoundSelect {
        stmt: bound.stmt.clone(),
        tables: bound.tables.clone(),
        scope: bound.scope.clone(),
        output: bound.output.clone(),
        projections: bound.projections.clone(),
    };
    if is_explain {
        bound_clone.stmt.limit = None;
    }
    let plan =
        plan_select(&bound_clone, catalog, config).map_err(|e| ServerError::Sql(e.to_string()))?;
    if is_explain {
        Ok(PlannedAction::Explain { text: plan.to_string() })
    } else {
        Ok(PlannedAction::Select { plan, schema: bound.output.clone() })
    }
}

/// How the execute stage runs SELECT plans.
pub enum Exec<'a> {
    /// Volcano iterators on this thread.
    Volcano,
    /// The staged page-push engine.
    Staged(&'a Arc<StagedEngine>),
}

/// The execute stage of Figure 3: run the action, produce client output.
/// DML records redo into `wal` under `xid` and, when `txn` is given, undo
/// into that transaction's in-memory undo log (rollback support). The
/// caller is responsible for having acquired the action's locks
/// ([`dml_lock_keys`]) beforehand.
pub fn execute_stage(
    action: PlannedAction,
    ctx: &ExecContext,
    wal: &Wal,
    xid: u64,
    exec: Exec<'_>,
    txn: Option<&TxnManager>,
) -> Result<QueryOutput, ServerError> {
    let log = DmlLog { wal, xid, txn };
    let exec_err = ServerError::from;
    match action {
        PlannedAction::Select { plan, schema } => {
            let rows = match exec {
                Exec::Volcano => volcano::run(&plan, ctx).map_err(exec_err)?,
                Exec::Staged(engine) => engine.execute(&plan).collect().map_err(exec_err)?,
            };
            let n = rows.len();
            Ok(QueryOutput { rows, schema: Some(schema), message: format!("SELECT {n}") })
        }
        PlannedAction::Explain { text } => Ok(QueryOutput {
            rows: text.lines().map(|l| Tuple::new(vec![Value::Str(l.to_string())])).collect(),
            schema: Some(Schema::new(vec![staged_storage::Column::new("plan", DataType::Str)])),
            message: "EXPLAIN".into(),
        }),
        PlannedAction::Insert { table, rows } => {
            let n = dml::insert_rows(ctx, &table, rows, Some(&log)).map_err(exec_err)?;
            Ok(QueryOutput::message(format!("INSERT {n}")))
        }
        PlannedAction::Update { table, sets, predicate } => {
            let n =
                dml::update_rows(ctx, &table, &sets, &predicate, Some(&log)).map_err(exec_err)?;
            Ok(QueryOutput::message(format!("UPDATE {n}")))
        }
        PlannedAction::Delete { table, predicate } => {
            let n = dml::delete_rows(ctx, &table, &predicate, Some(&log)).map_err(exec_err)?;
            Ok(QueryOutput::message(format!("DELETE {n}")))
        }
        PlannedAction::TxnControl(stmt) => Err(ServerError::Execution(format!(
            "{stmt} must be dispatched through the transaction runtime"
        ))),
        PlannedAction::Ddl(stmt) => execute_ddl(stmt, ctx),
    }
}

fn execute_ddl(stmt: Statement, ctx: &ExecContext) -> Result<QueryOutput, ServerError> {
    let cat_err = |e: staged_storage::StorageError| ServerError::Execution(e.to_string());
    match stmt {
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(
                columns
                    .into_iter()
                    .map(|c| {
                        let mut col = staged_storage::Column::new(c.name, c.ty);
                        if c.nullable {
                            col = col.nullable();
                        }
                        col
                    })
                    .collect(),
            );
            // Partitioning (hashed on column 0) comes from the server's
            // context, so servers sharing one catalog stay independent.
            ctx.catalog
                .create_table_partitioned(&name, schema, ctx.ddl_partitions, 0)
                .map_err(cat_err)?;
            Ok(QueryOutput::message("CREATE TABLE"))
        }
        Statement::CreateIndex { name, table, column } => {
            ctx.catalog.create_index(&name, &table, &column).map_err(cat_err)?;
            Ok(QueryOutput::message("CREATE INDEX"))
        }
        Statement::DropTable { name } => {
            ctx.catalog.drop_table(&name).map_err(cat_err)?;
            Ok(QueryOutput::message("DROP TABLE"))
        }
        Statement::Analyze { table } => {
            ctx.catalog.analyze_table(&table).map_err(cat_err)?;
            Ok(QueryOutput::message("ANALYZE"))
        }
        other => Err(ServerError::Sql(format!("unsupported statement {other}"))),
    }
}
