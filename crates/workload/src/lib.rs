//! # staged-workload — benchmark data and query generators
//!
//! The paper's experiments use workloads "designed after the Wisconsin
//! benchmark" (§3.1.1). This crate generates Wisconsin-style tables —
//! `unique1` (random unique), `unique2` (sequential unique), small-domain
//! columns `two/four/ten/twenty`, percentage selectors `onepercent` /
//! `tenpercent`, and padded string columns — plus the two query mixes:
//!
//! * **Workload A**: short selection/aggregation queries with selective
//!   predicates (I/O-bound when the buffer pool is cold or undersized);
//! * **Workload B**: longer join queries over memory-resident tables
//!   (CPU-bound; only logging I/O).
//!
//! Everything is seeded and deterministic.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use staged_server::{StagedServer, ThreadedServer};
use staged_storage::{Catalog, Column, DataType, Schema, Tuple, Value};
use std::sync::Arc;

/// Column layout of a Wisconsin-style table.
pub fn wisconsin_schema() -> Schema {
    Schema::new(vec![
        Column::new("unique1", DataType::Int),
        Column::new("unique2", DataType::Int),
        Column::new("two", DataType::Int),
        Column::new("four", DataType::Int),
        Column::new("ten", DataType::Int),
        Column::new("twenty", DataType::Int),
        Column::new("onepercent", DataType::Int),
        Column::new("tenpercent", DataType::Int),
        Column::new("stringu1", DataType::Str),
        Column::new("string4", DataType::Str),
    ])
}

/// Generate the rows of a Wisconsin table with `rows` tuples.
pub fn wisconsin_rows(rows: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    // unique1: a random permutation of 0..rows.
    let mut unique1: Vec<i64> = (0..rows as i64).collect();
    for i in (1..unique1.len()).rev() {
        let j = rng.gen_range(0..=i);
        unique1.swap(i, j);
    }
    let strings = ["AAAA", "HHHH", "OOOO", "VVVV"];
    (0..rows)
        .map(|i| {
            let u1 = unique1[i];
            let one_pct = (rows / 100).max(1) as i64;
            let ten_pct = (rows / 10).max(1) as i64;
            Tuple::new(vec![
                Value::Int(u1),
                Value::Int(i as i64),
                Value::Int(u1 % 2),
                Value::Int(u1 % 4),
                Value::Int(u1 % 10),
                Value::Int(u1 % 20),
                Value::Int(u1 % one_pct),
                Value::Int(u1 % ten_pct),
                Value::Str(format!("{}{:08}", strings[(u1 % 4) as usize], u1)),
                Value::Str(strings[i % 4].to_string()),
            ])
        })
        .collect()
}

/// Create and populate a Wisconsin table directly through the catalog
/// (bypassing SQL, for speed), with an index on `unique1` and fresh stats.
pub fn load_wisconsin_table(
    catalog: &Arc<Catalog>,
    name: &str,
    rows: usize,
    seed: u64,
) -> staged_storage::StorageResult<()> {
    let info = catalog.create_table(name, wisconsin_schema())?;
    for row in wisconsin_rows(rows, seed) {
        info.heap.insert(&row)?;
    }
    catalog.create_index(&format!("{name}_unique1"), name, "unique1")?;
    catalog.analyze_table(name)?;
    Ok(())
}

/// Like [`load_wisconsin_table`] but hash-partitioned `partitions` ways on
/// `unique1` (the partition-parallel experiments sweep this), without an
/// index so scans exercise the partial-scan path.
pub fn load_wisconsin_table_partitioned(
    catalog: &Arc<Catalog>,
    name: &str,
    rows: usize,
    seed: u64,
    partitions: usize,
) -> staged_storage::StorageResult<()> {
    let info = catalog.create_table_partitioned(name, wisconsin_schema(), partitions, 0)?;
    for row in wisconsin_rows(rows, seed) {
        info.heap.insert(&row)?;
    }
    catalog.analyze_table(name)?;
    Ok(())
}

/// One generated query plus its workload class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedQuery {
    /// SQL text.
    pub sql: String,
    /// Short label for reporting.
    pub kind: &'static str,
}

/// Workload A (paper §3.1.1): short selections/aggregations over `table`.
pub struct WorkloadA {
    rng: StdRng,
    table: String,
    rows: usize,
}

impl WorkloadA {
    /// Generator over a table loaded with [`load_wisconsin_table`].
    pub fn new(table: impl Into<String>, rows: usize, seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), table: table.into(), rows }
    }

    /// Next query in the stream.
    pub fn next_query(&mut self) -> GeneratedQuery {
        let t = &self.table;
        let n = self.rows as i64;
        match self.rng.gen_range(0..4u32) {
            0 => {
                // 1% range selection on the indexed key.
                let lo = self.rng.gen_range(0..n - n / 100 - 1);
                let hi = lo + n / 100;
                GeneratedQuery {
                    sql: format!(
                        "SELECT unique1, stringu1 FROM {t} WHERE unique1 BETWEEN {lo} AND {hi}"
                    ),
                    kind: "range-1pct",
                }
            }
            1 => {
                let k = self.rng.gen_range(0..n);
                GeneratedQuery {
                    sql: format!("SELECT * FROM {t} WHERE unique1 = {k}"),
                    kind: "point",
                }
            }
            2 => {
                let g = self.rng.gen_range(0..10);
                GeneratedQuery {
                    sql: format!(
                        "SELECT COUNT(*), SUM(unique2) FROM {t} WHERE ten = {g} AND two = 0"
                    ),
                    kind: "agg-filter",
                }
            }
            _ => {
                let lo = self.rng.gen_range(0..n - n / 50 - 1);
                let hi = lo + n / 50;
                GeneratedQuery {
                    sql: format!(
                        "SELECT MIN(unique2), MAX(unique2) FROM {t} \
                         WHERE unique1 BETWEEN {lo} AND {hi}"
                    ),
                    kind: "minmax-range",
                }
            }
        }
    }
}

/// Workload B (paper §3.1.1): longer joins over memory-resident tables.
pub struct WorkloadB {
    rng: StdRng,
    left: String,
    right: String,
}

impl WorkloadB {
    /// Generator joining two Wisconsin tables.
    pub fn new(left: impl Into<String>, right: impl Into<String>, seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), left: left.into(), right: right.into() }
    }

    /// Next query in the stream.
    pub fn next_query(&mut self) -> GeneratedQuery {
        let (l, r) = (&self.left, &self.right);
        match self.rng.gen_range(0..3u32) {
            0 => GeneratedQuery {
                sql: format!(
                    "SELECT COUNT(*) FROM {l}, {r} WHERE {l}.unique1 = {r}.unique1 \
                     AND {l}.two = 0"
                ),
                kind: "joinAB",
            },
            1 => {
                let g = self.rng.gen_range(0..4);
                GeneratedQuery {
                    sql: format!(
                        "SELECT {l}.ten, COUNT(*), SUM({r}.unique2) FROM {l}, {r} \
                         WHERE {l}.unique1 = {r}.unique1 AND {l}.four = {g} \
                         GROUP BY {l}.ten"
                    ),
                    kind: "join-group",
                }
            }
            _ => GeneratedQuery {
                sql: format!(
                    "SELECT {l}.unique1 FROM {l}, {r} \
                     WHERE {l}.unique1 = {r}.unique2 AND {r}.twenty = 7 \
                     ORDER BY {l}.unique1 LIMIT 50"
                ),
                kind: "join-sort",
            },
        }
    }
}

/// Drive `count` queries through a server, round-robin from a generator
/// closure; returns elapsed seconds (closed loop, `clients` in flight).
pub fn drive_threaded(
    server: &ThreadedServer,
    mut gen: impl FnMut() -> GeneratedQuery,
    count: usize,
    clients: usize,
) -> f64 {
    let start = std::time::Instant::now();
    let mut in_flight = std::collections::VecDeque::new();
    for _ in 0..count {
        while in_flight.len() >= clients.max(1) {
            let rx: crossbeam::channel::Receiver<staged_server::Response> =
                in_flight.pop_front().expect("non-empty");
            let _ = rx.recv();
        }
        in_flight.push_back(server.submit(gen().sql));
    }
    while let Some(rx) = in_flight.pop_front() {
        let _ = rx.recv();
    }
    start.elapsed().as_secs_f64()
}

/// Same closed-loop driver for the staged server.
pub fn drive_staged(
    server: &StagedServer,
    mut gen: impl FnMut() -> GeneratedQuery,
    count: usize,
    clients: usize,
) -> f64 {
    let start = std::time::Instant::now();
    let mut in_flight = std::collections::VecDeque::new();
    for _ in 0..count {
        while in_flight.len() >= clients.max(1) {
            let rx: crossbeam::channel::Receiver<staged_server::Response> =
                in_flight.pop_front().expect("non-empty");
            let _ = rx.recv();
        }
        in_flight.push_back(server.submit(gen().sql));
    }
    while let Some(rx) = in_flight.pop_front() {
        let _ = rx.recv();
    }
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::{BufferPool, MemDisk};

    #[test]
    fn wisconsin_rows_have_unique_keys_and_right_domains() {
        let rows = wisconsin_rows(1000, 7);
        assert_eq!(rows.len(), 1000);
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            let u1 = r.get(0).as_int().unwrap();
            assert!(seen.insert(u1), "unique1 must be unique");
            assert!((0..1000).contains(&u1));
            assert!((0..2).contains(&r.get(2).as_int().unwrap()));
            assert!((0..4).contains(&r.get(3).as_int().unwrap()));
            assert!((0..10).contains(&r.get(4).as_int().unwrap()));
            assert!((0..20).contains(&r.get(5).as_int().unwrap()));
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut w = WorkloadA::new("t", 1000, 5);
            (0..10).map(|_| w.next_query().sql).collect()
        };
        let b: Vec<String> = {
            let mut w = WorkloadA::new("t", 1000, 5);
            (0..10).map(|_| w.next_query().sql).collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut w = WorkloadA::new("t", 1000, 6);
            (0..10).map(|_| w.next_query().sql).collect()
        };
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn load_and_query_wisconsin_through_server() {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 1024)));
        load_wisconsin_table(&cat, "wisc", 2000, 3).unwrap();
        let s = ThreadedServer::new(cat, 2, Default::default());
        let out = s.execute_sql("SELECT COUNT(*) FROM wisc").unwrap();
        assert_eq!(out.rows[0].to_string(), "[2000]");
        let mut wa = WorkloadA::new("wisc", 2000, 11);
        for _ in 0..12 {
            let q = wa.next_query();
            s.execute_sql(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
        }
        s.shutdown();
    }

    #[test]
    fn workload_b_joins_run() {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        load_wisconsin_table(&cat, "ta", 1000, 1).unwrap();
        load_wisconsin_table(&cat, "tb", 1000, 2).unwrap();
        let s = ThreadedServer::new(cat, 2, Default::default());
        let mut wb = WorkloadB::new("ta", "tb", 4);
        for _ in 0..6 {
            let q = wb.next_query();
            s.execute_sql(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
        }
        s.shutdown();
    }
}
