//! The thread-pool experiment of paper §3.1.1 (Figure 2).
//!
//! "We modified the execution engine of PREDATOR and added a queue in front
//! of it. Then we converted the thread-per-client architecture into the
//! following: a pool of threads that picks a client from the queue, works on
//! the client until it exits the execution engine, puts it on an exit queue
//! and picks another client from the input queue."
//!
//! The simulator models one CPU time-shared round-robin with a quantum
//! (PREDATOR's alarm timer fired "roughly every 10 msec"), an array of disks
//! serving I/O FIFO, and a cache-interference model: every thread's query
//! has a working set; once the combined working sets of the pool exceed the
//! cache capacity, a context switch must re-fetch the evicted fraction
//! (charged as `lost_fraction × reload_full` on dispatch). This reproduces
//! the two regimes of Figure 2: an I/O-bound workload that *gains* from
//! threads until I/O is fully overlapped, and a CPU-bound workload that
//! *degrades* once working sets start evicting each other.

use crate::rng::{exp_sample, uniform_sample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// One phase of a query's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// CPU burst of the given length (seconds).
    Cpu(f64),
    /// Blocking disk I/O of the given service time (seconds).
    Io(f64),
}

/// A query, as a sequence of CPU and I/O phases.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl QuerySpec {
    /// Total CPU demand of the query.
    pub fn cpu_demand(&self) -> f64 {
        self.phases.iter().map(|p| if let Phase::Cpu(c) = p { *c } else { 0.0 }).sum()
    }

    /// Total I/O demand of the query.
    pub fn io_demand(&self) -> f64 {
        self.phases.iter().map(|p| if let Phase::Io(d) = p { *d } else { 0.0 }).sum()
    }
}

/// Parameters of the simulated server.
#[derive(Debug, Clone)]
pub struct ThreadPoolConfig {
    /// Worker threads in the pool (the x-axis of Figure 2).
    pub threads: usize,
    /// Round-robin quantum, seconds (paper: ~10 ms).
    pub quantum: f64,
    /// Context-switch cost charged when the CPU changes threads, seconds.
    pub ctx_switch: f64,
    /// Number of disks serving I/O FIFO.
    pub disks: usize,
    /// Cache capacity, bytes (Pentium III L2: 256 KiB; we use 512 KiB to
    /// model L2 + L1 headroom).
    pub cache_capacity: f64,
    /// Per-query working set, bytes.
    pub working_set: f64,
    /// Time to re-fetch a fully evicted working set, seconds.
    pub reload_full: f64,
    /// Virtual time horizon, seconds.
    pub horizon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ThreadPoolConfig {
    /// Baseline configuration shared by both Figure 2 workloads.
    pub fn figure2(threads: usize, seed: u64) -> Self {
        Self {
            threads,
            quantum: 0.010,
            ctx_switch: 0.0001,
            disks: 2,
            cache_capacity: 512.0 * 1024.0,
            working_set: 96.0 * 1024.0,
            reload_full: 0.002,
            horizon: 300.0,
            seed,
        }
    }
}

/// Outcome of one simulation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ThreadPoolResult {
    /// Threads simulated.
    pub threads: usize,
    /// Queries completed within the horizon.
    pub completed: u64,
    /// Queries/second.
    pub throughput: f64,
    /// Fraction of the horizon the CPU did useful work.
    pub cpu_utilization: f64,
    /// Fraction of the horizon the CPU spent on switch+reload overhead.
    pub overhead_fraction: f64,
}

#[derive(Debug)]
enum ThreadState {
    /// Ready to run; current phase is a CPU burst with this much left.
    Ready { burst_left: f64 },
    /// Blocked on I/O until the given time.
    Blocked { until: f64 },
}

struct Worker {
    state: ThreadState,
    /// Remaining phases of the current query (current CPU burst excluded).
    phases: VecDeque<Phase>,
}

/// Simulate the pool; `make_query` is invoked whenever a worker picks a new
/// client from the (infinite) input queue.
pub fn run_threadpool(
    cfg: &ThreadPoolConfig,
    mut make_query: impl FnMut(&mut StdRng) -> QuerySpec,
) -> ThreadPoolResult {
    assert!(cfg.threads >= 1);
    assert!(cfg.disks >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock = 0.0_f64;
    let mut completed = 0u64;
    let mut cpu_busy = 0.0_f64;
    let mut overhead = 0.0_f64;
    let mut disks_free_at = vec![0.0_f64; cfg.disks];

    // Lost-cache fraction charged on every cross-thread dispatch: the pool's
    // combined working sets compete for the cache; anything beyond capacity
    // is (pessimally, per the paper's total-eviction model) gone by the time
    // a thread runs again.
    let combined = cfg.threads as f64 * cfg.working_set;
    let lost_fraction = if combined > cfg.cache_capacity {
        (combined - cfg.cache_capacity) / combined
    } else {
        0.0
    };
    let reload_cost = lost_fraction * cfg.reload_full;

    let mut workers: Vec<Worker> = Vec::with_capacity(cfg.threads);
    let mut ready: VecDeque<usize> = VecDeque::new();
    for i in 0..cfg.threads {
        let mut w =
            Worker { state: ThreadState::Ready { burst_left: 0.0 }, phases: VecDeque::new() };
        start_query(&mut w, &mut make_query, &mut rng);
        dispatch_phase(&mut w, i, 0.0, &mut disks_free_at, &mut ready);
        workers.push(w);
    }

    let mut last_thread: Option<usize> = None;
    while clock < cfg.horizon {
        // Deliver due I/O completions.
        for (i, w) in workers.iter_mut().enumerate() {
            if let ThreadState::Blocked { until } = w.state {
                if until <= clock {
                    advance_after_io(
                        w,
                        i,
                        clock,
                        &mut disks_free_at,
                        &mut ready,
                        &mut completed,
                        &mut make_query,
                        &mut rng,
                    );
                }
            }
        }
        let Some(t) = ready.pop_front() else {
            // CPU idle: jump to the earliest I/O completion.
            let next = workers
                .iter()
                .filter_map(|w| match w.state {
                    ThreadState::Blocked { until } => Some(until),
                    _ => None,
                })
                .fold(f64::INFINITY, f64::min);
            if next.is_infinite() {
                break; // nothing runnable at all
            }
            clock = next.max(clock);
            continue;
        };
        // Dispatch overhead: context switch + working-set reload when the
        // CPU moves to a different thread.
        if last_thread != Some(t) {
            let cost = cfg.ctx_switch + reload_cost;
            clock += cost;
            overhead += cost;
        }
        last_thread = Some(t);
        let burst_left = match workers[t].state {
            ThreadState::Ready { burst_left } => burst_left,
            _ => unreachable!("dispatched thread must be ready"),
        };
        let slice = cfg.quantum.min(burst_left);
        clock += slice;
        cpu_busy += slice;
        let remaining = burst_left - slice;
        if remaining > 1e-12 {
            workers[t].state = ThreadState::Ready { burst_left: remaining };
            ready.push_back(t);
        } else {
            // Burst finished: move to the next phase (I/O, next burst, or a
            // fresh query).
            let w = &mut workers[t];
            match w.phases.pop_front() {
                Some(Phase::Io(d)) => {
                    let done = submit_io(clock, d, &mut disks_free_at);
                    w.state = ThreadState::Blocked { until: done };
                }
                Some(Phase::Cpu(c)) => {
                    w.state = ThreadState::Ready { burst_left: c };
                    ready.push_back(t);
                }
                None => {
                    completed += 1;
                    start_query(w, &mut make_query, &mut rng);
                    dispatch_phase(w, t, clock, &mut disks_free_at, &mut ready);
                }
            }
        }
    }

    let span = clock.max(1e-9);
    ThreadPoolResult {
        threads: cfg.threads,
        completed,
        throughput: completed as f64 / span,
        cpu_utilization: cpu_busy / span,
        overhead_fraction: overhead / span,
    }
}

fn start_query(
    w: &mut Worker,
    make_query: &mut impl FnMut(&mut StdRng) -> QuerySpec,
    rng: &mut StdRng,
) {
    w.phases = make_query(rng).phases.into();
}

/// Put the worker's first phase in motion at time `now`.
fn dispatch_phase(
    w: &mut Worker,
    idx: usize,
    now: f64,
    disks_free_at: &mut [f64],
    ready: &mut VecDeque<usize>,
) {
    match w.phases.pop_front() {
        Some(Phase::Cpu(c)) => {
            w.state = ThreadState::Ready { burst_left: c };
            ready.push_back(idx);
        }
        Some(Phase::Io(d)) => {
            let done = submit_io(now, d, disks_free_at);
            w.state = ThreadState::Blocked { until: done };
        }
        None => {
            // Empty query: complete immediately by giving it a zero burst.
            w.state = ThreadState::Ready { burst_left: 0.0 };
            ready.push_back(idx);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn advance_after_io(
    w: &mut Worker,
    idx: usize,
    now: f64,
    disks_free_at: &mut [f64],
    ready: &mut VecDeque<usize>,
    completed: &mut u64,
    make_query: &mut impl FnMut(&mut StdRng) -> QuerySpec,
    rng: &mut StdRng,
) {
    match w.phases.pop_front() {
        Some(Phase::Cpu(c)) => {
            w.state = ThreadState::Ready { burst_left: c };
            ready.push_back(idx);
        }
        Some(Phase::Io(d)) => {
            let done = submit_io(now, d, disks_free_at);
            w.state = ThreadState::Blocked { until: done };
        }
        None => {
            *completed += 1;
            start_query(w, make_query, rng);
            dispatch_phase(w, idx, now, disks_free_at, ready);
        }
    }
}

/// FIFO multi-disk service: the I/O goes to the disk that frees up first.
fn submit_io(now: f64, service: f64, disks_free_at: &mut [f64]) -> f64 {
    let (best, _) = disks_free_at
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("at least one disk");
    let start = disks_free_at[best].max(now);
    let done = start + service;
    disks_free_at[best] = done;
    done
}

/// Workload A (paper §3.1.1): "short (40–80 ms) selection and aggregation
/// queries that almost always incur disk I/O". Modeled as 6 CPU bursts
/// summing to U(40, 80) ms interleaved with 5 exponential disk reads.
pub fn workload_a_query(rng: &mut StdRng) -> QuerySpec {
    let total_cpu = uniform_sample(rng, 0.040, 0.080);
    let bursts = 6usize;
    let mut phases = Vec::with_capacity(bursts * 2 - 1);
    for i in 0..bursts {
        phases.push(Phase::Cpu(total_cpu / bursts as f64));
        if i + 1 < bursts {
            phases.push(Phase::Io(exp_sample(rng, 0.009)));
        }
    }
    QuerySpec { phases }
}

/// Workload B (paper §3.1.1): "longer join queries (up to 2–3 secs) on
/// tables that fit entirely in main memory and the only I/O needed is for
/// logging purposes". Modeled as one long CPU demand U(2, 3) s plus a final
/// 5 ms log write.
pub fn workload_b_query(rng: &mut StdRng) -> QuerySpec {
    let total_cpu = uniform_sample(rng, 2.0, 3.0);
    QuerySpec { phases: vec![Phase::Cpu(total_cpu), Phase::Io(0.005)] }
}

/// Per-workload knobs for Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Figure2Workload {
    /// I/O-bound short queries.
    A,
    /// CPU-bound long joins.
    B,
}

/// Run one Figure 2 point.
pub fn run_figure2_point(workload: Figure2Workload, threads: usize, seed: u64) -> ThreadPoolResult {
    let mut cfg = ThreadPoolConfig::figure2(threads, seed);
    match workload {
        Figure2Workload::A => {
            // Short queries touch little data; their working sets are small.
            cfg.working_set = 16.0 * 1024.0;
            cfg.reload_full = 0.0004;
            cfg.horizon = 240.0;
            run_threadpool(&cfg, workload_a_query)
        }
        Figure2Workload::B => {
            // In-memory joins have large hot working sets (hash/sort areas).
            cfg.working_set = 96.0 * 1024.0;
            cfg.reload_full = 0.002;
            cfg.horizon = 1200.0;
            run_threadpool(&cfg, workload_b_query)
        }
    }
}

/// Sweep thread-pool sizes for one workload; returns
/// `(threads, % of max attainable throughput)` rows as in Figure 2.
///
/// Throughput is measured as *useful CPU work retired per second* (CPU
/// utilization net of switch/reload overhead), which for a CPU-bottlenecked
/// server is proportional to query throughput but free of the end-of-horizon
/// bias that in-flight multi-second queries (Workload B) would otherwise
/// introduce.
pub fn figure2_sweep(workload: Figure2Workload, sizes: &[usize], seed: u64) -> Vec<(usize, f64)> {
    let raw: Vec<(usize, f64)> =
        sizes.iter().map(|&m| (m, run_figure2_point(workload, m, seed).cpu_utilization)).collect();
    let max = raw.iter().map(|r| r.1).fold(0.0, f64::max).max(1e-12);
    raw.into_iter().map(|(m, x)| (m, 100.0 * x / max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_specs_have_expected_demands() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let a = workload_a_query(&mut rng);
            assert!((0.040..=0.080).contains(&a.cpu_demand()));
            assert!(a.io_demand() > 0.0);
            let b = workload_b_query(&mut rng);
            assert!((2.0..=3.0).contains(&b.cpu_demand()));
            assert!((b.io_demand() - 0.005).abs() < 1e-12);
        }
    }

    #[test]
    fn single_thread_has_no_switch_overhead() {
        let cfg = ThreadPoolConfig { horizon: 50.0, ..ThreadPoolConfig::figure2(1, 3) };
        let r = run_threadpool(&cfg, workload_b_query);
        // Only the single cold-start dispatch is charged.
        assert!(r.overhead_fraction < 1e-5, "overhead {}", r.overhead_fraction);
        assert!(r.completed > 0);
    }

    #[test]
    fn workload_a_gains_from_more_threads() {
        let x1 = run_figure2_point(Figure2Workload::A, 1, 7).throughput;
        let x20 = run_figure2_point(Figure2Workload::A, 20, 7).throughput;
        assert!(
            x20 > x1 * 1.15,
            "I/O overlap should raise throughput: 1 thread {x1}, 20 threads {x20}"
        );
    }

    #[test]
    fn workload_b_degrades_with_many_threads() {
        let x2 = run_figure2_point(Figure2Workload::B, 2, 7).throughput;
        let x100 = run_figure2_point(Figure2Workload::B, 100, 7).throughput;
        assert!(
            x100 < x2 * 0.95,
            "cache interference should cut throughput: 2 threads {x2}, 100 threads {x100}"
        );
    }

    #[test]
    fn workload_b_flat_while_working_sets_fit() {
        // 512 KiB cache / 96 KiB working sets → 5 threads fit: no reloads.
        let x1 = run_figure2_point(Figure2Workload::B, 1, 9).throughput;
        let x5 = run_figure2_point(Figure2Workload::B, 5, 9).throughput;
        let rel = (x5 - x1).abs() / x1;
        assert!(rel < 0.05, "B should be flat through 5 threads: {x1} vs {x5}");
    }

    #[test]
    fn sweep_is_normalized_to_100() {
        let rows = figure2_sweep(Figure2Workload::A, &[1, 5, 20], 5);
        let max = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        assert!((max - 100.0).abs() < 1e-9);
        assert!(rows.iter().all(|r| r.1 > 0.0 && r.1 <= 100.0));
    }

    #[test]
    fn disks_serialize_io_fifo() {
        let mut free = vec![0.0];
        let d1 = submit_io(0.0, 1.0, &mut free);
        let d2 = submit_io(0.0, 1.0, &mut free);
        assert!((d1 - 1.0).abs() < 1e-12);
        assert!((d2 - 2.0).abs() < 1e-12, "second I/O queues behind the first");
        let mut free2 = vec![0.0, 0.0];
        let e1 = submit_io(0.0, 1.0, &mut free2);
        let e2 = submit_io(0.0, 1.0, &mut free2);
        assert!((e1 - 1.0).abs() < 1e-12);
        assert!((e2 - 1.0).abs() < 1e-12, "two disks serve in parallel");
    }
}
