//! Random samplers built on `rand` uniforms by inverse CDF.

use rand::Rng;

/// Sample an exponential with the given mean (inverse CDF).
pub fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen::<f64>();
    // 1-u is in (0, 1], so ln never sees 0.
    -mean * (1.0 - u).ln()
}

/// Sample a two-phase hyperexponential: with probability `p1` mean `m1`,
/// otherwise mean `m2`. Useful for bursty I/O times.
pub fn hyperexp_sample<R: Rng + ?Sized>(rng: &mut R, p1: f64, m1: f64, m2: f64) -> f64 {
    if rng.gen::<f64>() < p1 {
        exp_sample(rng, m1)
    } else {
        exp_sample(rng, m2)
    }
}

/// Sample uniformly from `[lo, hi)`.
pub fn uniform_sample<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Iterator of Poisson arrival instants with the given rate (events/sec).
pub struct PoissonArrivals<R> {
    rng: R,
    rate: f64,
    clock: f64,
}

impl<R: Rng> PoissonArrivals<R> {
    /// Arrival process starting at time 0.
    pub fn new(rng: R, rate: f64) -> Self {
        assert!(rate > 0.0);
        Self { rng, rate, clock: 0.0 }
    }
}

impl<R: Rng> Iterator for PoissonArrivals<R> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.clock += exp_sample(&mut self.rng, 1.0 / self.rate);
        Some(self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp_sample(&mut rng, 0.25)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..10_000).all(|_| exp_sample(&mut rng, 1.0) > 0.0));
    }

    #[test]
    fn poisson_arrivals_are_increasing_with_right_rate() {
        let rng = StdRng::seed_from_u64(11);
        let times: Vec<f64> = PoissonArrivals::new(rng, 50.0).take(50_000).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        let rate = times.len() as f64 / times.last().unwrap();
        assert!((rate - 50.0).abs() < 1.5, "rate={rate}");
    }

    #[test]
    fn hyperexp_mean_is_mixture() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 300_000;
        let sum: f64 = (0..n).map(|_| hyperexp_sample(&mut rng, 0.8, 1.0, 10.0)).sum();
        let mean = sum / n as f64;
        let expected = 0.8 * 1.0 + 0.2 * 10.0;
        assert!((mean - expected).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = uniform_sample(&mut rng, 2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
