//! Queueing-theory closed forms used to validate the simulators.
//!
//! The paper calls its model "analytically tractable" (§4.2); these formulas
//! pin the simulators down at the corners where theory applies (no load
//! time, FCFS/PS service).

/// Mean response time of an M/M/1 FCFS queue (also valid for M/M/1-PS):
/// `W = 1 / (μ − λ)`.
///
/// Returns `f64::INFINITY` when the queue is unstable (λ ≥ μ).
pub fn mm1_mean_response(lambda: f64, mu: f64) -> f64 {
    if lambda >= mu {
        f64::INFINITY
    } else {
        1.0 / (mu - lambda)
    }
}

/// Mean response time of an M/G/1 FCFS queue by Pollaczek–Khinchine:
/// `W = E[S] + λ E[S²] / (2 (1 − ρ))`.
pub fn mg1_mean_response(lambda: f64, mean_s: f64, second_moment_s: f64) -> f64 {
    let rho = lambda * mean_s;
    if rho >= 1.0 {
        f64::INFINITY
    } else {
        mean_s + lambda * second_moment_s / (2.0 * (1.0 - rho))
    }
}

/// Mean response time of an M/G/1 processor-sharing queue (insensitive to
/// the service distribution): `W = E[S] / (1 − ρ)`.
pub fn mg1_ps_mean_response(lambda: f64, mean_s: f64) -> f64 {
    let rho = lambda * mean_s;
    if rho >= 1.0 {
        f64::INFINITY
    } else {
        mean_s / (1.0 - rho)
    }
}

/// Second moment of an exponential with the given mean: `2 m²`.
pub fn exp_second_moment(mean: f64) -> f64 {
    2.0 * mean * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_value() {
        // λ=9.5/s, E[S]=0.1s → ρ=0.95, W = 0.1/(1-0.95) = 2.0s.
        let w = mm1_mean_response(9.5, 10.0);
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_with_exponential_service_matches_mm1() {
        let lambda = 9.5;
        let mean_s = 0.1;
        let w = mg1_mean_response(lambda, mean_s, exp_second_moment(mean_s));
        assert!((w - mm1_mean_response(lambda, 1.0 / mean_s)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_halves_waiting() {
        let lambda = 9.5;
        let mean_s = 0.1;
        let w_det = mg1_mean_response(lambda, mean_s, mean_s * mean_s);
        let w_exp = mg1_mean_response(lambda, mean_s, exp_second_moment(mean_s));
        let wait_det = w_det - mean_s;
        let wait_exp = w_exp - mean_s;
        assert!((wait_det * 2.0 - wait_exp).abs() < 1e-9);
    }

    #[test]
    fn unstable_queue_is_infinite() {
        assert!(mm1_mean_response(10.0, 10.0).is_infinite());
        assert!(mg1_mean_response(11.0, 0.1, 0.02).is_infinite());
        assert!(mg1_ps_mean_response(11.0, 0.1).is_infinite());
    }

    #[test]
    fn ps_is_insensitive_and_equals_mm1_for_exponential() {
        assert!((mg1_ps_mean_response(9.5, 0.1) - 2.0).abs() < 1e-12);
    }
}
