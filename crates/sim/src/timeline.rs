//! The Figure 1 scenario: four concurrent queries, two server modules
//! (PARSER and OPTIMIZER), one CPU, no I/O.
//!
//! Under the time-sharing thread-based model the CPU round-robins over the
//! four worker threads; every context switch into a thread whose module is
//! not cached re-loads that module's working set, so the timeline fills with
//! load segments. Under staged batching (non-gated), queries queued for the
//! same module run back-to-back and each module's working set is fetched
//! once per visit. This module regenerates the timeline and the CPU-time
//! breakdown the figure illustrates.

use staged_core::coop::{CoopConfig, CoopExecutor, CoopReport, Job, SegKind};
use staged_core::policy::Policy;

/// Stage index of the parser in the Figure 1 scenario.
pub const PARSE: usize = 0;
/// Stage index of the optimizer in the Figure 1 scenario.
pub const OPTIMIZE: usize = 1;

/// Configuration of the Figure 1 scenario.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Work each query needs in its module, seconds.
    pub module_demand: f64,
    /// Module load time `l`, seconds.
    pub load: f64,
    /// Round-robin quantum of the thread-based model, seconds.
    pub quantum: f64,
    /// Per-dispatch context-switch cost, seconds.
    pub ctx_switch: f64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        // One "module's worth" of work per query, a quantum a third of it,
        // and a load time of 20% — proportions matching the figure's visual.
        Self { module_demand: 0.030, load: 0.006, quantum: 0.010, ctx_switch: 0.001 }
    }
}

/// The four queries of Figure 1: Q1 OPTIMIZE, Q2 PARSE, Q3 OPTIMIZE,
/// Q4 PARSE, all present at time zero.
pub fn figure1_jobs(cfg: &TimelineConfig) -> Vec<Job> {
    let d = cfg.module_demand;
    vec![
        Job { id: 1, arrival: 0.0, demands: vec![0.0, d] }, // Q1: OPTIMIZE
        Job { id: 2, arrival: 0.0, demands: vec![d, 0.0] }, // Q2: PARSE
        Job { id: 3, arrival: 0.0, demands: vec![0.0, d] }, // Q3: OPTIMIZE
        Job { id: 4, arrival: 0.0, demands: vec![d, 0.0] }, // Q4: PARSE
    ]
}

/// Run the scenario under the thread-based time-sharing model (PS).
pub fn run_threaded(cfg: &TimelineConfig) -> CoopReport {
    let coop = CoopExecutor::new(CoopConfig {
        loads: vec![cfg.load; 2],
        mean_demands: vec![cfg.module_demand; 2],
        policy: Policy::ProcessorSharing { quantum: cfg.quantum },
        ctx_switch: cfg.ctx_switch,
        record_timeline: true,
        timeline_cap: 10_000,
    });
    coop.run(figure1_jobs(cfg))
}

/// Run the scenario under staged batching (non-gated).
pub fn run_staged(cfg: &TimelineConfig) -> CoopReport {
    let coop = CoopExecutor::new(CoopConfig {
        loads: vec![cfg.load; 2],
        mean_demands: vec![cfg.module_demand; 2],
        policy: Policy::NonGated,
        ctx_switch: cfg.ctx_switch,
        record_timeline: true,
        timeline_cap: 10_000,
    });
    coop.run(figure1_jobs(cfg))
}

/// CPU-time breakdown of a run (the quantity Figure 1 visualizes).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Breakdown {
    /// Fraction of busy time doing useful work.
    pub work: f64,
    /// Fraction spent loading module working sets.
    pub load: f64,
    /// Fraction spent context switching.
    pub switch: f64,
    /// Total busy time, seconds.
    pub busy: f64,
}

/// Compute the breakdown of a report.
pub fn breakdown(r: &CoopReport) -> Breakdown {
    let busy = r.total_work_time + r.total_load_time + r.total_switch_time;
    if busy <= 0.0 {
        return Breakdown { work: 0.0, load: 0.0, switch: 0.0, busy: 0.0 };
    }
    Breakdown {
        work: r.total_work_time / busy,
        load: r.total_load_time / busy,
        switch: r.total_switch_time / busy,
        busy,
    }
}

/// Render the CPU timeline as an ASCII Gantt chart, one row per query plus a
/// stage row, `width` characters across the makespan.
pub fn render_gantt(r: &CoopReport, width: usize) -> String {
    let width = width.max(10);
    let span = r.makespan.max(1e-9);
    let mut ids: Vec<u64> = r.timeline.iter().filter_map(|s| s.job).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut out = String::new();
    for &id in &ids {
        let mut row = vec![' '; width];
        for seg in &r.timeline {
            if seg.job != Some(id) {
                continue;
            }
            let a = ((seg.start / span) * width as f64).floor() as usize;
            let b = (((seg.end / span) * width as f64).ceil() as usize).min(width);
            let ch = match seg.kind {
                SegKind::Work => {
                    if seg.stage == PARSE {
                        'P'
                    } else {
                        'O'
                    }
                }
                SegKind::Load => 'l',
                SegKind::Switch => 'x',
            };
            for c in row.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        out.push_str(&format!("Q{id}: "));
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_run_is_shorter_than_threaded() {
        let cfg = TimelineConfig::default();
        let threaded = run_threaded(&cfg);
        let staged = run_staged(&cfg);
        assert_eq!(threaded.completions.len(), 4);
        assert_eq!(staged.completions.len(), 4);
        assert!(
            staged.makespan < threaded.makespan,
            "staged {} vs threaded {}",
            staged.makespan,
            threaded.makespan
        );
    }

    #[test]
    fn staged_pays_each_module_load_once() {
        let cfg = TimelineConfig::default();
        let staged = run_staged(&cfg);
        // Two modules, each loaded exactly once: 2 × load.
        assert!((staged.total_load_time - 2.0 * cfg.load).abs() < 1e-9);
        let threaded = run_threaded(&cfg);
        assert!(
            threaded.total_load_time > staged.total_load_time,
            "uncontrolled switching must reload more"
        );
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let cfg = TimelineConfig::default();
        let b = breakdown(&run_threaded(&cfg));
        assert!((b.work + b.load + b.switch - 1.0).abs() < 1e-9);
        assert!(b.switch > 0.0);
    }

    #[test]
    fn gantt_renders_all_queries() {
        let cfg = TimelineConfig::default();
        let g = render_gantt(&run_staged(&cfg), 60);
        for q in ["Q1:", "Q2:", "Q3:", "Q4:"] {
            assert!(g.contains(q), "missing {q} in:\n{g}");
        }
        assert!(g.contains('P') && g.contains('O'));
    }
}
