//! # staged-sim — simulators for the paper's experiments
//!
//! Three simulators regenerate the quantitative artifacts of *"A Case for
//! Staged Database Systems"*:
//!
//! * [`prodline`] — the production-line staged server of paper §4.2
//!   (Figure 4): Poisson arrivals into a chain of N modules, each with a
//!   cache *load time* `l_i` and per-query demand `m_i`, executed by a
//!   single CPU under one of the five scheduling policies. Regenerates
//!   **Figure 5** and the policy/load ablations.
//! * [`threadpool`] — the thread-pool execution-engine experiment of paper
//!   §3.1.1: a pool of M worker threads round-robins on one CPU over a
//!   backlog of queries with CPU bursts and disk I/O, with a working-set
//!   interference model. Regenerates **Figure 2**.
//! * [`timeline`] — the four-query parse/optimize scenario of paper
//!   **Figure 1**, contrasting uncontrolled context switching with staged
//!   batching, including an ASCII Gantt rendering.
//!
//! [`analytic`] provides M/M/1 and M/G/1 closed forms used to validate the
//! simulators, and [`rng`] the inverse-CDF samplers (we deliberately avoid
//! extra dependencies like `rand_distr`; see DESIGN.md §6).

#![deny(missing_docs)]

pub mod analytic;
pub mod prodline;
pub mod rng;
pub mod threadpool;
pub mod timeline;
