//! The production-line staged-server model of paper §4.2 (Figure 4).
//!
//! "Each submitted query passes through several stages of execution that
//! contain a server module. Once a module's data structures and
//! instructions, that are shared (on average) by all queries, are accessed
//! and loaded in the cache, subsequent executions of different requests
//! within the same module will significantly reduce memory delays. To model
//! this behavior, we charge the first query in a batch with an additional
//! CPU demand `l`."
//!
//! Parameterization follows the paper exactly: a server of `stages` modules
//! with an equal service-time breakdown; a query's total CPU demand is
//! exponential with mean `m`, split equally across modules; module load
//! times sum to `l`; `m + l = 100 ms` is held constant while `l` varies from
//! 0 % to 60 % of the total; Poisson arrivals at 95 % system load. (Total
//! demand exponential + equal split keeps the l = 0 corner an M/M/1, where
//! FCFS and PS both have a 2.0 s mean response — the natural common origin
//! for all five policies in Figure 5.)

use crate::rng::{exp_sample, PoissonArrivals};
use rand::rngs::StdRng;
use rand::SeedableRng;
use staged_core::coop::{CoopConfig, CoopExecutor, Job};
use staged_core::policy::Policy;

/// Configuration of one production-line simulation run.
#[derive(Debug, Clone)]
pub struct ProdlineConfig {
    /// Number of modules (the paper uses 5).
    pub stages: usize,
    /// Mean total CPU demand per query including load time, seconds
    /// (the paper uses 100 ms).
    pub total_demand_mean: f64,
    /// Fraction of the total demand that is module loading (`l / (m+l)`),
    /// 0.0–0.99. This is the x-axis of Figure 5.
    pub load_fraction: f64,
    /// Offered load ρ = λ (m+l). The paper's Figure 5 uses 0.95.
    pub utilization: f64,
    /// Virtual time horizon for arrivals, seconds.
    pub horizon: f64,
    /// Completions from queries arriving before this time are discarded.
    pub warmup: f64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Scheduling policy.
    pub policy: Policy,
}

impl ProdlineConfig {
    /// The paper's Figure 5 setting for a given policy and load fraction.
    pub fn figure5(policy: Policy, load_fraction: f64) -> Self {
        Self {
            stages: 5,
            total_demand_mean: 0.100,
            load_fraction,
            utilization: 0.95,
            horizon: 400.0,
            warmup: 40.0,
            seed: 42,
            policy,
        }
    }

    /// Arrival rate λ implied by the target utilization.
    pub fn arrival_rate(&self) -> f64 {
        self.utilization / self.total_demand_mean
    }

    /// Per-module load time `l_i`.
    pub fn module_load(&self) -> f64 {
        self.total_demand_mean * self.load_fraction / self.stages as f64
    }

    /// Mean per-module work demand `m_i`.
    pub fn module_demand_mean(&self) -> f64 {
        self.total_demand_mean * (1.0 - self.load_fraction) / self.stages as f64
    }
}

/// Result of one production-line run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ProdlineResult {
    /// Policy label (e.g. `T-gated(2)`).
    pub policy: String,
    /// The configured load fraction (x-axis of Figure 5).
    pub load_fraction: f64,
    /// Mean response time (seconds) after warmup.
    pub mean_response: f64,
    /// 95th percentile response time after warmup.
    pub p95_response: f64,
    /// Completed queries counted.
    pub completed: usize,
    /// Fraction of busy CPU time that was loading/switching overhead.
    pub overhead_fraction: f64,
}

/// Run the production line once.
pub fn run_prodline(cfg: &ProdlineConfig) -> ProdlineResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let lambda = cfg.arrival_rate();
    let m_mean = cfg.total_demand_mean * (1.0 - cfg.load_fraction);
    let mut jobs = Vec::new();
    let arrivals = PoissonArrivals::new(StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b9), lambda);
    for (id, arrival) in arrivals.take_while(|&t| t < cfg.horizon).enumerate() {
        // Total demand exponential, split equally across the modules
        // ("equal service time breakdown").
        let total = exp_sample(&mut rng, m_mean);
        let per_stage = total / cfg.stages as f64;
        jobs.push(Job { id: id as u64, arrival, demands: vec![per_stage; cfg.stages] });
    }
    let coop = CoopExecutor::new(CoopConfig {
        loads: vec![cfg.module_load(); cfg.stages],
        mean_demands: vec![cfg.module_demand_mean(); cfg.stages],
        policy: cfg.policy,
        ctx_switch: 0.0,
        record_timeline: false,
        timeline_cap: 0,
    });
    let report = coop.run(jobs);
    let completed = report.completions.iter().filter(|c| c.arrival >= cfg.warmup).count();
    ProdlineResult {
        policy: cfg.policy.label(),
        load_fraction: cfg.load_fraction,
        mean_response: report.mean_response_after(cfg.warmup),
        p95_response: report.quantile_response(0.95, cfg.warmup),
        completed,
        overhead_fraction: report.overhead_fraction(),
    }
}

/// One policy's series over the Figure 5 x-axis.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PolicySeries {
    /// Policy label.
    pub policy: String,
    /// `(load_fraction, mean_response_secs)` points.
    pub points: Vec<(f64, f64)>,
}

/// Sweep load fractions × policies — the full Figure 5.
pub fn figure5_sweep(
    load_fractions: &[f64],
    policies: &[Policy],
    seed: u64,
    horizon: f64,
) -> Vec<PolicySeries> {
    policies
        .iter()
        .map(|&p| PolicySeries {
            policy: p.label(),
            points: load_fractions
                .iter()
                .map(|&lf| {
                    let mut cfg = ProdlineConfig::figure5(p, lf);
                    cfg.seed = seed;
                    cfg.horizon = horizon;
                    cfg.warmup = horizon * 0.1;
                    let r = run_prodline(&cfg);
                    (lf, r.mean_response)
                })
                .collect(),
        })
        .collect()
}

/// Sweep system load at a fixed load fraction (ablation A1 — the paper notes
/// "different scheduling policies prevail for different system loads",
/// §4.4d).
pub fn load_sweep(
    utilizations: &[f64],
    load_fraction: f64,
    policies: &[Policy],
    seed: u64,
    horizon: f64,
) -> Vec<(String, Vec<(f64, f64)>)> {
    policies
        .iter()
        .map(|&p| {
            let points = utilizations
                .iter()
                .map(|&u| {
                    let mut cfg = ProdlineConfig::figure5(p, load_fraction);
                    cfg.utilization = u;
                    cfg.seed = seed;
                    cfg.horizon = horizon;
                    cfg.warmup = horizon * 0.1;
                    (u, run_prodline(&cfg).mean_response)
                })
                .collect();
            (p.label(), points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::mm1_mean_response;

    /// Average a policy's mean response over several independent seeds (the
    /// ρ = 0.95 M/M/1 estimator has a long correlation time, so single runs
    /// are noisy).
    fn mean_over_seeds(policy: Policy, seeds: &[u64]) -> f64 {
        let sum: f64 = seeds
            .iter()
            .map(|&s| {
                let mut cfg = ProdlineConfig::figure5(policy, 0.0);
                cfg.horizon = 4000.0;
                cfg.warmup = 400.0;
                cfg.seed = s;
                run_prodline(&cfg).mean_response
            })
            .sum();
        sum / seeds.len() as f64
    }

    /// At l = 0 the model collapses to M/M/1 and FCFS must match theory.
    #[test]
    fn fcfs_matches_mm1_at_zero_load_time() {
        let cfg = ProdlineConfig::figure5(Policy::Fcfs, 0.0);
        let sim = mean_over_seeds(Policy::Fcfs, &[1, 2, 3, 4, 5, 6]);
        let w = mm1_mean_response(cfg.arrival_rate(), 1.0 / cfg.total_demand_mean);
        let rel_err = (sim - w).abs() / w;
        assert!(rel_err < 0.20, "sim {sim} vs theory {w} (rel {rel_err})");
    }

    /// PS is insensitive to the service distribution; at l = 0 it matches
    /// M/M/1 too.
    #[test]
    fn ps_matches_mm1_at_zero_load_time() {
        let cfg = ProdlineConfig::figure5(Policy::Fcfs, 0.0);
        let sim = mean_over_seeds(Policy::ProcessorSharing { quantum: 0.010 }, &[1, 2, 3, 4, 5, 6]);
        let w = mm1_mean_response(cfg.arrival_rate(), 1.0 / cfg.total_demand_mean);
        let rel_err = (sim - w).abs() / w;
        assert!(rel_err < 0.20, "sim {sim} vs theory {w} (rel {rel_err})");
    }

    /// The paper's headline: at significant load fractions the staged
    /// policies beat PS by a factor approaching 2.
    #[test]
    fn staged_policies_beat_ps_at_high_load_fraction() {
        let lf = 0.4;
        let horizon = 600.0;
        let run = |p: Policy| {
            let mut cfg = ProdlineConfig::figure5(p, lf);
            cfg.horizon = horizon;
            cfg.warmup = 60.0;
            run_prodline(&cfg).mean_response
        };
        let ps = run(Policy::ProcessorSharing { quantum: 0.010 });
        let fcfs = run(Policy::Fcfs);
        for staged in [Policy::NonGated, Policy::DGated, Policy::TGated { cutoff_factor: 2.0 }] {
            let rt = run(staged);
            assert!(rt < ps, "{} ({rt}) should beat PS ({ps})", staged.label());
            assert!(rt < fcfs, "{} ({rt}) should beat FCFS ({fcfs})", staged.label());
        }
    }

    /// Staged response time improves as the load fraction grows (the batch
    /// amortization effect that motivates the whole design).
    #[test]
    fn staged_improves_with_load_fraction() {
        let run = |lf: f64| {
            let mut cfg = ProdlineConfig::figure5(Policy::DGated, lf);
            cfg.horizon = 400.0;
            cfg.warmup = 40.0;
            run_prodline(&cfg).mean_response
        };
        let low = run(0.05);
        let high = run(0.5);
        assert!(
            high < low,
            "D-gated should improve with load fraction: l=5% → {low}, l=50% → {high}"
        );
    }

    #[test]
    fn config_arithmetic() {
        let cfg = ProdlineConfig::figure5(Policy::Fcfs, 0.3);
        assert!((cfg.arrival_rate() - 9.5).abs() < 1e-12);
        // l = 30% of 100 ms over 5 modules → 6 ms each; m_i = 70 ms / 5.
        assert!((cfg.module_load() - 0.006).abs() < 1e-12);
        assert!((cfg.module_demand_mean() - 0.014).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_series_per_policy() {
        let series = figure5_sweep(&[0.0, 0.2], &[Policy::Fcfs, Policy::DGated], 1, 120.0);
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.points.len() == 2));
        assert!(series.iter().all(|s| s.points.iter().all(|p| p.1.is_finite())));
    }
}
