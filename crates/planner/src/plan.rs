//! Physical plans.
//!
//! Every node's expressions are written against the node's *input* tuple
//! layout (column indexes filled by the binder or by the planner's
//! rewrites), so executors never resolve names.

use staged_sql::ast::{AggFunc, BinOp, ColumnRef, Expr};
use staged_sql::rewrite::join_conjuncts;
use staged_storage::catalog::{IndexInfo, TableInfo};
use staged_storage::{ReadView, Schema};
use std::fmt;
use std::sync::Arc;

/// One aggregate computed by an aggregation node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument over the input layout; `None` = `COUNT(*)`.
    pub arg: Option<Expr>,
    /// DISTINCT aggregation.
    pub distinct: bool,
}

/// A physical query plan.
#[derive(Clone)]
pub enum PhysicalPlan {
    /// Full scan of a table, with an optional pushed-down predicate over
    /// the table's own layout.
    SeqScan {
        /// Table to scan.
        table: Arc<TableInfo>,
        /// Residual predicate evaluated per tuple.
        predicate: Option<Expr>,
        /// MVCC read view; `None` = current (locked) read.
        snapshot: Option<ReadView>,
    },
    /// Scan of one hash partition of a table (a *partial* scan; N of these
    /// under an [`PhysicalPlan::Exchange`] cover the whole table).
    PartitionScan {
        /// Table to scan.
        table: Arc<TableInfo>,
        /// Which partition.
        partition: usize,
        /// Residual predicate evaluated per tuple.
        predicate: Option<Expr>,
        /// MVCC read view; `None` = current (locked) read.
        snapshot: Option<ReadView>,
    },
    /// Bag union of N independent inputs (the partition-parallel exchange:
    /// each input runs as its own pipeline; the merge preserves no order).
    Exchange {
        /// Partial plans, one per partition.
        inputs: Vec<PhysicalPlan>,
    },
    /// Combine partially-aggregated inputs into final aggregate values.
    /// Each input emits `group values ⧺ partial-aggregate values` (the
    /// layout produced by a HashAggregate over [`partial_agg_specs`]); this
    /// node re-groups and merges the partial states.
    MergeAggregate {
        /// Partial-aggregation pipelines, one per partition.
        inputs: Vec<PhysicalPlan>,
        /// How many leading columns are group keys.
        group_by_len: usize,
        /// The *final* aggregate list (partial layout is derived from it).
        aggs: Vec<AggSpec>,
    },
    /// B+tree index scan with inclusive key bounds.
    IndexScan {
        /// Table whose rows are fetched.
        table: Arc<TableInfo>,
        /// The index probed.
        index: Arc<IndexInfo>,
        /// Inclusive lower key bound.
        lo: Option<i64>,
        /// Inclusive upper key bound.
        hi: Option<i64>,
        /// Residual predicate evaluated per fetched tuple.
        predicate: Option<Expr>,
        /// MVCC read view; `None` = current (locked) read. Index scans
        /// never execute under a snapshot — [`PhysicalPlan::attach_snapshot`]
        /// rewrites them to sequential scans — but the field keeps the
        /// variant shape uniform for pattern matches.
        snapshot: Option<ReadView>,
    },
    /// Filter.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate over the input layout.
        predicate: Expr,
    },
    /// Projection / expression evaluation.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output expressions over the input layout.
        exprs: Vec<Expr>,
        /// Schema of the output.
        schema: Schema,
    },
    /// Nested-loop join (inner); output = left ⧺ right.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input (restarted per outer tuple).
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated layout.
        predicate: Option<Expr>,
    },
    /// Hash join on equi-keys; output = left ⧺ right.
    HashJoin {
        /// Build side.
        left: Box<PhysicalPlan>,
        /// Probe side.
        right: Box<PhysicalPlan>,
        /// Key expressions: `(left_key, right_key)` pairs, each over its
        /// own side's layout.
        keys: Vec<(Expr, Expr)>,
        /// Residual predicate over the concatenated layout.
        residual: Option<Expr>,
    },
    /// Sort-merge join on equi-keys (sorts both inputs); output = left ⧺ right.
    MergeJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Key expressions as in [`PhysicalPlan::HashJoin`] (single pair).
        keys: (Expr, Expr),
        /// Residual predicate over the concatenated layout.
        residual: Option<Expr>,
    },
    /// Sort by keys (expression, ascending).
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys over the input layout.
        keys: Vec<(Expr, bool)>,
    },
    /// Hash aggregation; output layout = group values ⧺ aggregate values.
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping expressions over the input layout.
        group_by: Vec<Expr>,
        /// Aggregates over the input layout.
        aggs: Vec<AggSpec>,
    },
    /// Duplicate elimination over whole tuples.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Maximum rows to emit.
        n: u64,
    },
}

impl PhysicalPlan {
    /// Number of columns this node emits (for layout checks).
    pub fn output_arity(&self) -> usize {
        match self {
            PhysicalPlan::SeqScan { table, .. }
            | PhysicalPlan::PartitionScan { table, .. }
            | PhysicalPlan::IndexScan { table, .. } => table.schema.len(),
            PhysicalPlan::Exchange { inputs } => {
                inputs.first().map_or(0, PhysicalPlan::output_arity)
            }
            PhysicalPlan::MergeAggregate { group_by_len, aggs, .. } => group_by_len + aggs.len(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => input.output_arity(),
            PhysicalPlan::Project { exprs, .. } => exprs.len(),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.output_arity() + right.output_arity()
            }
            PhysicalPlan::HashAggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
        }
    }

    /// Attach an MVCC read view to every table access in the plan, making
    /// it a snapshot read (executed without locks; visibility filtered per
    /// page against each table's version overlay).
    ///
    /// Index scans are rewritten to sequential scans first: a B+tree probe
    /// resolves keys to rids without consulting the version overlay, so it
    /// would miss deleted-but-still-visible rows and surface uncommitted
    /// inserts. The key bounds fold back into the scan predicate, so the
    /// rewrite changes the access path, never the result.
    pub fn attach_snapshot(&mut self, view: ReadView) {
        match self {
            PhysicalPlan::SeqScan { snapshot, .. }
            | PhysicalPlan::PartitionScan { snapshot, .. } => *snapshot = Some(view),
            PhysicalPlan::IndexScan { table, index, lo, hi, predicate, .. } => {
                let key = || col_at(index.column);
                let mut conjuncts = Vec::new();
                if let Some(a) = lo {
                    conjuncts.push(Expr::binary(key(), BinOp::GtEq, Expr::int(*a)));
                }
                if let Some(b) = hi {
                    conjuncts.push(Expr::binary(key(), BinOp::LtEq, Expr::int(*b)));
                }
                conjuncts.extend(predicate.take());
                *self = PhysicalPlan::SeqScan {
                    table: Arc::clone(table),
                    predicate: join_conjuncts(conjuncts),
                    snapshot: Some(view),
                };
            }
            PhysicalPlan::Exchange { inputs } | PhysicalPlan::MergeAggregate { inputs, .. } => {
                for i in inputs {
                    i.attach_snapshot(view);
                }
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. } => input.attach_snapshot(view),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.attach_snapshot(view);
                right.attach_snapshot(view);
            }
        }
    }

    /// Names of all base tables in the plan (diagnostics, shared scans).
    pub fn base_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            PhysicalPlan::SeqScan { table, .. }
            | PhysicalPlan::PartitionScan { table, .. }
            | PhysicalPlan::IndexScan { table, .. } => out.push(table.name.clone()),
            PhysicalPlan::Exchange { inputs } | PhysicalPlan::MergeAggregate { inputs, .. } => {
                // One partial per partition scans the same table; report
                // each table once.
                let mut nested = Vec::new();
                for i in inputs {
                    i.collect_tables(&mut nested);
                }
                nested.dedup();
                out.append(&mut nested);
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Project { input, .. } => input.collect_tables(out),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            PhysicalPlan::HashAggregate { input, .. } => input.collect_tables(out),
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::SeqScan { table, predicate, .. } => {
                write!(f, "{pad}SeqScan {}", table.name)?;
                if let Some(p) = predicate {
                    write!(f, " filter={p}")?;
                }
                writeln!(f)
            }
            PhysicalPlan::PartitionScan { table, partition, predicate, .. } => {
                write!(
                    f,
                    "{pad}PartitionScan {}[{}/{}]",
                    table.name,
                    partition,
                    table.partitions()
                )?;
                if let Some(p) = predicate {
                    write!(f, " filter={p}")?;
                }
                writeln!(f)
            }
            PhysicalPlan::Exchange { inputs } => {
                writeln!(f, "{pad}Exchange x{}", inputs.len())?;
                for i in inputs {
                    i.fmt_indented(f, depth + 1)?;
                }
                Ok(())
            }
            PhysicalPlan::MergeAggregate { inputs, group_by_len, aggs } => {
                write!(f, "{pad}MergeAggregate groups={group_by_len} aggs=[")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match &a.arg {
                        Some(e) => write!(f, "{}({e})", a.func.sql())?,
                        None => write!(f, "{}(*)", a.func.sql())?,
                    }
                }
                writeln!(f, "]")?;
                for i in inputs {
                    i.fmt_indented(f, depth + 1)?;
                }
                Ok(())
            }
            PhysicalPlan::IndexScan { table, index, lo, hi, predicate, .. } => {
                write!(f, "{pad}IndexScan {} via {} ", table.name, index.name)?;
                match (lo, hi) {
                    (Some(a), Some(b)) if a == b => write!(f, "key={a}")?,
                    (a, b) => write!(
                        f,
                        "range=[{}, {}]",
                        a.map_or("-inf".into(), |v| v.to_string()),
                        b.map_or("+inf".into(), |v| v.to_string())
                    )?,
                }
                if let Some(p) = predicate {
                    write!(f, " filter={p}")?;
                }
                writeln!(f)
            }
            PhysicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate}")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                write!(f, "{pad}Project ")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                writeln!(f)?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::NestedLoopJoin { left, right, predicate } => {
                write!(f, "{pad}NestedLoopJoin")?;
                if let Some(p) = predicate {
                    write!(f, " on {p}")?;
                }
                writeln!(f)?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::HashJoin { left, right, keys, residual } => {
                write!(f, "{pad}HashJoin on ")?;
                for (i, (l, r)) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} = {r}")?;
                }
                if let Some(p) = residual {
                    write!(f, " filter={p}")?;
                }
                writeln!(f)?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::MergeJoin { left, right, keys, residual } => {
                write!(f, "{pad}MergeJoin on {} = {}", keys.0, keys.1)?;
                if let Some(p) = residual {
                    write!(f, " filter={p}")?;
                }
                writeln!(f)?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Sort { input, keys } => {
                write!(f, "{pad}Sort by ")?;
                for (i, (e, asc)) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e} {}", if *asc { "ASC" } else { "DESC" })?;
                }
                writeln!(f)?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::HashAggregate { input, group_by, aggs } => {
                write!(f, "{pad}HashAggregate")?;
                if !group_by.is_empty() {
                    write!(f, " group=[")?;
                    for (i, g) in group_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{g}")?;
                    }
                    write!(f, "]")?;
                }
                write!(f, " aggs=[")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match &a.arg {
                        Some(e) => write!(f, "{}({e})", a.func.sql())?,
                        None => write!(f, "{}(*)", a.func.sql())?,
                    }
                }
                writeln!(f, "]")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Decompose final aggregates into partition-local *partial* aggregates.
///
/// COUNT/SUM/MIN/MAX each keep one partial column; AVG contributes two
/// (SUM of the argument, then COUNT of the argument) because an average of
/// averages is wrong under skewed partitions. The merge side walks the
/// final list with the same expansion rule, so no explicit column mapping
/// is carried in the plan. DISTINCT aggregates are not decomposable — the
/// planner keeps those single-phase.
pub fn partial_agg_specs(aggs: &[AggSpec]) -> Vec<AggSpec> {
    let mut out = Vec::with_capacity(aggs.len());
    for a in aggs {
        debug_assert!(!a.distinct, "DISTINCT aggregates are never two-phase");
        match a.func {
            AggFunc::Avg => {
                out.push(AggSpec { func: AggFunc::Sum, arg: a.arg.clone(), distinct: false });
                out.push(AggSpec { func: AggFunc::Count, arg: a.arg.clone(), distinct: false });
            }
            _ => out.push(a.clone()),
        }
    }
    out
}

/// A bound column reference with a synthetic name (planner-generated).
pub fn col_at(index: usize) -> Expr {
    Expr::Column(ColumnRef { table: None, name: format!("#{index}"), index: Some(index) })
}

/// Replace every occurrence of the mapped expressions with column
/// references into a new layout. Returns `None` when an aggregate call
/// survives unmapped (invalid for post-aggregation expressions).
pub fn substitute(expr: &Expr, map: &[(Expr, usize)]) -> Option<Expr> {
    if let Some((_, idx)) = map.iter().find(|(e, _)| e == expr) {
        return Some(col_at(*idx));
    }
    Some(match expr {
        Expr::Agg { .. } => return None,
        Expr::Literal(_) | Expr::Column(_) => expr.clone(),
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(substitute(expr, map)?) },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute(left, map)?),
            op: *op,
            right: Box::new(substitute(right, map)?),
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(substitute(expr, map)?), negated: *negated }
        }
        Expr::Between { expr, lo, hi, negated } => Expr::Between {
            expr: Box::new(substitute(expr, map)?),
            lo: Box::new(substitute(lo, map)?),
            hi: Box::new(substitute(hi, map)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(substitute(expr, map)?),
            list: list.iter().map(|e| substitute(e, map)).collect::<Option<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(substitute(expr, map)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
    })
}

/// Shift every bound column index in `expr` by `delta` (used when an
/// expression written against a join's right side must be evaluated against
/// the concatenated layout).
pub fn shift_columns(expr: &Expr, delta: usize) -> Expr {
    let mut e = expr.clone();
    shift_in_place(&mut e, delta);
    e
}

fn shift_in_place(expr: &mut Expr, delta: usize) {
    match expr {
        Expr::Column(c) => {
            if let Some(i) = c.index {
                c.index = Some(i + delta);
            }
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            shift_in_place(expr, delta)
        }
        Expr::Binary { left, right, .. } => {
            shift_in_place(left, delta);
            shift_in_place(right, delta);
        }
        Expr::Between { expr, lo, hi, .. } => {
            shift_in_place(expr, delta);
            shift_in_place(lo, delta);
            shift_in_place(hi, delta);
        }
        Expr::InList { expr, list, .. } => {
            shift_in_place(expr, delta);
            list.iter_mut().for_each(|e| shift_in_place(e, delta));
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                shift_in_place(a, delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_sql::ast::BinOp;

    #[test]
    fn substitute_replaces_mapped_subtrees() {
        let agg = Expr::Agg { func: AggFunc::Count, arg: None, distinct: false };
        let e = Expr::binary(agg.clone(), BinOp::Gt, Expr::int(2));
        let out = substitute(&e, &[(agg, 1)]).unwrap();
        assert_eq!(out.to_string(), "(#1 > 2)");
    }

    #[test]
    fn substitute_fails_on_unmapped_aggregate() {
        let agg =
            Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("x"))), distinct: false };
        assert!(substitute(&agg, &[]).is_none());
    }

    #[test]
    fn shift_columns_moves_indices() {
        let e = Expr::Column(ColumnRef { table: None, name: "x".into(), index: Some(2) });
        let shifted = shift_columns(&e, 5);
        let Expr::Column(c) = shifted else { panic!() };
        assert_eq!(c.index, Some(7));
    }
}
