//! Cardinality and cost estimation ("statistics … eval plans", Figure 3).

use staged_sql::ast::{BinOp, Expr};
use staged_storage::stats::TableStats;
use staged_storage::Value;

/// Cost-model constants (abstract units: one sequential page read = 1.0).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of reading one page sequentially.
    pub seq_page: f64,
    /// Cost of reading one page at random (index traversal / rid fetch).
    pub random_page: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple: f64,
    /// CPU cost of evaluating one predicate.
    pub cpu_pred: f64,
    /// CPU cost of hashing / probing one tuple.
    pub cpu_hash: f64,
    /// CPU cost of one comparison during sorting.
    pub cpu_cmp: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            seq_page: 1.0,
            random_page: 4.0,
            cpu_tuple: 0.01,
            cpu_pred: 0.005,
            cpu_hash: 0.02,
            cpu_cmp: 0.015,
        }
    }
}

/// Estimated rows and cost of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Output cardinality.
    pub rows: f64,
    /// Total cost in cost-model units.
    pub cost: f64,
}

impl Estimate {
    /// An estimate.
    pub fn new(rows: f64, cost: f64) -> Self {
        Self { rows: rows.max(0.0), cost: cost.max(0.0) }
    }
}

/// Selectivity of a single-table conjunct, given the table's stats and the
/// column layout the expression is bound against.
pub fn conjunct_selectivity(stats: &TableStats, conjunct: &Expr) -> f64 {
    match conjunct {
        Expr::Binary { left, op, right } => {
            let (col, lit) = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => (c.index, Some(v)),
                (Expr::Literal(v), Expr::Column(c)) => (c.index, Some(v)),
                _ => (None, None),
            };
            let Some(col) = col else {
                return default_selectivity(*op);
            };
            match op {
                BinOp::Eq => stats.eq_selectivity(col),
                BinOp::NotEq => 1.0 - stats.eq_selectivity(col),
                BinOp::Lt | BinOp::LtEq => stats.range_selectivity(col, None, lit),
                BinOp::Gt | BinOp::GtEq => stats.range_selectivity(col, lit, None),
                _ => 0.5,
            }
        }
        Expr::Between { expr, lo, hi, negated } => {
            let sel = match (&**expr, &**lo, &**hi) {
                (Expr::Column(c), Expr::Literal(a), Expr::Literal(b)) => {
                    c.index.map_or(0.25, |i| stats.range_selectivity(i, Some(a), Some(b)))
                }
                _ => 0.25,
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        Expr::InList { expr, list, negated } => {
            let sel = match &**expr {
                Expr::Column(c) => {
                    c.index.map_or(0.2, |i| (stats.eq_selectivity(i) * list.len() as f64).min(1.0))
                }
                _ => 0.2,
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        Expr::IsNull { expr, negated } => {
            let sel = match &**expr {
                Expr::Column(c) => c.index.map_or(0.05, |i| {
                    let rows = stats.row_count.max(1) as f64;
                    stats.columns.get(i).map_or(0.05, |cs| cs.nulls as f64 / rows)
                }),
                _ => 0.05,
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        Expr::Like { .. } => 0.1,
        Expr::Unary { .. } => 0.5,
        _ => 0.5,
    }
}

fn default_selectivity(op: BinOp) -> f64 {
    match op {
        BinOp::Eq => 0.05,
        BinOp::NotEq => 0.95,
        _ => 0.33,
    }
}

/// Extract inclusive integer bounds from a sargable conjunct on `col`
/// (`col = k`, `col < k`, `col BETWEEN a AND b`, …).
pub fn sargable_bounds(conjunct: &Expr, col: usize) -> Option<(Option<i64>, Option<i64>)> {
    match conjunct {
        Expr::Binary { left, op, right } => {
            let (c, v, flipped) = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(Value::Int(v))) => (c, *v, false),
                (Expr::Literal(Value::Int(v)), Expr::Column(c)) => (c, *v, true),
                _ => return None,
            };
            if c.index != Some(col) {
                return None;
            }
            let op = if flipped {
                match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    other => *other,
                }
            } else {
                *op
            };
            match op {
                BinOp::Eq => Some((Some(v), Some(v))),
                BinOp::Lt => Some((None, Some(v - 1))),
                BinOp::LtEq => Some((None, Some(v))),
                BinOp::Gt => Some((Some(v + 1), None)),
                BinOp::GtEq => Some((Some(v), None)),
                _ => None,
            }
        }
        Expr::Between { expr, lo, hi, negated: false } => match (&**expr, &**lo, &**hi) {
            (Expr::Column(c), Expr::Literal(Value::Int(a)), Expr::Literal(Value::Int(b)))
                if c.index == Some(col) =>
            {
                Some((Some(*a), Some(*b)))
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_sql::ast::ColumnRef;
    use staged_storage::stats::ColumnStats;

    fn stats() -> TableStats {
        TableStats {
            row_count: 1000,
            page_count: 10,
            columns: vec![ColumnStats {
                min: Some(Value::Int(0)),
                max: Some(Value::Int(999)),
                ndv: 1000,
                nulls: 0,
            }],
        }
    }

    fn col(i: usize) -> Expr {
        Expr::Column(ColumnRef { table: None, name: format!("c{i}"), index: Some(i) })
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let e = Expr::binary(col(0), BinOp::Eq, Expr::int(5));
        let sel = conjunct_selectivity(&stats(), &e);
        assert!((sel - 0.001).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_uses_min_max() {
        let e = Expr::binary(col(0), BinOp::Lt, Expr::int(500));
        let sel = conjunct_selectivity(&stats(), &e);
        assert!((sel - 0.5).abs() < 0.01, "sel={sel}");
    }

    #[test]
    fn sargable_bounds_extraction() {
        assert_eq!(
            sargable_bounds(&Expr::binary(col(0), BinOp::Eq, Expr::int(7)), 0),
            Some((Some(7), Some(7)))
        );
        assert_eq!(
            sargable_bounds(&Expr::binary(col(0), BinOp::Lt, Expr::int(7)), 0),
            Some((None, Some(6)))
        );
        assert_eq!(
            sargable_bounds(&Expr::binary(Expr::int(7), BinOp::Lt, col(0)), 0),
            Some((Some(8), None)),
            "flipped comparison"
        );
        let between = Expr::Between {
            expr: Box::new(col(0)),
            lo: Box::new(Expr::int(1)),
            hi: Box::new(Expr::int(9)),
            negated: false,
        };
        assert_eq!(sargable_bounds(&between, 0), Some((Some(1), Some(9))));
        // Wrong column: not sargable for col 0.
        assert_eq!(sargable_bounds(&Expr::binary(col(1), BinOp::Eq, Expr::int(7)), 0), None);
        // Column-to-column: not sargable.
        assert_eq!(sargable_bounds(&Expr::binary(col(0), BinOp::Eq, col(1)), 0), None);
    }
}
