//! The planning algorithm: predicate pushdown, access-path selection,
//! join ordering and physical operator choice.

use crate::estimate::{conjunct_selectivity, sargable_bounds, CostModel, Estimate};
use crate::plan::{col_at, partial_agg_specs, shift_columns, substitute, AggSpec, PhysicalPlan};
use staged_sql::ast::{BinOp, Expr, SelectStmt};
use staged_sql::binder::BoundSelect;
use staged_sql::error::{SqlError, SqlResult};
use staged_sql::rewrite::{join_conjuncts, split_conjuncts};
use staged_storage::catalog::TableInfo;
use staged_storage::stats::TableStats;
use staged_storage::{partition_of_value, Catalog, DataType, Value};
use std::sync::Arc;

/// Beyond this many FROM tables the planner switches from exhaustive DP to
/// a greedy heuristic.
pub const DP_TABLE_LIMIT: usize = 10;

/// Planner feature switches (used by tests and the ablation benches).
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Consider B+tree index scans.
    pub enable_index_scan: bool,
    /// Consider hash joins for equijoins.
    pub enable_hash_join: bool,
    /// Consider sort-merge joins for equijoins.
    pub enable_merge_join: bool,
    /// Use an index scan when the estimated selectivity is below this.
    pub index_selectivity_threshold: f64,
    /// Fan scans of hash-partitioned tables out into per-partition partial
    /// scans under an Exchange, with two-phase aggregation above them
    /// (paper §6). When off, partitioned tables are scanned serially.
    pub enable_partition_parallel: bool,
    /// Cost model constants.
    pub cost: CostModel,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            enable_index_scan: true,
            enable_hash_join: true,
            enable_merge_join: true,
            index_selectivity_threshold: 0.2,
            enable_partition_parallel: true,
            cost: CostModel::default(),
        }
    }
}

/// A candidate subplan during join enumeration.
#[derive(Clone)]
struct Cand {
    plan: PhysicalPlan,
    est: Estimate,
    /// Table indices (into the FROM list) in output-column order.
    order: Vec<usize>,
}

/// Plan a bound SELECT into a physical plan.
pub fn plan_select(
    bound: &BoundSelect,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> SqlResult<PhysicalPlan> {
    let stmt = &bound.stmt;
    let tables = &bound.tables;
    if tables.is_empty() {
        return plan_tableless(bound);
    }
    let lens: Vec<usize> = tables.iter().map(|t| t.info.schema.len()).collect();
    let offsets: Vec<usize> = tables.iter().map(|t| t.offset).collect();
    let all_stats: Vec<TableStats> = tables.iter().map(|t| t.info.stats.read().clone()).collect();

    // 1. Split and classify the WHERE conjuncts.
    let conjuncts = match &stmt.filter {
        Some(f) => split_conjuncts(f.clone()),
        None => Vec::new(),
    };
    let mut per_table: Vec<Vec<Expr>> = vec![Vec::new(); tables.len()];
    let mut equi_edges: Vec<(usize, usize, usize, usize, Expr)> = Vec::new(); // (tl, tr, scope_l, scope_r, expr)
    let mut general: Vec<(u64, Expr)> = Vec::new(); // (table mask, expr)
    let mut applied_general = vec![false; 0];
    for c in conjuncts {
        let mask = tables_mask(&c, &offsets, &lens);
        if mask.count_ones() == 1 {
            let t = mask.trailing_zeros() as usize;
            per_table[t].push(rebase_columns(&c, offsets[t]));
        } else if mask.count_ones() == 2 {
            if let Some((sl, sr)) = as_equi_columns(&c) {
                let tl = owner_table(sl, &offsets, &lens).expect("bound column");
                let tr = owner_table(sr, &offsets, &lens).expect("bound column");
                if tl != tr {
                    let (tl, tr, sl, sr) =
                        if tl < tr { (tl, tr, sl, sr) } else { (tr, tl, sr, sl) };
                    equi_edges.push((tl, tr, sl, sr, c));
                    continue;
                }
            }
            general.push((mask, c));
        } else {
            general.push((mask, c));
        }
    }
    applied_general.resize(general.len(), false);

    // 2. Base access paths.
    let mut base: Vec<Cand> = Vec::with_capacity(tables.len());
    for (t, info) in tables.iter().enumerate() {
        let (plan, est) =
            plan_access_path(&info.info, &all_stats[t], per_table[t].clone(), catalog, config);
        base.push(Cand { plan, est, order: vec![t] });
    }

    // 3. Join enumeration.
    let joined = if tables.len() == 1 {
        base.into_iter().next().expect("one base plan")
    } else if tables.len() <= DP_TABLE_LIMIT {
        enumerate_dp(base, &equi_edges, &general, &lens, &offsets, &all_stats, config)?
    } else {
        enumerate_greedy(base, &equi_edges, &general, &lens, &offsets, &all_stats, config)?
    };
    let mut order = joined.order.clone();
    let mut plan = joined.plan;
    let rows_after_join = joined.est.rows;

    // 4. Restore scope column order if joins permuted it.
    if order != (0..tables.len()).collect::<Vec<_>>() {
        let mut exprs = Vec::with_capacity(bound.scope.len());
        for scope_idx in 0..bound.scope.len() {
            let pos = layout_index(&order, &lens, &offsets, scope_idx)
                .ok_or_else(|| SqlError::new("internal: column lost during join ordering"))?;
            exprs.push(col_at(pos));
        }
        plan = PhysicalPlan::Project { input: Box::new(plan), exprs, schema: bound.scope.clone() };
        order = (0..tables.len()).collect();
        let _ = &order;
    }

    // 5. Any general conjuncts not applied inside the join tree (e.g.
    // constant predicates) become a top filter.
    let leftovers: Vec<Expr> = general.into_iter().map(|(_, e)| e).collect();
    // (Conjuncts spanning ≥2 tables were consumed during enumeration; the
    // enumerators remove what they apply. Anything still here references 0
    // tables or was simply never coverable.)
    if let Some(pred) = join_conjuncts(leftovers) {
        plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: pred };
    }

    // 6. Aggregation, HAVING, projection, DISTINCT, ORDER BY, LIMIT.
    let grouped = !stmt.group_by.is_empty()
        || bound.projections.iter().any(Expr::contains_agg)
        || stmt.having.as_ref().is_some_and(Expr::contains_agg);

    let mut projections = bound.projections.clone();
    let mut order_exprs: Vec<(Expr, bool)> = stmt.order_by.clone();
    if grouped {
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut agg_exprs: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| collect_aggs(e, &mut aggs, &mut agg_exprs);
        for p in &projections {
            collect(p);
        }
        if let Some(h) = &stmt.having {
            collect(h);
        }
        for (e, _) in &order_exprs {
            collect(e);
        }
        let g = stmt.group_by.len();
        let mut map: Vec<(Expr, usize)> = Vec::new();
        for (i, ge) in stmt.group_by.iter().enumerate() {
            map.push((ge.clone(), i));
        }
        for (j, ae) in agg_exprs.iter().enumerate() {
            map.push((ae.clone(), g + j));
        }
        plan = build_aggregate(plan, stmt.group_by.clone(), aggs);
        if let Some(h) = &stmt.having {
            let rewritten = substitute(h, &map)
                .ok_or_else(|| SqlError::new("HAVING uses an expression not in GROUP BY"))?;
            plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: rewritten };
        }
        projections = projections
            .iter()
            .map(|p| {
                substitute(p, &map)
                    .ok_or_else(|| SqlError::new("projection uses an expression not in GROUP BY"))
            })
            .collect::<SqlResult<Vec<_>>>()?;
        order_exprs = order_exprs
            .into_iter()
            .map(|(e, asc)| {
                substitute(&e, &map)
                    .map(|e2| (e2, asc))
                    .ok_or_else(|| SqlError::new("ORDER BY uses an expression not in GROUP BY"))
            })
            .collect::<SqlResult<Vec<_>>>()?;
    }

    if stmt.distinct {
        // Sort must run over the projected output so DISTINCT and ORDER BY
        // compose: rewrite order keys against the projection list.
        let proj_map: Vec<(Expr, usize)> =
            projections.iter().cloned().enumerate().map(|(i, e)| (e, i)).collect();
        let rewritten_order = order_exprs
            .iter()
            .map(|(e, asc)| substitute(e, &proj_map).map(|e2| (e2, *asc)))
            .collect::<Option<Vec<_>>>();
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs: projections,
            schema: bound.output.clone(),
        };
        plan = PhysicalPlan::Distinct { input: Box::new(plan) };
        if !order_exprs.is_empty() {
            let keys = rewritten_order.ok_or_else(|| {
                SqlError::new("ORDER BY with DISTINCT must use selected expressions")
            })?;
            plan = PhysicalPlan::Sort { input: Box::new(plan), keys };
        }
    } else {
        if !order_exprs.is_empty() {
            plan = PhysicalPlan::Sort { input: Box::new(plan), keys: order_exprs };
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs: projections,
            schema: bound.output.clone(),
        };
    }

    if let Some(n) = stmt.limit {
        plan = PhysicalPlan::Limit { input: Box::new(plan), n };
    }
    let _ = rows_after_join;
    Ok(plan)
}

/// Plan a FROM-less SELECT (`SELECT 1 + 1`): a one-row projection.
fn plan_tableless(bound: &BoundSelect) -> SqlResult<PhysicalPlan> {
    // A Project over a synthetic single-row input; the executor treats a
    // Project with no input tables via a HashAggregate-free path. We model
    // it as Project over an empty SeqScan-less plan: reuse Limit over
    // nothing is messy, so the engine provides a OneRow marker via
    // HashAggregate with no groups and no aggs — instead, the simplest
    // correct encoding: Project over a Values-like one-row plan is not in
    // the enum, so we rely on `SELECT` without FROM never reaching scans:
    // encode as HashAggregate over an empty SeqScan? No table exists.
    // Practical choice: a Project whose input is a zero-input
    // HashAggregate is wrong; instead the engine special-cases
    // `PhysicalPlan::Project` with `input = Limit(n=1) over Distinct` —
    // overly clever. We instead return an error; the server evaluates
    // FROM-less SELECTs directly in the parse stage (constant folding
    // reduces them to literals).
    let all_const = bound.projections.iter().all(|e| matches!(e, Expr::Literal(_)));
    if all_const {
        Err(SqlError::new("FROM-less SELECT is evaluated by the front end"))
    } else {
        Err(SqlError::new("SELECT without FROM supports only constant expressions"))
    }
}

/// Choose between a sequential scan and an index scan for one table.
fn plan_access_path(
    table: &Arc<TableInfo>,
    stats: &TableStats,
    conjuncts: Vec<Expr>,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> (PhysicalPlan, Estimate) {
    let rows = stats.row_count.max(1) as f64;
    let pages = stats.page_count.max(1) as f64;
    let cm = &config.cost;
    // Combined selectivity of all pushed conjuncts.
    let sel_all: f64 =
        conjuncts.iter().map(|c| conjunct_selectivity(stats, c)).product::<f64>().clamp(0.0, 1.0);
    let seq_est = Estimate::new(
        rows * sel_all,
        pages * cm.seq_page + rows * (cm.cpu_tuple + conjuncts.len() as f64 * cm.cpu_pred),
    );

    // (conjunct index, key bounds, selectivity, index) of the best sargable
    // index found so far.
    type IndexChoice =
        (usize, (Option<i64>, Option<i64>), f64, Arc<staged_storage::catalog::IndexInfo>);
    let mut best_index: Option<IndexChoice> = None;
    if config.enable_index_scan {
        for ix in catalog.indexes_for(table.id) {
            for (ci, c) in conjuncts.iter().enumerate() {
                if let Some(bounds) = sargable_bounds(c, ix.column) {
                    let sel = conjunct_selectivity(stats, c);
                    if sel < config.index_selectivity_threshold
                        && best_index.as_ref().is_none_or(|(_, _, s, _)| sel < *s)
                    {
                        best_index = Some((ci, bounds, sel, Arc::clone(&ix)));
                    }
                }
            }
        }
    }
    if let Some((ci, (lo, hi), sel, ix)) = best_index {
        // Residual conjuncts = everything except the one the index covers.
        let residual: Vec<Expr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ci)
            .map(|(_, e)| e.clone())
            .collect();
        let matched = rows * sel;
        let residual_sel: f64 = residual
            .iter()
            .map(|c| conjunct_selectivity(stats, c))
            .product::<f64>()
            .clamp(0.0, 1.0);
        let est = Estimate::new(
            matched * residual_sel,
            3.0 * cm.random_page + matched * (cm.random_page + cm.cpu_tuple),
        );
        if est.cost < seq_est.cost {
            let plan = PhysicalPlan::IndexScan {
                table: Arc::clone(table),
                index: ix,
                lo,
                hi,
                predicate: join_conjuncts(residual),
                snapshot: None,
            };
            return (plan, est);
        }
        // Index lost on cost: fall through to the sequential scan, which
        // keeps the full conjunct list.
    }
    let nparts = table.partitions();
    if nparts > 1 && config.enable_partition_parallel {
        return plan_partitioned_scan(table, conjuncts, nparts, seq_est);
    }
    let plan = PhysicalPlan::SeqScan {
        table: Arc::clone(table),
        predicate: join_conjuncts(conjuncts),
        snapshot: None,
    };
    (plan, seq_est)
}

/// Partition-parallel access path: N partial scans under an Exchange, or a
/// single pruned partition scan when a conjunct pins the hash key.
fn plan_partitioned_scan(
    table: &Arc<TableInfo>,
    conjuncts: Vec<Expr>,
    nparts: usize,
    seq_est: Estimate,
) -> (PhysicalPlan, Estimate) {
    let key = table.partition_key();
    // Pruning is only sound when the key column is INT: then every stored
    // key is an Int (schema-validated) and hashes exactly like the pinned
    // literal. The full conjunct list stays on the scan — hashing is not
    // injective, so the pinned partition still holds non-matching rows.
    let pinned = (table.schema.column(key).ty == DataType::Int)
        .then(|| {
            conjuncts.iter().find_map(|c| match sargable_bounds(c, key) {
                Some((Some(lo), Some(hi))) if lo == hi => Some(lo),
                _ => None,
            })
        })
        .flatten();
    let predicate = join_conjuncts(conjuncts);
    match pinned {
        Some(k) => {
            let plan = PhysicalPlan::PartitionScan {
                table: Arc::clone(table),
                partition: partition_of_value(&Value::Int(k), nparts),
                predicate,
                snapshot: None,
            };
            // One partition's worth of pages and rows.
            let est = Estimate::new(seq_est.rows, seq_est.cost / nparts as f64);
            (plan, est)
        }
        None => {
            let inputs = (0..nparts)
                .map(|p| PhysicalPlan::PartitionScan {
                    table: Arc::clone(table),
                    partition: p,
                    predicate: predicate.clone(),
                    snapshot: None,
                })
                .collect();
            // Same total work; the win is wall-clock parallelism, which the
            // serial cost model does not price.
            (PhysicalPlan::Exchange { inputs }, seq_est)
        }
    }
}

/// Place the aggregation operator. Directly above a partition-parallel
/// Exchange the aggregate splits into two phases: per-partition partial
/// HashAggregates (running inside each partial pipeline) converging at a
/// MergeAggregate that combines partial states. DISTINCT aggregates cannot
/// be combined from partials, so they stay single-phase above the union.
fn build_aggregate(input: PhysicalPlan, group_by: Vec<Expr>, aggs: Vec<AggSpec>) -> PhysicalPlan {
    if let PhysicalPlan::Exchange { inputs } = input {
        if aggs.iter().all(|a| !a.distinct) {
            let partial = partial_agg_specs(&aggs);
            let inputs = inputs
                .into_iter()
                .map(|i| PhysicalPlan::HashAggregate {
                    input: Box::new(i),
                    group_by: group_by.clone(),
                    aggs: partial.clone(),
                })
                .collect();
            return PhysicalPlan::MergeAggregate { inputs, group_by_len: group_by.len(), aggs };
        }
        return PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Exchange { inputs }),
            group_by,
            aggs,
        };
    }
    PhysicalPlan::HashAggregate { input: Box::new(input), group_by, aggs }
}

fn collect_aggs(expr: &Expr, aggs: &mut Vec<AggSpec>, agg_exprs: &mut Vec<Expr>) {
    match expr {
        Expr::Agg { func, arg, distinct } => {
            if !agg_exprs.contains(expr) {
                agg_exprs.push(expr.clone());
                aggs.push(AggSpec {
                    func: *func,
                    arg: arg.as_deref().cloned(),
                    distinct: *distinct,
                });
            }
        }
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            collect_aggs(expr, aggs, agg_exprs)
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, aggs, agg_exprs);
            collect_aggs(right, aggs, agg_exprs);
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, aggs, agg_exprs);
            collect_aggs(lo, aggs, agg_exprs);
            collect_aggs(hi, aggs, agg_exprs);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, aggs, agg_exprs);
            list.iter().for_each(|e| collect_aggs(e, aggs, agg_exprs));
        }
    }
}

/// Bitmask of FROM tables referenced by an expression (scope-bound).
fn tables_mask(expr: &Expr, offsets: &[usize], lens: &[usize]) -> u64 {
    let mut mask = 0u64;
    expr.visit_columns(&mut |c| {
        if let Some(i) = c.index {
            if let Some(t) = owner_table(i, offsets, lens) {
                mask |= 1 << t;
            }
        }
    });
    mask
}

fn owner_table(scope_idx: usize, offsets: &[usize], lens: &[usize]) -> Option<usize> {
    (0..offsets.len()).find(|&t| scope_idx >= offsets[t] && scope_idx < offsets[t] + lens[t])
}

/// `col = col` between two different tables?
fn as_equi_columns(expr: &Expr) -> Option<(usize, usize)> {
    if let Expr::Binary { left, op: BinOp::Eq, right } = expr {
        if let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) {
            return Some((a.index?, b.index?));
        }
    }
    None
}

/// Rebase scope-relative column indexes to table-local ones.
fn rebase_columns(expr: &Expr, offset: usize) -> Expr {
    let mut e = expr.clone();
    rebase_in_place(&mut e, offset);
    e
}

fn rebase_in_place(expr: &mut Expr, offset: usize) {
    match expr {
        Expr::Column(c) => {
            if let Some(i) = c.index {
                c.index = Some(i - offset);
            }
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            rebase_in_place(expr, offset)
        }
        Expr::Binary { left, right, .. } => {
            rebase_in_place(left, offset);
            rebase_in_place(right, offset);
        }
        Expr::Between { expr, lo, hi, .. } => {
            rebase_in_place(expr, offset);
            rebase_in_place(lo, offset);
            rebase_in_place(hi, offset);
        }
        Expr::InList { expr, list, .. } => {
            rebase_in_place(expr, offset);
            list.iter_mut().for_each(|e| rebase_in_place(e, offset));
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                rebase_in_place(a, offset);
            }
        }
    }
}

/// Position of a scope column in the concatenated layout given a table
/// output order.
fn layout_index(
    order: &[usize],
    lens: &[usize],
    offsets: &[usize],
    scope_idx: usize,
) -> Option<usize> {
    let t = owner_table(scope_idx, offsets, lens)?;
    let mut pos = 0;
    for &o in order {
        if o == t {
            return Some(pos + (scope_idx - offsets[t]));
        }
        pos += lens[o];
    }
    None
}

/// Rewrite a scope-bound expression against a concatenated layout.
fn remap_expr(expr: &Expr, order: &[usize], lens: &[usize], offsets: &[usize]) -> Option<Expr> {
    let mut e = expr.clone();
    let mut ok = true;
    remap_in_place(&mut e, order, lens, offsets, &mut ok);
    ok.then_some(e)
}

fn remap_in_place(
    expr: &mut Expr,
    order: &[usize],
    lens: &[usize],
    offsets: &[usize],
    ok: &mut bool,
) {
    match expr {
        Expr::Column(c) => match c.index.and_then(|i| layout_index(order, lens, offsets, i)) {
            Some(p) => c.index = Some(p),
            None => *ok = false,
        },
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            remap_in_place(expr, order, lens, offsets, ok)
        }
        Expr::Binary { left, right, .. } => {
            remap_in_place(left, order, lens, offsets, ok);
            remap_in_place(right, order, lens, offsets, ok);
        }
        Expr::Between { expr, lo, hi, .. } => {
            remap_in_place(expr, order, lens, offsets, ok);
            remap_in_place(lo, order, lens, offsets, ok);
            remap_in_place(hi, order, lens, offsets, ok);
        }
        Expr::InList { expr, list, .. } => {
            remap_in_place(expr, order, lens, offsets, ok);
            list.iter_mut().for_each(|e| remap_in_place(e, order, lens, offsets, ok));
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                remap_in_place(a, order, lens, offsets, ok);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn make_join(
    left: &Cand,
    right: &Cand,
    equi_edges: &[(usize, usize, usize, usize, Expr)],
    general: &[(u64, Expr)],
    lens: &[usize],
    offsets: &[usize],
    stats: &[TableStats],
    config: &PlannerConfig,
) -> Option<Cand> {
    let lmask: u64 = left.order.iter().map(|t| 1u64 << t).sum();
    let rmask: u64 = right.order.iter().map(|t| 1u64 << t).sum();
    let combined: Vec<usize> = left.order.iter().chain(right.order.iter()).copied().collect();
    let cm = &config.cost;

    // Applicable equi edges crossing the two sides.
    let mut keys: Vec<(Expr, Expr)> = Vec::new();
    let mut edge_sel = 1.0f64;
    for (tl, tr, sl, sr, _) in equi_edges {
        let (a, b) = (1u64 << tl, 1u64 << tr);
        let crossing = (a & lmask != 0 && b & rmask != 0) || (a & rmask != 0 && b & lmask != 0);
        if !crossing {
            continue;
        }
        let (scope_l, scope_r) = if a & lmask != 0 { (*sl, *sr) } else { (*sr, *sl) };
        let lpos = layout_index(&left.order, lens, offsets, scope_l)?;
        let rpos = layout_index(&right.order, lens, offsets, scope_r)?;
        keys.push((col_at(lpos), col_at(rpos)));
        let ndv_l = column_ndv(scope_l, offsets, lens, stats);
        let ndv_r = column_ndv(scope_r, offsets, lens, stats);
        edge_sel *= 1.0 / ndv_l.max(ndv_r).max(1.0);
    }

    // General conjuncts newly covered by this join become residuals.
    let full = lmask | rmask;
    let mut residuals: Vec<Expr> = Vec::new();
    let mut residual_sel = 1.0f64;
    for (mask, e) in general {
        if mask & full == *mask && mask & lmask != 0 && mask & rmask != 0 {
            residuals.push(remap_expr(e, &combined, lens, offsets)?);
            residual_sel *= 0.5;
        }
    }

    let out_rows = (left.est.rows * right.est.rows * edge_sel * residual_sel).max(0.0);
    let residual = join_conjuncts(residuals);

    // Candidate methods.
    let mut best: Option<(PhysicalPlan, f64)> = None;
    let mut consider = |plan: PhysicalPlan, cost: f64| match &best {
        Some((_, c)) if *c <= cost => {}
        _ => best = Some((plan, cost)),
    };
    if !keys.is_empty() && config.enable_hash_join {
        let cost = left.est.cost
            + right.est.cost
            + left.est.rows * cm.cpu_hash
            + right.est.rows * cm.cpu_hash
            + out_rows * cm.cpu_tuple;
        consider(
            PhysicalPlan::HashJoin {
                left: Box::new(left.plan.clone()),
                right: Box::new(right.plan.clone()),
                keys: keys.clone(),
                residual: residual.clone(),
            },
            cost,
        );
    }
    if !keys.is_empty() && config.enable_merge_join {
        let nlogn = |r: f64| if r > 1.0 { r * r.log2() } else { 0.0 };
        let cost = left.est.cost
            + right.est.cost
            + (nlogn(left.est.rows) + nlogn(right.est.rows)) * cm.cpu_cmp
            + (left.est.rows + right.est.rows) * cm.cpu_tuple
            + out_rows * cm.cpu_tuple;
        consider(
            PhysicalPlan::MergeJoin {
                left: Box::new(left.plan.clone()),
                right: Box::new(right.plan.clone()),
                keys: keys[0].clone(),
                residual: merge_join_residual(&keys, residual.clone(), left, lens),
            },
            cost,
        );
    }
    // Nested loops always available (block nested loops: inner materialized).
    {
        let mut preds: Vec<Expr> = Vec::new();
        for (l, r) in &keys {
            preds.push(Expr::binary(
                l.clone(),
                BinOp::Eq,
                shift_columns(r, left_arity(left, lens)),
            ));
        }
        if let Some(res) = &residual {
            preds.push(res.clone());
        }
        let cost = left.est.cost
            + right.est.cost
            + left.est.rows * right.est.rows * (cm.cpu_pred + cm.cpu_tuple);
        consider(
            PhysicalPlan::NestedLoopJoin {
                left: Box::new(left.plan.clone()),
                right: Box::new(right.plan.clone()),
                predicate: join_conjuncts(preds),
            },
            cost,
        );
    }

    let (plan, cost) = best?;
    Some(Cand { plan, est: Estimate::new(out_rows, cost), order: combined })
}

/// Extra equi keys beyond the first become a residual for merge join
/// (single-key merge + filter).
fn merge_join_residual(
    keys: &[(Expr, Expr)],
    residual: Option<Expr>,
    left: &Cand,
    lens: &[usize],
) -> Option<Expr> {
    let mut preds = Vec::new();
    for (l, r) in keys.iter().skip(1) {
        preds.push(Expr::binary(l.clone(), BinOp::Eq, shift_columns(r, left_arity(left, lens))));
    }
    if let Some(r) = residual {
        preds.push(r);
    }
    join_conjuncts(preds)
}

fn left_arity(left: &Cand, lens: &[usize]) -> usize {
    left.order.iter().map(|&t| lens[t]).sum()
}

fn column_ndv(scope_idx: usize, offsets: &[usize], lens: &[usize], stats: &[TableStats]) -> f64 {
    let Some(t) = owner_table(scope_idx, offsets, lens) else { return 1.0 };
    let local = scope_idx - offsets[t];
    stats[t].columns.get(local).map_or(1.0, |c| c.ndv.max(1) as f64)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_dp(
    base: Vec<Cand>,
    equi_edges: &[(usize, usize, usize, usize, Expr)],
    general: &[(u64, Expr)],
    lens: &[usize],
    offsets: &[usize],
    stats: &[TableStats],
    config: &PlannerConfig,
) -> SqlResult<Cand> {
    let n = base.len();
    let full: u64 = (1 << n) - 1;
    let mut dp: Vec<Option<Cand>> = vec![None; 1 << n];
    for (i, c) in base.into_iter().enumerate() {
        dp[1 << i] = Some(c);
    }
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        // Enumerate proper submask splits.
        let mut s1 = (s - 1) & s;
        while s1 > 0 {
            let s2 = s ^ s1;
            if s1 < s2 {
                // Each unordered pair visited once; try both join directions.
                let pair = match (&dp[s1 as usize], &dp[s2 as usize]) {
                    (Some(a), Some(b)) => Some((a.clone(), b.clone())),
                    _ => None,
                };
                if let Some((a, b)) = pair {
                    for (l, r) in [(&a, &b), (&b, &a)] {
                        if let Some(cand) =
                            make_join(l, r, equi_edges, general, lens, offsets, stats, config)
                        {
                            let better = dp[s as usize]
                                .as_ref()
                                .is_none_or(|cur| cand.est.cost < cur.est.cost);
                            if better {
                                dp[s as usize] = Some(cand);
                            }
                        }
                    }
                }
            }
            s1 = (s1 - 1) & s;
        }
    }
    dp[full as usize]
        .take()
        .ok_or_else(|| SqlError::new("internal: join enumeration produced no plan"))
}

#[allow(clippy::too_many_arguments)]
fn enumerate_greedy(
    mut cands: Vec<Cand>,
    equi_edges: &[(usize, usize, usize, usize, Expr)],
    general: &[(u64, Expr)],
    lens: &[usize],
    offsets: &[usize],
    stats: &[TableStats],
    config: &PlannerConfig,
) -> SqlResult<Cand> {
    while cands.len() > 1 {
        let mut best: Option<(usize, usize, Cand)> = None;
        for i in 0..cands.len() {
            for j in 0..cands.len() {
                if i == j {
                    continue;
                }
                if let Some(c) = make_join(
                    &cands[i], &cands[j], equi_edges, general, lens, offsets, stats, config,
                ) {
                    if best.as_ref().is_none_or(|(_, _, b)| c.est.cost < b.est.cost) {
                        best = Some((i, j, c));
                    }
                }
            }
        }
        let (i, j, joined) =
            best.ok_or_else(|| SqlError::new("internal: greedy join found no pair"))?;
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        cands.remove(hi);
        cands.remove(lo);
        cands.push(joined);
    }
    cands.into_iter().next().ok_or_else(|| SqlError::new("internal: no tables to join"))
}

/// Plan a single-table row source with a (table-local bound) predicate —
/// used by UPDATE/DELETE and the overload fast path.
pub fn plan_table_filter(
    table: &Arc<TableInfo>,
    predicate: Option<Expr>,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> PhysicalPlan {
    let stats = table.stats.read().clone();
    let conjuncts = match predicate {
        Some(p) => split_conjuncts(p),
        None => Vec::new(),
    };
    plan_access_path(table, &stats, conjuncts, catalog, config).0
}

/// Convenience used by EXPLAIN tests: is this statement's top note a given
/// operator name?
pub fn plan_summary(plan: &PhysicalPlan) -> String {
    plan.to_string()
}

/// Re-export for the engine: does this statement need the optimizer at all?
pub fn needs_optimizer(stmt: &SelectStmt) -> bool {
    let _ = stmt;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_sql::ast::Statement;
    use staged_sql::binder::{BindContext, Binder};
    use staged_sql::parser::parse_statement;
    use staged_storage::{BufferPool, Column, DataType, MemDisk, Schema, Tuple, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
        let t = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Str),
                    Column::new("v", DataType::Float).nullable(),
                ]),
            )
            .unwrap();
        let u = cat
            .create_table(
                "u",
                Schema::new(vec![Column::new("a", DataType::Int), Column::new("w", DataType::Int)]),
            )
            .unwrap();
        for i in 0..1000i64 {
            t.heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("s{}", i % 13)),
                    Value::Float(i as f64 / 10.0),
                ]))
                .unwrap();
        }
        for i in 0..100i64 {
            u.heap.insert(&Tuple::new(vec![Value::Int(i * 10), Value::Int(i % 7)])).unwrap();
        }
        cat.create_index("t_a", "t", "a").unwrap();
        cat.analyze_table("t").unwrap();
        cat.analyze_table("u").unwrap();
        cat
    }

    fn plan(cat: &Catalog, sql: &str, config: &PlannerConfig) -> PhysicalPlan {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let bound = Binder::new(BindContext::new(cat)).bind_select(sel).unwrap();
        plan_select(&bound, cat, config).unwrap()
    }

    #[test]
    fn selective_equality_uses_index() {
        let cat = setup();
        let p = plan(&cat, "SELECT a FROM t WHERE a = 7", &PlannerConfig::default());
        let s = p.to_string();
        assert!(s.contains("IndexScan"), "expected index scan:\n{s}");
        assert!(s.contains("key=7"), "{s}");
    }

    #[test]
    fn unselective_range_uses_seqscan() {
        let cat = setup();
        let p = plan(&cat, "SELECT a FROM t WHERE a > 10", &PlannerConfig::default());
        let s = p.to_string();
        assert!(s.contains("SeqScan"), "a > 10 matches ~99%:\n{s}");
    }

    #[test]
    fn index_disabled_by_config() {
        let cat = setup();
        let cfg = PlannerConfig { enable_index_scan: false, ..Default::default() };
        let s = plan(&cat, "SELECT a FROM t WHERE a = 7", &cfg).to_string();
        assert!(s.contains("SeqScan"), "{s}");
    }

    #[test]
    fn equijoin_prefers_hash_join() {
        let cat = setup();
        let s =
            plan(&cat, "SELECT * FROM t, u WHERE t.a = u.a", &PlannerConfig::default()).to_string();
        assert!(s.contains("HashJoin"), "{s}");
    }

    #[test]
    fn merge_join_when_hash_disabled() {
        let cat = setup();
        let cfg = PlannerConfig { enable_hash_join: false, ..Default::default() };
        let s = plan(&cat, "SELECT * FROM t, u WHERE t.a = u.a", &cfg).to_string();
        assert!(s.contains("MergeJoin"), "{s}");
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loops() {
        let cat = setup();
        let s =
            plan(&cat, "SELECT * FROM t, u WHERE t.a < u.a", &PlannerConfig::default()).to_string();
        assert!(s.contains("NestedLoopJoin"), "{s}");
    }

    #[test]
    fn single_table_predicates_are_pushed_into_scans() {
        let cat = setup();
        let s = plan(
            &cat,
            "SELECT * FROM t, u WHERE t.a = u.a AND u.w = 3 AND t.b = 'x'",
            &PlannerConfig::default(),
        )
        .to_string();
        // Pushed predicates appear on the scans, not as a top-level filter.
        assert!(s.contains("SeqScan u filter="), "{s}");
        assert!(!s.trim_start().starts_with("Filter"), "{s}");
    }

    #[test]
    fn aggregation_plans_have_aggregate_then_project() {
        let cat = setup();
        let s = plan(
            &cat,
            "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 3",
            &PlannerConfig::default(),
        )
        .to_string();
        assert!(s.contains("HashAggregate"), "{s}");
        assert!(s.contains("Filter"), "HAVING becomes a filter:\n{s}");
        assert!(s.contains("Project"), "{s}");
    }

    #[test]
    fn order_limit_distinct_compose() {
        let cat = setup();
        let s = plan(
            &cat,
            "SELECT DISTINCT b FROM t ORDER BY b DESC LIMIT 3",
            &PlannerConfig::default(),
        )
        .to_string();
        assert!(s.contains("Distinct"), "{s}");
        assert!(s.contains("Sort"), "{s}");
        assert!(s.contains("Limit 3"), "{s}");
    }

    #[test]
    fn plan_arity_matches_output_schema() {
        let cat = setup();
        let p = plan(&cat, "SELECT a, v FROM t WHERE a < 5", &PlannerConfig::default());
        assert_eq!(p.output_arity(), 2);
        let p = plan(&cat, "SELECT * FROM t, u", &PlannerConfig::default());
        assert_eq!(p.output_arity(), 5);
    }

    #[test]
    fn three_way_join_enumeration_covers_all_tables() {
        let cat = setup();
        cat.create_table(
            "w3",
            Schema::new(vec![Column::new("a", DataType::Int), Column::new("z", DataType::Int)]),
        )
        .unwrap();
        cat.analyze_table("w3").unwrap();
        let p = plan(
            &cat,
            "SELECT * FROM t, u, w3 WHERE t.a = u.a AND u.a = w3.a",
            &PlannerConfig::default(),
        );
        let mut tables = p.base_tables();
        tables.sort();
        assert_eq!(tables, vec!["t", "u", "w3"]);
        assert_eq!(p.output_arity(), 7);
    }

    fn setup_partitioned(parts: usize) -> Catalog {
        let cat = Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
        let t = cat
            .create_table_partitioned(
                "p",
                Schema::new(vec![Column::new("k", DataType::Int), Column::new("g", DataType::Int)]),
                parts,
                0,
            )
            .unwrap();
        for i in 0..400i64 {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(i % 5)])).unwrap();
        }
        cat.analyze_table("p").unwrap();
        cat
    }

    #[test]
    fn partitioned_scan_fans_out_under_an_exchange() {
        let cat = setup_partitioned(4);
        let p = plan(&cat, "SELECT k FROM p WHERE g = 2", &PlannerConfig::default());
        let s = p.to_string();
        assert!(s.contains("Exchange x4"), "{s}");
        for i in 0..4 {
            assert!(s.contains(&format!("PartitionScan p[{i}/4]")), "{s}");
        }
    }

    #[test]
    fn pinned_hash_key_prunes_to_one_partition() {
        let cat = setup_partitioned(4);
        let p = plan(&cat, "SELECT * FROM p WHERE k = 37", &PlannerConfig::default());
        let s = p.to_string();
        assert!(!s.contains("Exchange"), "pruned plan needs no exchange:\n{s}");
        assert!(s.contains("PartitionScan"), "{s}");
        // The filter must survive on the pruned scan: hashing is lossy.
        assert!(s.contains("filter="), "{s}");
        let expected = staged_storage::partition_of_value(&Value::Int(37), 4);
        assert!(s.contains(&format!("p[{expected}/4]")), "{s}");
    }

    #[test]
    fn aggregates_over_partitions_split_into_two_phases() {
        let cat = setup_partitioned(4);
        let p = plan(
            &cat,
            "SELECT g, COUNT(*), SUM(k), MIN(k), MAX(k), AVG(k) FROM p GROUP BY g",
            &PlannerConfig::default(),
        );
        let s = p.to_string();
        assert!(s.contains("MergeAggregate"), "{s}");
        // One partial HashAggregate per partition, each with AVG decomposed
        // into SUM + COUNT.
        assert_eq!(s.matches("HashAggregate").count(), 4, "{s}");
        assert_eq!(s.matches("SUM(k)").count(), 4 * 2 + 1, "partials carry avg-sum:\n{s}");
    }

    #[test]
    fn distinct_aggregates_stay_single_phase() {
        let cat = setup_partitioned(4);
        let p = plan(&cat, "SELECT COUNT(DISTINCT g) FROM p", &PlannerConfig::default());
        let s = p.to_string();
        assert!(!s.contains("MergeAggregate"), "{s}");
        assert!(s.contains("HashAggregate"), "{s}");
        assert!(s.contains("Exchange x4"), "union still fans out:\n{s}");
    }

    #[test]
    fn partition_parallel_can_be_disabled() {
        let cat = setup_partitioned(4);
        let cfg = PlannerConfig { enable_partition_parallel: false, ..Default::default() };
        let s = plan(&cat, "SELECT COUNT(*) FROM p", &cfg).to_string();
        assert!(s.contains("SeqScan"), "{s}");
        assert!(!s.contains("Exchange"), "{s}");
    }

    #[test]
    fn plan_table_filter_uses_index_for_point_predicates() {
        let cat = setup();
        let table = cat.table("t").unwrap();
        let Statement::Select(sel) = parse_statement("SELECT * FROM t WHERE a = 3").unwrap() else {
            panic!()
        };
        let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
        let pred = bound.stmt.filter.clone();
        let p = plan_table_filter(&table, pred, &cat, &PlannerConfig::default());
        assert!(p.to_string().contains("IndexScan"), "{p}");
    }
}
