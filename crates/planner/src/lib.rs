//! # staged-planner — the optimizer
//!
//! The optimize stage of the staged DBMS (paper Figure 3: "statistics,
//! create plans, eval plans"). Consumes a bound SELECT from `staged-sql`
//! and produces a [`plan::PhysicalPlan`]:
//!
//! * predicate conjuncts are pushed to the scans they mention;
//! * sargable conjuncts on indexed `INT` columns select index scans when
//!   the estimated selectivity warrants it;
//! * join order is chosen by bitmask dynamic programming over the join
//!   graph (greedy beyond [`planner::DP_TABLE_LIMIT`] tables);
//! * equijoins pick hash or sort-merge join by cost, everything else falls
//!   back to nested loops — the three algorithms the paper assigns to its
//!   `join` stage in Figure 3.
//!
//! [`PlannerConfig`] exposes per-feature switches used by the ablation
//! benches and by tests that need to force a specific operator.

#![deny(missing_docs)]

pub mod estimate;
pub mod plan;
pub mod planner;

pub use estimate::{CostModel, Estimate};
pub use plan::{AggSpec, PhysicalPlan};
pub use planner::{plan_select, plan_table_filter, PlannerConfig};
