//! `dbsh` — the interactive shell for a staged-db network server.
//!
//! Reads commands from `-c` arguments or stdin (one statement per line),
//! sends them over the wire protocol, and pretty-prints result tables.
//!
//! ```sh
//! dbsh --addr 127.0.0.1:5433 -c "SELECT * FROM t"
//! printf 'BEGIN\nINSERT INTO t VALUES (1)\nCOMMIT\n' | dbsh --addr 127.0.0.1:5433
//! ```
//!
//! Shell meta-commands: `\ping`, `\stats`, `\replica` (the replication
//! rows of `\stats`: shipping counters on a primary, apply counters on a
//! replica), `\checkpoint`, `\begin ro` (shorthand for `BEGIN READ ONLY`),
//! `\subscribe TABLE [where PREDICATE]` (stream committed changes until
//! interrupted), `\q` (everything else is sent as SQL). Exit status is 0
//! when every statement succeeded, 1 otherwise.

use staged_dbclient::{Client, ClientError};
use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

const USAGE: &str = "usage: dbsh [--addr HOST:PORT] [-c STATEMENT]...
  --addr HOST:PORT   server address (default 127.0.0.1:5433)
  -c STATEMENT       run one statement and continue; repeatable.
                     Without -c, statements are read from stdin.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:5433".to_string();
    let mut commands: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or_else(|| die(USAGE));
            }
            "-c" => {
                i += 1;
                commands.push(args.get(i).cloned().unwrap_or_else(|| die(USAGE)));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument {other}\n{USAGE}")),
        }
        i += 1;
    }

    let mut client = match Client::connect_timeout(&addr, Duration::from_secs(5)) {
        Ok(c) => c,
        Err(e) => die(&format!("dbsh: cannot connect to {addr}: {e}")),
    };
    let interactive = commands.is_empty() && std::io::stdin().is_terminal();
    if interactive {
        println!("connected to {addr} ({})", client.server_greeting());
    }

    let mut failed = false;
    let run = |client: &mut Client, line: &str, failed: &mut bool| -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            return true;
        }
        match line {
            "\\q" | "\\quit" => return false,
            "\\ping" => match client.ping() {
                Ok(()) => println!("PONG"),
                Err(e) => {
                    *failed = true;
                    eprintln!("error: {e}");
                }
            },
            "\\stats" => print_result(client.stats(), failed),
            "\\replica" => print_result(
                client.stats().map(|mut out| {
                    out.rows
                        .retain(|r| r.first().and_then(|c| c.as_deref()) == Some("replication"));
                    out.tag = format!("SELECT {}", out.rows.len());
                    out
                }),
                failed,
            ),
            "\\checkpoint" => print_result(client.checkpoint(), failed),
            "\\begin ro" => print_result(client.begin_read_only(), failed),
            cmd if cmd == "\\subscribe" || cmd.starts_with("\\subscribe ") => {
                run_subscribe(client, cmd["\\subscribe".len()..].trim(), failed)
            }
            sql => print_result(client.query(sql.trim_end_matches(';')), failed),
        }
        true
    };

    if commands.is_empty() {
        let stdin = std::io::stdin();
        let mut lines = stdin.lock().lines();
        loop {
            if interactive {
                print!("dbsh> ");
                let _ = std::io::stdout().flush();
            }
            let Some(Ok(line)) = lines.next() else { break };
            if !run(&mut client, &line, &mut failed) {
                break;
            }
        }
    } else {
        for cmd in &commands {
            if !run(&mut client, cmd, &mut failed) {
                break;
            }
        }
    }

    let _ = client.quit();
    std::process::exit(if failed { 1 } else { 0 });
}

/// `\subscribe TABLE [where PREDICATE]`: stream committed changes to the
/// terminal, one per line, until the server closes the feed or the user
/// interrupts the shell. `^C` simply drops the connection — the server
/// releases the subscription on disconnect.
fn run_subscribe(client: &mut Client, rest: &str, failed: &mut bool) {
    let (table, predicate) = match rest.split_once(char::is_whitespace) {
        Some((table, tail)) => {
            let tail = tail.trim();
            let Some(pred) = tail.strip_prefix("where ").or_else(|| tail.strip_prefix("WHERE "))
            else {
                *failed = true;
                eprintln!("usage: \\subscribe TABLE [where PREDICATE]");
                return;
            };
            (table, Some(pred.trim()))
        }
        None if rest.is_empty() => {
            *failed = true;
            eprintln!("usage: \\subscribe TABLE [where PREDICATE]");
            return;
        }
        None => (rest, None),
    };
    let sub = match client.subscribe(table, predicate) {
        Ok(sub) => sub,
        Err(e) => {
            *failed = true;
            println!("error: {e}");
            return;
        }
    };
    println!("subscribed to {table}; streaming changes (^C to stop)");
    for change in sub {
        match change {
            Ok(c) => {
                let sign = match c.op {
                    staged_wire::ChangeOp::Insert => '+',
                    staged_wire::ChangeOp::Delete => '-',
                };
                let fields: Vec<String> = c
                    .fields
                    .iter()
                    .map(|f| f.clone().unwrap_or_else(|| "NULL".to_string()))
                    .collect();
                println!("{sign} {} ({})", c.table, fields.join(", "));
            }
            Err(e) => {
                *failed = true;
                eprintln!("fatal: {e}");
                return;
            }
        }
    }
    println!("feed closed by server");
}

fn print_result(res: Result<staged_dbclient::QueryResult, ClientError>, failed: &mut bool) {
    match res {
        Ok(out) => print!("{}", out.render()),
        Err(e @ ClientError::Server { .. }) => {
            *failed = true;
            println!("error: {e}");
        }
        Err(e) => {
            *failed = true;
            eprintln!("fatal: {e}");
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
