//! # staged-dbclient — a TCP client for the staged database
//!
//! A small, dependency-light client library for the wire protocol of
//! `PROTOCOL.md` (served by `staged-server::net`), plus the `dbsh` shell
//! built on it. The client is deliberately synchronous — one request, one
//! response — matching the protocol's strict request/response framing.
//!
//! ```no_run
//! use staged_dbclient::Client;
//!
//! let mut db = Client::connect("127.0.0.1:5433").unwrap();
//! db.query("CREATE TABLE kv (k INT, v VARCHAR(16))").unwrap();
//! db.query("INSERT INTO kv VALUES (1, 'one')").unwrap();
//! let out = db.query("SELECT v FROM kv WHERE k = 1").unwrap();
//! assert_eq!(out.rows[0][0].as_deref(), Some("one"));
//! ```

#![deny(missing_docs)]

use staged_wire as wire;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failed (connect, read, write).
    Io(std::io::Error),
    /// The server broke the wire protocol (or speaks a different version).
    Protocol(String),
    /// The server answered `ERR <code> <message>`.
    Server {
        /// Stable machine-readable code (branch on this).
        code: wire::ErrorCode,
        /// Human-readable detail (display this).
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "{code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A decoded result set: column descriptors, rows (fields are `None` for
/// SQL NULL), and the completion tag (`SELECT 3`, `INSERT 1`, `BEGIN`, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryResult {
    /// `(name, type)` per column; empty for message-only responses.
    pub columns: Vec<(String, String)>,
    /// Decoded rows; `None` is SQL NULL.
    pub rows: Vec<Vec<Option<String>>>,
    /// The completion tag from the `OK` line.
    pub tag: String,
}

impl QueryResult {
    /// Render as an aligned ASCII table (what `dbsh` prints). Message-only
    /// results render as just the tag.
    pub fn render(&self) -> String {
        if self.columns.is_empty() {
            return format!("{}\n", self.tag);
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|(n, _)| n.len()).collect();
        let cell = |v: &Option<String>| v.clone().unwrap_or_else(|| "NULL".into());
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell(v).len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, (n, _))| format!("{n:<w$}", w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&rule.join("-+-"));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{:<w$}", cell(v), w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out.push_str(&format!("{}\n", self.tag));
        out
    }
}

/// A connection to a staged-db network front end.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    server_greeting: String,
}

impl Client {
    /// Connect and validate the server's `HELLO` greeting (protocol
    /// version must match [`staged_wire::PROTOCOL_VERSION`]).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Like [`connect`](Self::connect) with a connect timeout (applied to
    /// each resolved address in turn until one succeeds). The timeout also
    /// covers the `HELLO` greeting read: a TCP handshake can succeed
    /// against a server that will never serve the socket (accept-queue
    /// overflow drops it silently), and without a deadline on the greeting
    /// such a connection hangs forever instead of erroring.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> ClientResult<Self> {
        let mut last: Option<std::io::Error> = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(timeout));
                    return Self::from_stream(stream).inspect(|client| {
                        let _ = client.reader.get_ref().set_read_timeout(None);
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
        })))
    }

    fn from_stream(stream: TcpStream) -> ClientResult<Self> {
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client =
            Client { reader: BufReader::new(stream), writer, server_greeting: String::new() };
        let hello = client.read_line()?;
        let mut parts = hello.split_whitespace();
        if parts.next() != Some("HELLO") {
            return Err(ClientError::Protocol(format!("expected HELLO, got {hello:?}")));
        }
        match parts.next().and_then(|v| v.parse::<u32>().ok()) {
            Some(v) if v == wire::PROTOCOL_VERSION => {}
            other => {
                return Err(ClientError::Protocol(format!(
                    "unsupported protocol version {other:?} (client speaks {})",
                    wire::PROTOCOL_VERSION
                )))
            }
        }
        client.server_greeting = hello;
        Ok(client)
    }

    /// The raw `HELLO` line the server greeted with.
    pub fn server_greeting(&self) -> &str {
        &self.server_greeting
    }

    /// Liveness probe: `PING` → `PONG`. Does not enter the SQL pipeline.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.send_line("PING")?;
        let line = self.read_line()?;
        match line.as_str() {
            "PONG" => Ok(()),
            other => Err(Self::unexpected("PONG", other)),
        }
    }

    /// Run one SQL statement. The wire protocol is line-framed, so SQL
    /// containing a newline is rejected client-side before anything is
    /// sent (flatten statements to one line first).
    pub fn query(&mut self, sql: &str) -> ClientResult<QueryResult> {
        if sql.contains('\n') || sql.contains('\r') {
            return Err(ClientError::Protocol(
                "statement contains a newline; the wire protocol is line-framed".into(),
            ));
        }
        self.send_line(&format!("QUERY {sql}"))?;
        self.read_result()
    }

    /// `BEGIN` a transaction on this connection's session.
    pub fn begin(&mut self) -> ClientResult<QueryResult> {
        self.query("BEGIN")
    }

    /// `BEGIN READ ONLY`: open a snapshot transaction on this connection's
    /// session. Every statement until `COMMIT`/`ROLLBACK` reads the same
    /// consistent snapshot without taking locks; DML is refused with the
    /// `READ_ONLY` error code.
    pub fn begin_read_only(&mut self) -> ClientResult<QueryResult> {
        self.query("BEGIN READ ONLY")
    }

    /// `COMMIT` the open transaction.
    pub fn commit(&mut self) -> ClientResult<QueryResult> {
        self.query("COMMIT")
    }

    /// `ROLLBACK` the open transaction (also clears the aborted state).
    pub fn rollback(&mut self) -> ClientResult<QueryResult> {
        self.query("ROLLBACK")
    }

    /// Fetch the server's per-stage monitor snapshot (`STATS`).
    pub fn stats(&mut self) -> ClientResult<QueryResult> {
        self.send_line("STATS")?;
        self.read_result()
    }

    /// Ask the server to checkpoint (`CHECKPOINT`): quiesce writers,
    /// snapshot the database, truncate the WAL below the snapshot's LSN.
    /// Blocks until the server's checkpoint stage finishes; the result's
    /// message starts with `CHECKPOINT` on success.
    pub fn checkpoint(&mut self) -> ClientResult<QueryResult> {
        self.send_line("CHECKPOINT")?;
        self.read_result()
    }

    /// Open a `SUBSCRIBE` change feed on this connection: every
    /// transaction committing to `table` after this call streams back as
    /// `CHANGE` lines, whole transactions at a time, in commit order,
    /// optionally filtered by a `WHERE` predicate (source text, without
    /// the keyword). The connection leaves request/response mode until
    /// [`Subscription::unsubscribe`] — drop the subscription (or the
    /// client) to just hang up instead; the server releases the feed
    /// either way (PROTOCOL.md §8).
    pub fn subscribe(
        &mut self,
        table: &str,
        predicate: Option<&str>,
    ) -> ClientResult<Subscription<'_>> {
        let cmd = match predicate {
            Some(p) => format!("SUBSCRIBE {table} WHERE {p}"),
            None => format!("SUBSCRIBE {table}"),
        };
        self.send_line(&cmd)?;
        let line = self.read_line()?;
        match line.strip_prefix("OK ") {
            Some(_) => Ok(Subscription { client: self }),
            None => Err(Self::unexpected("OK SUBSCRIBE", &line)),
        }
    }

    /// Orderly goodbye: `QUIT` → `BYE`, then the connection closes.
    pub fn quit(mut self) -> ClientResult<()> {
        self.send_line("QUIT")?;
        let line = self.read_line()?;
        match line.as_str() {
            "BYE" => Ok(()),
            other => Err(Self::unexpected("BYE", other)),
        }
    }

    /// An off-script line: an `ERR` becomes a typed server error (the
    /// server may refuse any command, e.g. `OVERLOADED` at admission),
    /// anything else is a protocol violation.
    fn unexpected(wanted: &str, line: &str) -> ClientError {
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = match rest.find(' ') {
                Some(i) => (&rest[..i], wire::unescape_message(&rest[i + 1..])),
                None => (rest, String::new()),
            };
            if let Some(code) = wire::ErrorCode::parse(code) {
                return ClientError::Server { code, message };
            }
        }
        ClientError::Protocol(format!("expected {wanted}, got {line:?}"))
    }

    fn send_line(&mut self, line: &str) -> ClientResult<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> ClientResult<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read one result block: optional `META` + `ROW`* then `OK`, or `ERR`.
    fn read_result(&mut self) -> ClientResult<QueryResult> {
        let mut result = QueryResult::default();
        loop {
            let line = self.read_line()?;
            let (tag, rest) = match line.find(' ') {
                Some(i) => (&line[..i], &line[i + 1..]),
                None => (line.as_str(), ""),
            };
            match tag {
                "META" => {
                    let mut parts = rest.split_whitespace();
                    let n: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ClientError::Protocol(format!("bad META line {line:?}")))?;
                    for col in parts {
                        let (name, ty) = col.split_once(':').ok_or_else(|| {
                            ClientError::Protocol(format!("bad column descriptor {col:?}"))
                        })?;
                        result.columns.push((name.to_string(), ty.to_string()));
                    }
                    if result.columns.len() != n {
                        return Err(ClientError::Protocol(format!(
                            "META announced {n} columns, listed {}",
                            result.columns.len()
                        )));
                    }
                }
                "ROW" => {
                    let mut row = Vec::with_capacity(result.columns.len());
                    for field in rest.split('\t') {
                        if field == wire::NULL_FIELD {
                            row.push(None);
                        } else {
                            row.push(Some(
                                wire::unescape_field(field).map_err(ClientError::Protocol)?,
                            ));
                        }
                    }
                    if !result.columns.is_empty() && row.len() != result.columns.len() {
                        return Err(ClientError::Protocol(format!(
                            "ROW has {} fields, META announced {}",
                            row.len(),
                            result.columns.len()
                        )));
                    }
                    result.rows.push(row);
                }
                "OK" => {
                    result.tag = wire::unescape_message(rest);
                    return Ok(result);
                }
                "ERR" => {
                    let (code, message) = match rest.find(' ') {
                        Some(i) => (&rest[..i], wire::unescape_message(&rest[i + 1..])),
                        None => (rest, String::new()),
                    };
                    let code = wire::ErrorCode::parse(code).ok_or_else(|| {
                        ClientError::Protocol(format!("unknown error code {code:?}"))
                    })?;
                    return Err(ClientError::Server { code, message });
                }
                other => {
                    return Err(ClientError::Protocol(format!("unexpected response tag {other:?}")))
                }
            }
        }
    }
}

/// A live `SUBSCRIBE` change feed: a streaming iterator over committed
/// changes. Borrows the client mutably — the underlying connection speaks
/// only the feed until [`unsubscribe`](Self::unsubscribe) returns it to
/// request/response use.
pub struct Subscription<'a> {
    client: &'a mut Client,
}

impl Subscription<'_> {
    /// Block until the next committed change arrives.
    pub fn next_change(&mut self) -> ClientResult<wire::Change> {
        let line = self.client.read_line()?;
        if line.starts_with("CHANGE ") {
            wire::parse_change(&line).map_err(ClientError::Protocol)
        } else {
            Err(Client::unexpected("CHANGE", &line))
        }
    }

    /// End the feed: send `UNSUBSCRIBE`, collect the changes that were
    /// already queued server-side (every transaction committed before the
    /// unsubscribe is delivered), and stop at the closing `OK`. The
    /// connection is back in request/response mode afterwards.
    pub fn unsubscribe(self) -> ClientResult<Vec<wire::Change>> {
        self.client.send_line("UNSUBSCRIBE")?;
        let mut tail = Vec::new();
        loop {
            let line = self.client.read_line()?;
            if line.starts_with("CHANGE ") {
                tail.push(wire::parse_change(&line).map_err(ClientError::Protocol)?);
            } else if line.starts_with("OK ") {
                return Ok(tail);
            } else {
                return Err(Client::unexpected("OK UNSUBSCRIBE", &line));
            }
        }
    }
}

impl Iterator for Subscription<'_> {
    type Item = ClientResult<wire::Change>;

    /// Blocking stream of changes; ends (`None`) when the server closes
    /// the feed — eviction of a subscriber that stopped reading, or
    /// server shutdown.
    fn next(&mut self) -> Option<Self::Item> {
        match self.next_change() {
            Ok(c) => Some(Ok(c)),
            Err(ClientError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_message_only() {
        let r = QueryResult { tag: "BEGIN".into(), ..Default::default() };
        assert_eq!(r.render(), "BEGIN\n");
    }

    #[test]
    fn render_aligns_columns() {
        let r = QueryResult {
            columns: vec![("k".into(), "INT".into()), ("value".into(), "VARCHAR".into())],
            rows: vec![vec![Some("1".into()), Some("one".into())], vec![Some("10".into()), None]],
            tag: "SELECT 2".into(),
        };
        let text = r.render();
        assert!(text.contains("k  | value"));
        assert!(text.contains("10 | NULL"));
        assert!(text.ends_with("SELECT 2\n"));
    }
}
