//! Memory-reference classification (paper **Table 1**).
//!
//! The paper classifies the data and code a database server touches into
//! three commonality classes:
//!
//! | class   | data                                        | code |
//! |---------|---------------------------------------------|------|
//! | private | query execution plan, client state, results | —    |
//! | shared  | tables, indices                             | operator-specific code |
//! | common  | catalog, symbol table                       | rest of DBMS code |
//!
//! Instrumented components ([`RefTracker::record`]) report each logical
//! reference with its class and kind; the `repro_tab1` binary prints the
//! measured table. "Code" references are proxied by module-entry counts
//! (instruction fetch cannot be observed from safe Rust).

use std::sync::atomic::{AtomicU64, Ordering};

/// Commonality class of a reference (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum RefClass {
    /// Exclusive to a specific query instance.
    Private,
    /// Accessible by any query, different queries touch different parts.
    Shared,
    /// Accessed by the majority of queries.
    Common,
}

impl RefClass {
    /// All classes, in Table-1 order.
    pub const ALL: [RefClass; 3] = [RefClass::Private, RefClass::Shared, RefClass::Common];

    /// Lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            RefClass::Private => "private",
            RefClass::Shared => "shared",
            RefClass::Common => "common",
        }
    }
}

/// Kind of reference (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum RefKind {
    /// Data structure access.
    Data,
    /// Code (module entry) — proxied, see module docs.
    Code,
}

impl RefKind {
    /// Both kinds, in Table-1 order.
    pub const ALL: [RefKind; 2] = [RefKind::Data, RefKind::Code];
}

const CLASSES: usize = 3;
const KINDS: usize = 2;

fn idx(class: RefClass, kind: RefKind) -> usize {
    let c = match class {
        RefClass::Private => 0,
        RefClass::Shared => 1,
        RefClass::Common => 2,
    };
    let k = match kind {
        RefKind::Data => 0,
        RefKind::Code => 1,
    };
    c * KINDS + k
}

/// Thread-safe reference counter matrix.
#[derive(Debug, Default)]
pub struct RefTracker {
    counts: [AtomicU64; CLASSES * KINDS],
    bytes: [AtomicU64; CLASSES * KINDS],
}

impl RefTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one logical reference of `len` bytes.
    pub fn record(&self, class: RefClass, kind: RefKind, len: u64) {
        let i = idx(class, kind);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.bytes[i].fetch_add(len, Ordering::Relaxed);
    }

    /// Number of references recorded for a cell.
    pub fn count(&self, class: RefClass, kind: RefKind) -> u64 {
        self.counts[idx(class, kind)].load(Ordering::Relaxed)
    }

    /// Bytes recorded for a cell.
    pub fn bytes(&self, class: RefClass, kind: RefKind) -> u64 {
        self.bytes[idx(class, kind)].load(Ordering::Relaxed)
    }

    /// Immutable snapshot (for printing / assertions).
    pub fn snapshot(&self) -> RefTable {
        let mut rows = Vec::new();
        for class in RefClass::ALL {
            for kind in RefKind::ALL {
                rows.push(RefRow {
                    class,
                    kind,
                    count: self.count(class, kind),
                    bytes: self.bytes(class, kind),
                });
            }
        }
        RefTable { rows }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for b in &self.bytes {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One cell of the measured Table 1.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct RefRow {
    /// Commonality class.
    pub class: RefClass,
    /// Data or code.
    pub kind: RefKind,
    /// References recorded.
    pub count: u64,
    /// Bytes recorded.
    pub bytes: u64,
}

/// Snapshot of a [`RefTracker`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct RefTable {
    /// Six cells (3 classes × 2 kinds) in Table-1 order.
    pub rows: Vec<RefRow>,
}

impl RefTable {
    /// Total reference count.
    pub fn total(&self) -> u64 {
        self.rows.iter().map(|r| r.count).sum()
    }

    /// Fraction of references in a class (over both kinds).
    pub fn class_fraction(&self, class: RefClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let c: u64 = self.rows.iter().filter(|r| r.class == class).map(|r| r.count).sum();
        c as f64 / total as f64
    }
}

impl std::fmt::Display for RefTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            "class", "data refs", "data bytes", "code refs", "code bytes"
        )?;
        for class in RefClass::ALL {
            let data = self.rows.iter().find(|r| r.class == class && r.kind == RefKind::Data);
            let code = self.rows.iter().find(|r| r.class == class && r.kind == RefKind::Code);
            writeln!(
                f,
                "{:<10} {:>14} {:>14} {:>14} {:>14}",
                class.label().to_uppercase(),
                data.map_or(0, |r| r.count),
                data.map_or(0, |r| r.bytes),
                code.map_or(0, |r| r.count),
                code.map_or(0, |r| r.bytes),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_cell() {
        let t = RefTracker::new();
        t.record(RefClass::Private, RefKind::Data, 8);
        t.record(RefClass::Private, RefKind::Data, 8);
        t.record(RefClass::Common, RefKind::Code, 64);
        assert_eq!(t.count(RefClass::Private, RefKind::Data), 2);
        assert_eq!(t.bytes(RefClass::Private, RefKind::Data), 16);
        assert_eq!(t.count(RefClass::Common, RefKind::Code), 1);
        assert_eq!(t.count(RefClass::Shared, RefKind::Data), 0);
    }

    #[test]
    fn snapshot_has_all_six_cells_and_fractions_sum_to_one() {
        let t = RefTracker::new();
        t.record(RefClass::Private, RefKind::Data, 1);
        t.record(RefClass::Shared, RefKind::Data, 1);
        t.record(RefClass::Common, RefKind::Data, 1);
        t.record(RefClass::Common, RefKind::Code, 1);
        let s = t.snapshot();
        assert_eq!(s.rows.len(), 6);
        let sum: f64 = RefClass::ALL.iter().map(|&c| s.class_fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = RefTracker::new();
        t.record(RefClass::Shared, RefKind::Code, 100);
        t.reset();
        assert_eq!(t.snapshot().total(), 0);
    }

    #[test]
    fn display_renders_table_header_and_rows() {
        let t = RefTracker::new();
        t.record(RefClass::Common, RefKind::Data, 4);
        let rendered = format!("{}", t.snapshot());
        assert!(rendered.contains("PRIVATE"));
        assert!(rendered.contains("SHARED"));
        assert!(rendered.contains("COMMON"));
    }
}
