//! # staged-cachesim — software cache models
//!
//! The paper's experiments ran on a Pentium III and measured real cache
//! behaviour; that is neither portable nor reproducible in CI, so this crate
//! provides deterministic substitutes (see DESIGN.md §4, substitution 2):
//!
//! * [`CacheSim`] — a set-associative, LRU, line-granular cache simulator
//!   over a synthetic address space ([`AddressSpace`], [`Region`]). The SQL
//!   parser and the execution engine *touch* their working sets through a
//!   [`CacheProbe`], so cache hits and misses come from real control flow
//!   (real symbol-table lookups, real page accesses); only the cache itself
//!   is simulated. Used for the §3.1.3 parse-affinity experiment.
//! * [`ModuleCache`] — the paper's own coarse model from §4.2: the cache
//!   holds exactly one module's common working set; switching modules costs
//!   that module's load time `l_i`.
//! * [`tracker::RefTracker`] — classifies memory references into the
//!   private / shared / common × data / code taxonomy of **Table 1**.

#![deny(missing_docs)]

pub mod tracker;

use parking_lot::Mutex;

/// Configuration of a [`CacheSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A cache resembling the Pentium III's 16 KiB 4-way L1D.
    pub fn l1_like() -> Self {
        Self { capacity: 16 * 1024, line: 32, ways: 4 }
    }

    /// A cache resembling the Pentium III's 256 KiB 8-way L2.
    pub fn l2_like() -> Self {
        Self { capacity: 256 * 1024, line: 32, ways: 8 }
    }

    fn num_sets(&self) -> usize {
        (self.capacity / (self.line * self.ways)).max(1)
    }
}

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative LRU cache simulator.
///
/// Tags are kept per set in most-recently-used order; an access promotes the
/// line, a miss inserts it and evicts the LRU line if the set is full.
#[derive(Debug, Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Create an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways >= 1);
        let sets = vec![Vec::with_capacity(cfg.ways); cfg.num_sets()];
        Self { cfg, sets, stats: CacheStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access one address; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.cfg.line as u64;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            // Promote to MRU (front).
            let t = set.remove(pos);
            set.insert(0, t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.cfg.ways {
                set.pop();
            }
            set.insert(0, line_addr);
            self.stats.misses += 1;
            false
        }
    }

    /// Touch every line of `[base, base+len)`; returns `(hits, misses)`.
    pub fn touch_range(&mut self, base: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let line = self.cfg.line as u64;
        let first = base / line;
        let last = (base + len - 1) / line;
        let mut hits = 0;
        let mut misses = 0;
        for l in first..=last {
            if self.access(l * line) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        (hits, misses)
    }

    /// Evict everything (keeps counters).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// A named range of the synthetic address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// An empty region (touching it is a no-op).
    pub const EMPTY: Region = Region { base: 0, len: 0 };
}

/// Bump allocator for synthetic address regions. Regions never overlap and
/// are page-aligned so distinct components never share cache lines.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Create a fresh address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` bytes.
    pub fn alloc(&mut self, len: u64) -> Region {
        const ALIGN: u64 = 4096;
        let base = self.next;
        self.next += len.div_ceil(ALIGN) * ALIGN;
        Region { base, len }
    }
}

/// Hook through which instrumented components report the memory they touch.
///
/// Real code paths (the parser's symbol-table lookups, operator inner loops)
/// call this as they run; implementations either ignore the information
/// ([`NullProbe`]) or replay it against a [`CacheSim`] ([`SimProbe`]).
pub trait CacheProbe: Send + Sync {
    /// Touch `len` bytes starting `offset` bytes into `region`.
    fn touch(&self, region: Region, offset: u64, len: u64);
}

/// Probe that ignores all touches (zero-cost default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl CacheProbe for NullProbe {
    fn touch(&self, _region: Region, _offset: u64, _len: u64) {}
}

/// Probe that drives a [`CacheSim`] and accumulates a virtual access cost.
pub struct SimProbe {
    cache: Mutex<CacheSim>,
    /// Virtual cost of a hit, seconds.
    pub hit_cost: f64,
    /// Virtual cost of a miss, seconds.
    pub miss_cost: f64,
    cost: Mutex<f64>,
}

impl SimProbe {
    /// Wrap a cache with the given per-access costs.
    pub fn new(cache: CacheSim, hit_cost: f64, miss_cost: f64) -> Self {
        Self { cache: Mutex::new(cache), hit_cost, miss_cost, cost: Mutex::new(0.0) }
    }

    /// Accumulated virtual time.
    pub fn cost(&self) -> f64 {
        *self.cost.lock()
    }

    /// Reset the accumulated virtual time (cache contents persist).
    pub fn reset_cost(&self) {
        *self.cost.lock() = 0.0;
    }

    /// Evict the cache (e.g. to model unrelated intervening work).
    pub fn flush(&self) {
        self.cache.lock().flush();
    }

    /// Counters of the underlying cache.
    pub fn stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }
}

impl CacheProbe for SimProbe {
    fn touch(&self, region: Region, offset: u64, len: u64) {
        if region.len == 0 || len == 0 {
            return;
        }
        let offset = offset % region.len; // wrap within the region
        let len = len.min(region.len - offset).max(1);
        let (h, m) = self.cache.lock().touch_range(region.base + offset, len);
        *self.cost.lock() += h as f64 * self.hit_cost + m as f64 * self.miss_cost;
    }
}

/// The paper's coarse cache model (§4.2): the cache holds exactly one
/// module's common working set; "a total eviction of that set takes place
/// when the CPU switches to a different module".
#[derive(Debug, Default, Clone)]
pub struct ModuleCache {
    current: Option<usize>,
}

impl ModuleCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch to `module`; returns the load time charged (`load_time` on a
    /// switch, `0.0` when the module is already resident).
    pub fn switch(&mut self, module: usize, load_time: f64) -> f64 {
        if self.current == Some(module) {
            0.0
        } else {
            self.current = Some(module);
            load_time
        }
    }

    /// The resident module, if any.
    pub fn resident(&self) -> Option<usize> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = CacheSim::new(CacheConfig { capacity: 1024, line: 32, ways: 2 });
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same line
        assert!(!c.access(32)); // next line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        // 2-way, 1 set: capacity 64, line 32 → 1 set of 2 ways.
        let mut c = CacheSim::new(CacheConfig { capacity: 64, line: 32, ways: 2 });
        c.access(0);
        c.access(32);
        c.access(0); // promote line 0
        c.access(64); // evicts line 32 (LRU)
        assert!(c.access(0), "line 0 should still be resident");
        assert!(!c.access(32), "line 32 was evicted");
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let cfg = CacheConfig { capacity: 4096, line: 32, ways: 4 };
        let mut c = CacheSim::new(cfg);
        c.touch_range(0, 2048);
        c.reset_stats();
        let (h, m) = c.touch_range(0, 2048);
        assert_eq!(m, 0);
        assert_eq!(h, 2048 / 32);
    }

    #[test]
    fn cyclic_scan_larger_than_capacity_never_hits_with_lru() {
        let cfg = CacheConfig { capacity: 1024, line: 32, ways: 32 }; // fully assoc., 1 set
        let mut c = CacheSim::new(cfg);
        for _ in 0..3 {
            c.touch_range(0, 2048); // 2× capacity, round robin defeats LRU
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn flush_forces_misses() {
        let mut c = CacheSim::new(CacheConfig::l1_like());
        c.touch_range(0, 1024);
        c.flush();
        c.reset_stats();
        let (h, m) = c.touch_range(0, 1024);
        assert_eq!(h, 0);
        assert!(m > 0);
    }

    #[test]
    fn address_space_regions_do_not_overlap() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(5000);
        let r3 = a.alloc(1);
        assert!(r1.base + r1.len <= r2.base);
        assert!(r2.base + r2.len <= r3.base);
    }

    #[test]
    fn sim_probe_accumulates_cost_and_benefits_from_warm_cache() {
        let mut space = AddressSpace::new();
        let region = space.alloc(4096);
        let probe = SimProbe::new(CacheSim::new(CacheConfig::l1_like()), 1e-9, 1e-7);
        probe.touch(region, 0, 4096);
        let cold = probe.cost();
        probe.reset_cost();
        probe.touch(region, 0, 4096);
        let warm = probe.cost();
        assert!(warm < cold / 10.0, "warm={warm} cold={cold}");
    }

    #[test]
    fn module_cache_charges_on_switch_only() {
        let mut mc = ModuleCache::new();
        assert_eq!(mc.switch(0, 1.5), 1.5);
        assert_eq!(mc.switch(0, 1.5), 0.0);
        assert_eq!(mc.switch(1, 2.0), 2.0);
        assert_eq!(mc.resident(), Some(1));
    }
}
