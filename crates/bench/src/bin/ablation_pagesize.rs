//! Ablation A2 (paper §4.4c): "the page size for exchanging intermediate
//! results among the execution engine stages … affects the time a stage
//! spends working on a query before it switches to a different one."
//!
//! Runs the same join on the staged engine with varying exchange-page
//! capacities and reports wall-clock time.

use staged_bench::mem_catalog;
use staged_engine::context::ExecContext;
use staged_engine::staged::{EngineConfig, StagedEngine};
use staged_planner::{plan_select, PlannerConfig};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_workload::load_wisconsin_table;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let catalog = mem_catalog(4096);
    load_wisconsin_table(&catalog, "ta", 20_000, 1).unwrap();
    load_wisconsin_table(&catalog, "tb", 20_000, 2).unwrap();
    let sql = "SELECT ta.ten, COUNT(*) FROM ta, tb WHERE ta.unique1 = tb.unique1 GROUP BY ta.ten";
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
    let bound = Binder::new(BindContext::new(&catalog)).bind_select(sel).unwrap();
    let plan = plan_select(&bound, &catalog, &PlannerConfig::default()).unwrap();
    let ctx = ExecContext::new(Arc::clone(&catalog));

    println!("staged join, 20k ⋈ 20k rows, exchange page size sweep");
    println!("{:>12} {:>12} {:>10}", "tuples/page", "time (ms)", "rows");
    for cap in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let cfg = EngineConfig { batch_capacity: cap, ..Default::default() };
        let engine = StagedEngine::new(ctx.clone(), cfg);
        // Warm once, measure three runs.
        engine.execute(&plan).collect().unwrap();
        let start = Instant::now();
        let mut rows = 0;
        for _ in 0..3 {
            rows = engine.execute(&plan).collect().unwrap().len();
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / 3.0;
        engine.shutdown();
        println!("{cap:>12} {ms:>12.2} {rows:>10}");
    }
    println!(
        "\nExpected: tiny pages drown in queueing/hand-off overhead; very large pages\n\
         lose pipelining (a stage must fill a whole page before its parent runs);\n\
         the sweet spot sits in the hundreds of tuples, which is the engine default."
    );
}
