//! Ablation A2 (paper §4.4c): "the page size for exchanging intermediate
//! results among the execution engine stages … affects the time a stage
//! spends working on a query before it switches to a different one."
//!
//! Since the batch-first dataflow refactor the page size is a *run-time*
//! knob ([`StagedEngine::set_page_size`]), exactly like the pipeline
//! cohort bound: the sweep below retunes **one live engine** between
//! cells instead of rebuilding the stage set, which is also how the
//! autotuner steers the knob in production (`staged_core::tune`,
//! `PageKnob`). Two query shapes are swept — the hash join whose probe
//! stream dominates exchange traffic, and a scan-heavy two-phase
//! aggregate over 4 partitions (the `perf_trajectory` headline shape) —
//! and each cell reports wall-clock time and speedup over the
//! one-tuple-per-page degenerate cell, which reproduces the pre-batch
//! per-tuple exchange semantics.
//!
//! Pass `quick` for the CI smoke run (smaller tables, fewer reps).

use staged_bench::mem_catalog;
use staged_engine::context::ExecContext;
use staged_engine::staged::{EngineConfig, StagedEngine};
use staged_planner::{plan_select, PhysicalPlan, PlannerConfig};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_storage::Catalog;
use staged_workload::{load_wisconsin_table, load_wisconsin_table_partitioned};
use std::sync::Arc;
use std::time::Instant;

const PAGES: [usize; 7] = [1, 4, 16, 64, 256, 1024, 4096];

fn plan(catalog: &Arc<Catalog>, sql: &str) -> PhysicalPlan {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!("not a select") };
    let bound = Binder::new(BindContext::new(catalog)).bind_select(sel).unwrap();
    plan_select(&bound, catalog, &PlannerConfig::default()).unwrap()
}

/// Sweep the live page-size knob over one engine, best-of-`reps` per cell.
fn sweep(label: &str, engine: &Arc<StagedEngine>, plan: &PhysicalPlan, expect: usize, reps: usize) {
    println!("\n{label}");
    println!("{:>12} {:>12} {:>10} {:>10}", "tuples/page", "time (ms)", "speedup", "rows");
    // Warm once at the default so every cell starts from hot caches.
    engine.execute(plan).collect().unwrap();
    let mut base = f64::MIN;
    for page in PAGES {
        engine.set_page_size(page);
        let mut best = f64::MAX;
        let mut rows = 0;
        for _ in 0..reps {
            let start = Instant::now();
            rows = engine.execute(plan).collect().unwrap().len();
            best = best.min(start.elapsed().as_secs_f64() * 1000.0);
        }
        assert_eq!(rows, expect, "page {page} changed the result set");
        if page == 1 {
            base = best;
        }
        println!("{page:>12} {best:>12.2} {:>9.2}x {rows:>10}", base / best);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let rows = if quick { 4_000 } else { 20_000 };
    let reps = if quick { 2 } else { 3 };

    let catalog = mem_catalog(8192);
    load_wisconsin_table(&catalog, "ta", rows, 1).unwrap();
    load_wisconsin_table(&catalog, "tb", rows, 2).unwrap();
    load_wisconsin_table_partitioned(&catalog, "big", rows, 5, 4).unwrap();
    let join = plan(
        &catalog,
        "SELECT ta.ten, COUNT(*) FROM ta, tb WHERE ta.unique1 = tb.unique1 GROUP BY ta.ten",
    );
    let agg = plan(
        &catalog,
        "SELECT ten, COUNT(*), SUM(unique2), MIN(unique1), MAX(unique1) \
         FROM big WHERE two = 0 GROUP BY ten",
    );

    let ctx = ExecContext::new(Arc::clone(&catalog));
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).clamp(2, 8);
    let engine = StagedEngine::new(
        ctx,
        EngineConfig { workers_per_stage: workers, shared_scans: false, ..Default::default() },
    );

    println!(
        "exchange page size sweep, one live engine retuned between cells \
         (run-time knob c, {rows}-row tables, best of {reps})"
    );
    sweep(&format!("hash join {rows} ⋈ {rows} + group"), &engine, &join, 10, reps);
    sweep(&format!("scan-aggregate, {rows} rows × 4 partitions"), &engine, &agg, 5, reps);
    engine.shutdown();
    println!(
        "\nExpected: one-tuple pages drown in per-page hand-off overhead (the\n\
         pre-batch semantics); throughput climbs steeply through the tens and\n\
         hundreds, then flattens once per-page costs are fully amortized —\n\
         very large pages trade away pipelining (a stage must fill a whole\n\
         page before its consumer runs) and back-pressure granularity."
    );
}
