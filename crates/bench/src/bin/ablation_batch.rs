//! Ablation A6 (paper §4.2): cohort scheduling in the production runtime.
//!
//! The paper's batching argument is that serving a stage's queue in
//! *cohorts* amortizes the module load time — cache warm-up, queue
//! synchronization, scheduling — over a whole visit. PR 5 brought gated
//! cohort service to the OS-threaded runtime; this ablation measures it:
//! a scan-heavy query mix is driven through the staged server by
//! pipelined clients while the pipeline batch knob
//! (`ServerConfig::max_cohort`) sweeps 1 → 32. Cohort size 1 is the
//! pre-cohort one-packet-per-visit semantics; every other column is pure
//! batching, same threads, same queues, same queries. SELECTs run in
//! Volcano mode on the execute stage's workers, deliberately: the sweep
//! isolates the *pipeline* cohorts being ablated (the engine's own
//! `EngineConfig::cohort` stages are covered by the differential suite
//! at cohorts 1/4/16, `crates/engine/tests/equivalence.rs`).
//!
//! For each setting the table reports steady-state throughput, speedup
//! over cohort 1, and the *observed* mean cohort at the parse stage (the
//! knob is an upper bound; the workload decides how full visits run).
//! Two policy rows close the table: non-gated (exhaustive) and
//! T-gated(2) service at the best gated bound, the §4.2 policy space on
//! real threads (cutoff preemptions included).
//!
//! Pass `quick` for the CI smoke run (small table, fewer rounds). The
//! batching win needs per-visit overhead to be a visible fraction of
//! per-packet work, so the queries are deliberately small scans; on a
//! loaded or single-core host the speedups flatten toward 1× while the
//! result check still holds everywhere.

use staged_bench::{drive_scan_bursts, mem_catalog};
use staged_core::BatchPolicy;
use staged_server::types::ExecutionMode;
use staged_server::{ServerConfig, StagedServer};
use staged_workload::load_wisconsin_table_partitioned;
use std::sync::Arc;

struct Cell {
    label: String,
    qps: f64,
    mean_cohort: f64,
    preempts: u64,
}

struct Knobs {
    rows: usize,
    reps: usize,
    clients: usize,
    rounds: usize,
    burst: usize,
}

fn run_cell(k: &Knobs, label: &str, cohort: usize, batch: BatchPolicy) -> Cell {
    let catalog = mem_catalog(4096);
    load_wisconsin_table_partitioned(&catalog, "big", k.rows, 5, 1).unwrap();
    let server = StagedServer::new(
        Arc::clone(&catalog),
        ServerConfig {
            mode: ExecutionMode::Volcano,
            control_workers: 1,
            execute_workers: 4,
            max_cohort: cohort,
            batch,
            ..Default::default()
        },
    );
    let mut qps = f64::MIN;
    for _ in 0..k.reps {
        qps = qps.max(drive_scan_bursts(&server, k.clients, k.rounds, k.burst));
    }
    let stats = server.stage_stats();
    let parse = stats.iter().find(|s| s.name == "parse").expect("parse stage");
    let cell = Cell {
        label: label.to_string(),
        qps,
        mean_cohort: parse.mean_cohort(),
        preempts: stats.iter().map(|s| s.cutoff_preempts).sum(),
    };
    server.shutdown();
    cell
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let k = Knobs {
        rows: 100,
        reps: if quick { 3 } else { 5 },
        clients: 8,
        rounds: if quick { 40 } else { 120 },
        burst: 8,
    };
    println!(
        "cohort scheduling ablation: {}-row Wisconsin scans, {} pipelined clients \
         × {}-deep bursts, best of {} rep(s) per cell",
        k.rows, k.clients, k.burst, k.reps
    );
    println!(
        "{:>14} {:>12} {:>10} {:>12} {:>10}",
        "policy", "queries/s", "speedup", "mean_cohort", "preempts"
    );
    // Warm-up cell (discarded): pays the process's cold caches, page
    // faults and allocator growth so the measured sweep starts hot.
    let _ = run_cell(&Knobs { reps: 1, ..k }, "warmup", 8, BatchPolicy::DGated);
    let mut base = 0.0f64;
    let mut best = (1usize, 0.0f64);
    for cohort in [1usize, 2, 4, 8, 16, 32] {
        let cell = run_cell(&k, &format!("D-gated({cohort})"), cohort, BatchPolicy::DGated);
        if cohort == 1 {
            base = cell.qps;
        }
        if cell.qps > best.1 {
            best = (cohort, cell.qps);
        }
        println!(
            "{:>14} {:>12.0} {:>9.2}x {:>12.2} {:>10}",
            cell.label,
            cell.qps,
            cell.qps / base,
            cell.mean_cohort,
            cell.preempts
        );
    }
    for (label, policy) in [
        (format!("non-gated({})", best.0), BatchPolicy::Exhaustive),
        (format!("T-gated(2)@{}", best.0), BatchPolicy::TGated { cutoff_factor: 2.0 }),
    ] {
        let cell = run_cell(&k, &label, best.0, policy);
        println!(
            "{:>14} {:>12.0} {:>9.2}x {:>12.2} {:>10}",
            cell.label,
            cell.qps,
            cell.qps / base,
            cell.mean_cohort,
            cell.preempts
        );
    }
}
