//! Ablation A5 (paper §6): partition-parallel staged execution. One
//! Wisconsin table loaded at 1/2/4/8 hash partitions; the staged engine
//! fans each scan/aggregate out into per-partition partial pipelines that
//! converge at the merge stage. Reports wall time, per-query throughput and
//! speedup over the single-partition layout, for a scan-heavy aggregate and
//! a partition-pruned point-lookup mix.
//!
//! Pass `quick` for the CI smoke run (small table, one repetition).
//! Speedup on the scan workload needs real cores: on a single-core host
//! every layout should land within noise of 1×, while correctness (the
//! printed result check) holds everywhere.

use staged_bench::mem_catalog;
use staged_engine::context::ExecContext;
use staged_engine::staged::{EngineConfig, StagedEngine};
use staged_planner::{plan_select, PhysicalPlan, PlannerConfig};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_storage::Catalog;
use staged_workload::load_wisconsin_table_partitioned;
use std::sync::Arc;
use std::time::Instant;

fn plan(catalog: &Arc<Catalog>, sql: &str) -> PhysicalPlan {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!("not a select") };
    let bound = Binder::new(BindContext::new(catalog)).bind_select(sel).unwrap();
    plan_select(&bound, catalog, &PlannerConfig::default()).unwrap()
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let rows: usize = if quick { 20_000 } else { 200_000 };
    let reps: usize = if quick { 1 } else { 5 };
    let workers = std::thread::available_parallelism().map_or(8, |n| n.get()).clamp(2, 16);
    println!(
        "Wisconsin table, {rows} rows, partitions swept 1→8; staged engine with \
         {workers} workers/stage, {reps} rep(s) per cell"
    );
    println!(
        "{:>10} {:>14} {:>12} {:>10} {:>14} {:>12} {:>10}",
        "partitions", "scan-agg (ms)", "rows/s", "speedup", "lookups (ms)", "lookups/s", "speedup"
    );
    let mut base_scan = 0.0f64;
    let mut base_point = 0.0f64;
    for parts in [1usize, 2, 4, 8] {
        let catalog = mem_catalog(8192);
        load_wisconsin_table_partitioned(&catalog, "big", rows, 5, parts).unwrap();
        let ctx = ExecContext::new(Arc::clone(&catalog));
        let engine = StagedEngine::new(
            ctx,
            EngineConfig { workers_per_stage: workers, shared_scans: false, ..Default::default() },
        );

        // Scan-heavy grouped aggregate: N partial fscan→filter→agg
        // pipelines, one merge.
        let agg = plan(
            &catalog,
            "SELECT ten, COUNT(*), SUM(unique2), MIN(unique1), MAX(unique1), AVG(unique2) \
             FROM big WHERE two = 0 GROUP BY ten",
        );
        let start = Instant::now();
        let mut groups = 0;
        for _ in 0..reps {
            groups = engine.execute(&agg).collect().unwrap().len();
        }
        let scan_ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        // `two = 0` keeps even unique1 values, so `ten` takes the 5 even
        // residues.
        assert_eq!(groups, 5, "grouped aggregate lost groups");

        // Point-lookup mix: pruned to one partition each — throughput here
        // measures per-query overhead, not parallelism.
        let n_lookups = if quick { 50 } else { 400 };
        let lookups: Vec<PhysicalPlan> = (0..n_lookups)
            .map(|i| {
                plan(&catalog, &format!("SELECT * FROM big WHERE unique1 = {}", i * 37 % rows))
            })
            .collect();
        let start = Instant::now();
        let handles: Vec<_> = lookups.iter().map(|p| engine.execute(p)).collect();
        let mut found = 0usize;
        for h in handles {
            found += h.collect().unwrap().len();
        }
        let point_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(found, n_lookups, "every pruned lookup must find its row");
        engine.shutdown();

        if parts == 1 {
            base_scan = scan_ms;
            base_point = point_ms;
        }
        println!(
            "{parts:>10} {scan_ms:>14.1} {:>12.0} {:>9.2}x {point_ms:>14.1} {:>12.0} {:>9.2}x",
            rows as f64 / (scan_ms / 1000.0),
            base_scan / scan_ms,
            n_lookups as f64 / (point_ms / 1000.0),
            base_point / point_ms,
        );
    }
    println!(
        "\nHow to read this: point lookups speed up ~Nx on any host — partition pruning\n\
         scans 1/N of the table per query. The scan/aggregate column needs real cores:\n\
         on a multi-core host the N partial pipelines spread across fscan/aggr workers\n\
         and converge at the merge stage for >= 2x at 4 partitions; on a single core\n\
         the same plan costs a few percent of exchange overhead instead."
    );
}
