//! Reproduce **Figure 1**: "Uncontrolled context-switching can lead to poor
//! performance" — four queries, two modules (PARSE, OPTIMIZE), one CPU.
//!
//! Prints the CPU-time breakdown and an ASCII Gantt chart for the
//! time-sharing thread-based model versus staged batching.

use staged_bench::headline;
use staged_sim::timeline::{breakdown, render_gantt, run_staged, run_threaded, TimelineConfig};

fn main() {
    let cfg = TimelineConfig::default();
    println!(
        "Four queries (Q1 OPTIMIZE, Q2 PARSE, Q3 OPTIMIZE, Q4 PARSE), no I/O.\n\
         module demand {:.1} ms, load time {:.1} ms, quantum {:.1} ms, ctx switch {:.2} ms",
        cfg.module_demand * 1e3,
        cfg.load * 1e3,
        cfg.quantum * 1e3,
        cfg.ctx_switch * 1e3
    );

    let threaded = run_threaded(&cfg);
    let staged = run_staged(&cfg);

    headline("Time-sharing thread-based concurrency model (Figure 1 top)");
    println!("{}", render_gantt(&threaded, 96));
    let b = breakdown(&threaded);
    println!(
        "CPU time: {:.1}% useful work, {:.1}% loading working sets, {:.1}% context switches; makespan {:.1} ms",
        b.work * 100.0,
        b.load * 100.0,
        b.switch * 100.0,
        threaded.makespan * 1e3
    );

    headline("Staged batching (non-gated)");
    println!("{}", render_gantt(&staged, 96));
    let b = breakdown(&staged);
    println!(
        "CPU time: {:.1}% useful work, {:.1}% loading working sets, {:.1}% context switches; makespan {:.1} ms",
        b.work * 100.0,
        b.load * 100.0,
        b.switch * 100.0,
        staged.makespan * 1e3
    );
    println!(
        "\nStaged makespan is {:.0}% of the thread-based makespan.",
        100.0 * staged.makespan / threaded.makespan
    );
    println!("Legend: P = parse work, O = optimize work, l = module load, x = context switch");
}
