//! Reproduce the **§3.1.3 experiment**: two similar selection queries pass
//! through the parser; the second parses ~7% faster when it runs
//! immediately after the first (warm parser working set) than when
//! unrelated operations (optimize, scan) run in between.
//!
//! The real lexer/parser runs both times; only the cache is simulated
//! (per-token and per-symbol touches against a Pentium-III-like L1, see
//! `staged_sql::parser::ParseInstrument`).

use staged_bench::headline;
use staged_cachesim::{AddressSpace, CacheConfig, CacheProbe, CacheSim, SimProbe};
use staged_sql::parser::{ParseInstrument, Parser};

/// Fixed CPU work per parse beyond memory effects, in seconds. PREDATOR's
/// parser (symbol checking, semantic checking, query rewrite over a 60 kLoC
/// C++ system) does far more computation per statement than this crate's
/// minimal recursive-descent parser, so the cache-affinity share of its
/// runtime is smaller; this constant stands in for that fixed work and is
/// calibrated to PREDATOR's measured scale (without it, our tiny parser's
/// affinity gain is ~41% — the effect itself, per the cache model, is
/// identical).
const BASE_PARSE_CPU: f64 = 120e-6;

fn parse_cost(
    sql: &str,
    probe: &SimProbe,
    regions: (staged_cachesim::Region, staged_cachesim::Region, staged_cachesim::Region),
) -> f64 {
    probe.reset_cost();
    let inst = ParseInstrument { probe, code: regions.0, symtab: regions.1, private: regions.2 };
    let mut p = Parser::new(sql, Some(inst)).expect("lex");
    p.parse_single().expect("parse");
    BASE_PARSE_CPU + probe.cost()
}

fn main() {
    let mut space = AddressSpace::new();
    let parser_code = space.alloc(24 * 1024);
    let symtab = space.alloc(8 * 1024);
    let private_q1 = space.alloc(2 * 1024);
    let private_q2 = space.alloc(2 * 1024);
    let optimizer_ws = space.alloc(24 * 1024);
    let scan_ws = space.alloc(16 * 1024);

    let q1 = "SELECT unique1, stringu1 FROM wisc WHERE unique1 BETWEEN 100 AND 200 AND two = 0";
    let q2 = "SELECT unique2, stringu1 FROM wisc WHERE unique1 BETWEEN 500 AND 610 AND four = 2";

    // Scenario (a): q1 parses, the CPU optimizes/scans (evicting the
    // parser's working set), then q2 parses.
    let probe = SimProbe::new(
        CacheSim::new(CacheConfig { capacity: 16 * 1024, line: 32, ways: 4 }),
        2e-9,
        60e-9,
    );
    let _ = parse_cost(q1, &probe, (parser_code, symtab, private_q1));
    probe.touch(optimizer_ws, 0, optimizer_ws.len);
    probe.touch(scan_ws, 0, scan_ws.len);
    probe.touch(optimizer_ws, 0, optimizer_ws.len);
    let cost_a = parse_cost(q2, &probe, (parser_code, symtab, private_q2));

    // Scenario (b): q2 parses immediately after q1.
    let probe = SimProbe::new(
        CacheSim::new(CacheConfig { capacity: 16 * 1024, line: 32, ways: 4 }),
        2e-9,
        60e-9,
    );
    let _ = parse_cost(q1, &probe, (parser_code, symtab, private_q1));
    let cost_b = parse_cost(q2, &probe, (parser_code, symtab, private_q2));

    headline("§3.1.3 — parse-affinity experiment");
    println!("query 2 parse time, scenario (a) interleaved: {:.2} µs", cost_a * 1e6);
    println!("query 2 parse time, scenario (b) back-to-back: {:.2} µs", cost_b * 1e6);
    let improvement = 100.0 * (cost_a - cost_b) / cost_a;
    println!("improvement: {improvement:.1}%   (paper: 7%)");
    println!(
        "\nThe paper then notes that \"even such a modest average improvement across\n\
         all server modules results into more than 40% overall response time\n\
         improvement when running multiple concurrent queries at high system load\"\n\
         — that end-to-end effect is reproduced by `repro_fig5`."
    );
}
