//! Ablation A1 (paper §4.4d): "different scheduling policies prevail for
//! different system loads" — sweep the offered load at a fixed module-load
//! fraction and compare policies.

use staged_core::policy::Policy;
use staged_sim::prodline::load_sweep;

fn main() {
    let loads = [0.5, 0.7, 0.8, 0.9, 0.95, 0.99];
    let lf = 0.2; // 20% of execution time fetching common data+code
    let series = load_sweep(&loads, lf, &Policy::figure5_set(), 42, 600.0);
    println!("Mean response time (s) vs system load, l = {:.0}%", lf * 100.0);
    print!("{:>6}", "rho");
    for (name, _) in &series {
        print!(" {:>12}", name);
    }
    println!();
    for (i, &rho) in loads.iter().enumerate() {
        print!("{rho:>6}");
        for (_, pts) in &series {
            let rt = pts[i].1;
            if rt > 99.0 {
                print!(" {:>12}", ">99");
            } else {
                print!(" {:>12.3}", rt);
            }
        }
        println!();
    }
    println!(
        "\nExpected: at low load batching buys little (few queries to batch) and all\n\
         policies are close; as load rises the staged policies pull ahead and PS\n\
         becomes unstable first."
    );
}
