//! Reproduce **Figure 5**: mean response time at 95% system load versus the
//! fraction of execution time spent fetching common data+code (`l`), for
//! the five scheduling policies on the production-line model of Figure 4.
//!
//! Five modules, equal service-time breakdown, `m + l = 100 ms`, Poisson
//! arrivals at ρ = 0.95 — the paper's exact parameterization.

use staged_core::policy::Policy;
use staged_sim::prodline::figure5_sweep;

fn main() {
    let long = std::env::args().any(|a| a == "--long");
    let horizon = if long { 2400.0 } else { 600.0 };
    let fractions = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60];
    let policies = Policy::figure5_set();
    eprintln!(
        "simulating {} policies × {} load fractions (horizon {horizon}s virtual)…",
        policies.len(),
        fractions.len()
    );
    let series = figure5_sweep(&fractions, &policies, 42, horizon);
    println!("Mean response time (seconds), 95% system load, 5 modules, m+l = 100 ms");
    print!("{:>6}", "l%");
    for s in &series {
        print!(" {:>12}", s.policy);
    }
    println!();
    for (i, &lf) in fractions.iter().enumerate() {
        print!("{:>6}", format!("{:.0}%", lf * 100.0));
        for s in &series {
            let rt = s.points[i].1;
            if rt > 99.0 {
                print!(" {:>12}", ">99");
            } else {
                print!(" {:>12.3}", rt);
            }
        }
        println!();
    }
    println!(
        "\nPaper shape to check: all policies start together at l = 0 (M/M/1, 2.0 s);\n\
         the staged policies (non-gated, D-gated, T-gated(2)) beat PS for l > 2% and\n\
         improve as l grows; PS degrades rapidly (off the paper's 3 s axis); FCFS\n\
         stays near its l = 0 value. Run with --long for tighter estimates."
    );
}
