//! Closed-loop multi-client **network** throughput bench.
//!
//! Spins up a server behind the TCP front end on an ephemeral loopback
//! port, then drives it with N closed-loop clients (each a real
//! `staged-dbclient` connection: send one statement, wait for the tagged
//! response, send the next). The workload is the PR-3 transfer mix —
//! `BEGIN; UPDATE -1; UPDATE +1; COMMIT/ROLLBACK` over a hash-partitioned
//! accounts table — so the numbers are directly comparable with the
//! in-process `oltp_transfers_*` metrics of `perf_trajectory`: the gap
//! between the two is the cost of the wire (framing, syscalls, the `net`
//! admission stage).
//!
//! Usage: `net_throughput [quick|scale] [--clients N] [--transfers N]
//!                        [--partitions N]`
//!
//! `quick` (CI smoke) runs 4 clients × 20 transfers on 2 partitions for
//! both servers and asserts the balance-sum invariant; the full run scales
//! the client count up. `scale` (PR 10) drives 1,000 closed-loop clients
//! through the event-driven front end and asserts that serving them
//! spawned no per-connection threads — the whole fleet reads and writes
//! through the single `net-loop` poll thread (DESIGN.md §16). Always
//! exits non-zero if any invariant breaks, so CI can use it as a
//! correctness smoke test too. EXPERIMENTS.md documents how to read the
//! output.

use staged_dbclient::Client;
use staged_planner::PlannerConfig;
use staged_server::net::{self, NetConfig};
use staged_server::{ServerConfig, StagedServer, ThreadedServer};
use staged_storage::{
    partition_of_value, BufferPool, Catalog, Column, DataType, MemDisk, Schema, Tuple, Value,
};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ACCOUNTS: i64 = 128;
const BALANCE: i64 = 100;

fn accounts_catalog(parts: usize) -> Arc<Catalog> {
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
        parts,
        0,
    )
    .unwrap();
    let t = cat.table("accounts").unwrap();
    for i in 0..ACCOUNTS {
        t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(BALANCE)])).unwrap();
    }
    cat.create_index("accounts_id", "accounts", "id").unwrap();
    cat.analyze_table("accounts").unwrap();
    cat
}

/// Drive `clients` closed-loop TCP clients for `transfers` transactions
/// each; returns (txns/sec, statements/sec).
fn drive(addr: std::net::SocketAddr, clients: usize, transfers: usize, parts: usize) -> (f64, f64) {
    let start = Instant::now();
    let stmts: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|cid| {
                scope.spawn(move || {
                    // A connect storm can overflow even a widened accept
                    // queue; with the greeting covered by the timeout a
                    // dropped connection errors instead of hanging, so
                    // retrying is safe and keeps the fleet at full size.
                    let mut db = None;
                    for attempt in 0..6 {
                        match Client::connect_timeout(addr, Duration::from_secs(10)) {
                            Ok(c) => {
                                db = Some(c);
                                break;
                            }
                            Err(e) if attempt == 5 => panic!("bench client connect: {e:?}"),
                            Err(_) => std::thread::sleep(Duration::from_millis(50 << attempt)),
                        }
                    }
                    let mut db = db.expect("bench client connect");
                    let mut stmts = 0u64;
                    let mut state = 0x9e3779b97f4a7c15u64 ^ (cid as u64 + 1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..transfers {
                        let from = (next() % ACCOUNTS as u64) as i64;
                        let to = (next() % ACCOUNTS as u64) as i64;
                        let commit = next() % 4 != 0;
                        if db.begin().is_err() {
                            continue;
                        }
                        stmts += 1;
                        // Canonical partition order avoids deadlocks, as in
                        // perf_trajectory::oltp_transfers — this bench
                        // measures the wire + pipeline, not timeout-abort.
                        let part_of = |id: i64| partition_of_value(&Value::Int(id), parts);
                        let mut ops = [(part_of(from), from, "-"), (part_of(to), to, "+")];
                        ops.sort_unstable();
                        let mut failed = false;
                        for (_, id, op) in ops {
                            stmts += 1;
                            if db
                                .query(&format!(
                                    "UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"
                                ))
                                .is_err()
                            {
                                failed = true;
                                break;
                            }
                        }
                        stmts += 1;
                        let _ = if failed || !commit { db.rollback() } else { db.commit() };
                    }
                    let _ = db.quit();
                    stmts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench client")).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    ((clients * transfers) as f64 / secs, stmts as f64 / secs)
}

fn check_invariant(addr: std::net::SocketAddr) {
    let mut db = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
    let out = db.query("SELECT SUM(bal) FROM accounts").expect("sum query");
    let sum: i64 = out.rows[0][0].as_ref().unwrap().parse().unwrap();
    assert_eq!(sum, ACCOUNTS * BALANCE, "balance-sum invariant broken over TCP");
    let _ = db.quit();
}

fn bench_staged(clients: usize, transfers: usize, parts: usize) -> (f64, f64) {
    let server = StagedServer::new(
        accounts_catalog(parts),
        ServerConfig { partitions: parts, ..Default::default() },
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = net::serve(
        listener,
        Arc::clone(&server),
        NetConfig { max_connections: clients + 4, ..Default::default() },
    )
    .unwrap();
    let rates = drive(handle.local_addr(), clients, transfers, parts);
    check_invariant(handle.local_addr());
    handle.shutdown();
    server.shutdown();
    rates
}

fn bench_threaded(clients: usize, transfers: usize, parts: usize) -> (f64, f64) {
    let server = Arc::new(ThreadedServer::new(
        accounts_catalog(parts),
        clients.max(2),
        PlannerConfig::default(),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = net::serve(
        listener,
        Arc::clone(&server),
        NetConfig { max_connections: clients + 4, ..Default::default() },
    )
    .unwrap();
    let rates = drive(handle.local_addr(), clients, transfers, parts);
    check_invariant(handle.local_addr());
    handle.shutdown();
    server.shutdown();
    rates
}

/// Live thread count of this process (one /proc/self/task entry per
/// thread) — client threads included, which is why [`bench_scale`]
/// snapshots before spawning them and after joining them.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").expect("read /proc/self/task").count()
}

/// The connection-scale run: ≥1,000 closed-loop clients against the
/// staged server, completing on one reader thread. The thread count is
/// asserted around the drive — the server and its front end are
/// in-process, so any thread-per-connection regression shows up as a
/// post-join thread surplus.
fn bench_scale(clients: usize, transfers: usize, parts: usize) {
    let _ = polling::raise_nofile_limit();
    let server = StagedServer::new(
        accounts_catalog(parts),
        ServerConfig { partitions: parts, ..Default::default() },
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = net::serve(
        listener,
        Arc::clone(&server),
        NetConfig { max_connections: clients + 4, ..Default::default() },
    )
    .unwrap();
    let before = thread_count();
    eprintln!("listening on {}", handle.local_addr());
    let (txns, stmts) = drive(handle.local_addr(), clients, transfers, parts);
    let after = thread_count();
    check_invariant(handle.local_addr());
    println!("{:>10} {txns:>14.0} {stmts:>16.0}", "staged");
    assert!(
        after <= before + 2,
        "serving {clients} connections grew the thread count {before} -> {after}: \
         the front end is no longer a single reader thread"
    );
    println!(
        "threads: {before} before / {after} after serving {clients} connections \
         (single poll loop, no per-connection threads)"
    );
    handle.shutdown();
    server.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let scale = args.iter().any(|a| a == "scale");
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = flag(
        "--clients",
        if scale {
            1000
        } else if quick {
            4
        } else {
            8
        },
    );
    let transfers = flag(
        "--transfers",
        if scale {
            2
        } else if quick {
            20
        } else {
            200
        },
    );
    let parts = flag("--partitions", 2);

    println!(
        "net_throughput: {clients} closed-loop TCP clients x {transfers} transfers, \
         {parts} partitions"
    );
    if scale {
        println!("{:>10} {:>14} {:>16}", "server", "txns/sec", "stmts/sec");
        bench_scale(clients, transfers, parts);
        println!("invariants held: SUM(bal) = {} at connection scale", ACCOUNTS * BALANCE);
        return;
    }
    println!("{:>10} {:>14} {:>16}", "server", "txns/sec", "stmts/sec");
    let (txns, stmts) = bench_staged(clients, transfers, parts);
    println!("{:>10} {txns:>14.0} {stmts:>16.0}", "staged");
    let (txns, stmts) = bench_threaded(clients, transfers, parts);
    println!("{:>10} {txns:>14.0} {stmts:>16.0}", "threaded");
    println!("invariants held: SUM(bal) = {} on both servers", ACCOUNTS * BALANCE);
}
