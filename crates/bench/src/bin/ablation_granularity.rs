//! Ablation A3 (paper §4.4b): stage granularity. The same total work and
//! total load time are split over more or fewer modules ("the tuning
//! mechanism will dynamically merge or split stages"); finer stages batch
//! better but add queueing hops.

use staged_core::policy::Policy;
use staged_sim::prodline::{run_prodline, ProdlineConfig};

fn main() {
    let policies = [Policy::DGated, Policy::TGated { cutoff_factor: 2.0 }, Policy::Fcfs];
    println!(
        "Mean response time (s), 95% load, l = 30% of 100 ms total demand,\n\
         split evenly over a varying number of stages"
    );
    print!("{:>8}", "stages");
    for p in &policies {
        print!(" {:>12}", p.label());
    }
    println!();
    for stages in [1usize, 2, 5, 10, 20] {
        print!("{stages:>8}");
        for p in &policies {
            let mut cfg = ProdlineConfig::figure5(*p, 0.30);
            cfg.stages = stages;
            cfg.horizon = 600.0;
            cfg.warmup = 60.0;
            let r = run_prodline(&cfg);
            if r.mean_response > 99.0 {
                print!(" {:>12}", ">99");
            } else {
                print!(" {:>12.3}", r.mean_response);
            }
        }
        println!();
    }
    println!(
        "\nReading: with one stage every policy is equivalent — a one-module server\n\
         never evicts its working set, so FCFS matches the staged policies. Splitting\n\
         creates the eviction problem FCFS cannot fight (it jumps modules per query,\n\
         paying the full load every time) while gated batching amortizes each l_i and\n\
         stays within ~10% of its 2-stage response time even at 20 stages. That\n\
         robustness is what makes §4.4's dynamic merge/split knob safe to turn."
    );
}
