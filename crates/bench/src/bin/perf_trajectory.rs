//! CI perf-trajectory harness: runs a fixed-seed slice of the ablation
//! workloads, emits a machine-readable `BENCH_<pr>.json`, and optionally
//! gates against a committed baseline (EXPERIMENTS.md documents the
//! schema).
//!
//! Cross-machine comparability: every throughput is also reported
//! *normalized* by a fixed CPU calibration loop measured in the same
//! process (FNV-1a hashing): events per million calibration hash-ops.
//! The normalized value is dimensionless
//! "work per unit of this machine's compute", so a slower CI runner
//! shifts raw numbers but (to first order) not the normalized ones — the
//! regression gate compares normalized values only.
//!
//! Usage:
//!   perf_trajectory [--out FILE] [--baseline FILE] [--gate FRACTION]
//!
//! Since PR 4 the slice includes `net_transfers_p2`: the transfer
//! workload driven through the TCP front end by real client connections.
//! Since PR 5 it includes `batch_p2`: small scans pipelined through the
//! cohort-scheduled staged pipeline at the default batch knob. Since PR 7
//! it includes `wal_recovery_p2`: snapshot-load plus WAL-tail replay of a
//! fixed recovery image. Since PR 8 it includes `mixed_htap_p2`: full-table
//! `BEGIN READ ONLY` snapshot scans driven *while* concurrent transfer
//! transactions commit — the HTAP mix MVCC exists for; the reader never
//! touches the lock table, so its throughput must not collapse under
//! write load. Since PR 9 it includes `repl_catchup_p2`: WAL records per
//! second a replica applies while catching up from LSN zero over a real
//! socket, with result-set parity asserted before the number is accepted.
//! Since PR 10 it includes `net_scale_p2`: the transfer mix served while
//! the event-driven front end holds 1,000 idle connections open on its
//! single reader thread — the connection-scale workload the `poll(2)`
//! loop exists for (see EXPERIMENTS.md for the full metric table).
//!
//! Exit status 1 = at least one metric regressed more than the gate
//! fraction below its baseline.

use staged_bench::mem_catalog;
use staged_engine::context::ExecContext;
use staged_engine::staged::{EngineConfig, StagedEngine};
use staged_engine::volcano;
use staged_planner::{plan_select, PhysicalPlan, PlannerConfig};
use staged_server::types::ExecutionMode;
use staged_server::{ServerConfig, StagedServer};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_storage::{BufferPool, Catalog, Column, DataType, MemDisk, Schema, Tuple, Value};
use staged_workload::load_wisconsin_table_partitioned;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCAN_ROWS: usize = 20_000;
const LOOKUPS: usize = 200;
const SESSIONS: usize = 4;
const TRANSFERS: usize = 25;
const ACCOUNTS: i64 = 64;
const REPS: usize = 3;

struct Metric {
    name: &'static str,
    unit: &'static str,
    raw: f64,
    normalized: f64,
}

fn plan(catalog: &Arc<Catalog>, sql: &str) -> PhysicalPlan {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!("not a select") };
    let bound = Binder::new(BindContext::new(catalog)).bind_select(sel).unwrap();
    plan_select(&bound, catalog, &PlannerConfig::default()).unwrap()
}

/// Fixed CPU work whose throughput calibrates the machine: FNV-1a over a
/// pseudo-random buffer. Returns hashes/second.
fn calibrate() -> f64 {
    let buf: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect();
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut acc = 0xcbf29ce484222325u64;
        let rounds = 2_000;
        for r in 0..rounds {
            for v in &buf {
                acc = (acc ^ (v.wrapping_add(r))).wrapping_mul(0x100000001b3);
            }
        }
        std::hint::black_box(acc);
        let per_sec = (rounds as f64 * buf.len() as f64) / start.elapsed().as_secs_f64();
        best = best.max(per_sec);
    }
    best
}

/// Best-of-REPS throughput of `work`, as events/second for `events` events.
fn best_rate(events: f64, mut work: impl FnMut()) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let start = Instant::now();
        work();
        best = best.max(events / start.elapsed().as_secs_f64());
    }
    best
}

fn scan_agg(parts: usize, staged_exec: bool) -> f64 {
    let catalog = mem_catalog(8192);
    load_wisconsin_table_partitioned(&catalog, "big", SCAN_ROWS, 5, parts).unwrap();
    let ctx = ExecContext::new(Arc::clone(&catalog));
    let agg = plan(
        &catalog,
        "SELECT ten, COUNT(*), SUM(unique2), MIN(unique1), MAX(unique1) \
         FROM big WHERE two = 0 GROUP BY ten",
    );
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).clamp(2, 8);
    if staged_exec {
        let engine = StagedEngine::new(
            ctx,
            EngineConfig { workers_per_stage: workers, shared_scans: false, ..Default::default() },
        );
        let rate = best_rate(SCAN_ROWS as f64, || {
            assert_eq!(engine.execute(&agg).collect().unwrap().len(), 5);
        });
        engine.shutdown();
        rate
    } else {
        best_rate(SCAN_ROWS as f64, || {
            assert_eq!(volcano::run(&agg, &ctx).unwrap().len(), 5);
        })
    }
}

fn point_lookups(parts: usize) -> f64 {
    let catalog = mem_catalog(8192);
    load_wisconsin_table_partitioned(&catalog, "big", SCAN_ROWS, 5, parts).unwrap();
    let ctx = ExecContext::new(Arc::clone(&catalog));
    let engine = StagedEngine::new(
        ctx,
        EngineConfig { workers_per_stage: 4, shared_scans: false, ..Default::default() },
    );
    let lookups: Vec<PhysicalPlan> = (0..LOOKUPS)
        .map(|i| {
            plan(&catalog, &format!("SELECT * FROM big WHERE unique1 = {}", i * 37 % SCAN_ROWS))
        })
        .collect();
    let rate = best_rate(LOOKUPS as f64, || {
        let handles: Vec<_> = lookups.iter().map(|p| engine.execute(p)).collect();
        let found: usize = handles.into_iter().map(|h| h.collect().unwrap().len()).sum();
        assert_eq!(found, LOOKUPS);
    });
    engine.shutdown();
    rate
}

/// The new OLTP workload class: concurrent transfer transactions through
/// the staged server's lock-manager stage. Reports committed+aborted
/// transactions per second (fixed-seed streams, sum invariant asserted).
fn oltp_transfers(parts: usize) -> f64 {
    best_rate((SESSIONS * TRANSFERS) as f64, || {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        cat.create_table_partitioned(
            "accounts",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
            parts,
            0,
        )
        .unwrap();
        let t = cat.table("accounts").unwrap();
        for i in 0..ACCOUNTS {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(100)])).unwrap();
        }
        cat.create_index("accounts_id", "accounts", "id").unwrap();
        cat.analyze_table("accounts").unwrap();
        let server = StagedServer::new(
            Arc::clone(&cat),
            ServerConfig {
                mode: ExecutionMode::Staged,
                partitions: parts,
                lock_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        );
        std::thread::scope(|scope| {
            for sid in 0..SESSIONS {
                let server = &server;
                scope.spawn(move || {
                    let sess = server.session();
                    let mut state = 0x9e3779b97f4a7c15u64 ^ (sid as u64 + 1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..TRANSFERS {
                        let from = (next() % ACCOUNTS as u64) as i64;
                        let to = (next() % ACCOUNTS as u64) as i64;
                        let commit = next() % 4 != 0;
                        if sess.execute_sql("BEGIN").is_err() {
                            continue;
                        }
                        // Application-level deadlock avoidance: touch the
                        // two accounts in canonical partition order, so the
                        // throughput measured is lock-stage + engine work,
                        // not timeout-abort recovery (tests exercise the
                        // deadlock path; this bench measures the fast one).
                        let part_of =
                            |id: i64| staged_storage::partition_of_value(&Value::Int(id), parts);
                        let mut stmts = [(part_of(from), from, "-"), (part_of(to), to, "+")];
                        stmts.sort_unstable();
                        let mut failed = false;
                        for (_, id, op) in stmts {
                            if sess
                                .execute_sql(&format!(
                                    "UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"
                                ))
                                .is_err()
                            {
                                failed = true;
                                break;
                            }
                        }
                        if failed {
                            let _ = sess.execute_sql("ROLLBACK");
                            continue;
                        }
                        let _ = sess.execute_sql(if commit { "COMMIT" } else { "ROLLBACK" });
                    }
                });
            }
        });
        let out = server.execute_sql("SELECT SUM(bal) FROM accounts").unwrap();
        assert_eq!(
            out.rows[0].to_string(),
            format!("[{}]", ACCOUNTS * 100),
            "sum invariant broken"
        );
        server.shutdown();
    })
}

/// The transfer workload again, but through the TCP front end with real
/// `staged-dbclient` connections: the delta against `oltp_transfers_*`
/// prices the wire (framing, syscalls, the `net` admission stage).
fn net_transfers(parts: usize) -> f64 {
    use staged_dbclient::Client;
    use staged_server::net::{self, NetConfig};

    best_rate((SESSIONS * TRANSFERS) as f64, || {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        cat.create_table_partitioned(
            "accounts",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
            parts,
            0,
        )
        .unwrap();
        let t = cat.table("accounts").unwrap();
        for i in 0..ACCOUNTS {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(100)])).unwrap();
        }
        cat.create_index("accounts_id", "accounts", "id").unwrap();
        cat.analyze_table("accounts").unwrap();
        let server = StagedServer::new(
            Arc::clone(&cat),
            ServerConfig {
                mode: ExecutionMode::Staged,
                partitions: parts,
                lock_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = net::serve(
            listener,
            Arc::clone(&server),
            NetConfig { max_connections: SESSIONS + 2, ..Default::default() },
        )
        .unwrap();
        let addr = handle.local_addr();
        std::thread::scope(|scope| {
            for sid in 0..SESSIONS {
                scope.spawn(move || {
                    let mut db =
                        Client::connect_timeout(addr, Duration::from_secs(10)).expect("connect");
                    let mut state = 0x9e3779b97f4a7c15u64 ^ (sid as u64 + 1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..TRANSFERS {
                        let from = (next() % ACCOUNTS as u64) as i64;
                        let to = (next() % ACCOUNTS as u64) as i64;
                        let commit = next() % 4 != 0;
                        if db.begin().is_err() {
                            continue;
                        }
                        let part_of =
                            |id: i64| staged_storage::partition_of_value(&Value::Int(id), parts);
                        let mut stmts = [(part_of(from), from, "-"), (part_of(to), to, "+")];
                        stmts.sort_unstable();
                        let mut failed = false;
                        for (_, id, op) in stmts {
                            if db
                                .query(&format!(
                                    "UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"
                                ))
                                .is_err()
                            {
                                failed = true;
                                break;
                            }
                        }
                        let _ = if failed || !commit { db.rollback() } else { db.commit() };
                    }
                    let _ = db.quit();
                });
            }
        });
        let out = server.execute_sql("SELECT SUM(bal) FROM accounts").unwrap();
        assert_eq!(
            out.rows[0].to_string(),
            format!("[{}]", ACCOUNTS * 100),
            "sum invariant broken over TCP"
        );
        handle.shutdown();
        server.shutdown();
    })
}

/// PR 10: the transfer workload served through a crowd of idle sockets.
/// A four-digit fleet of connections is held open by the single `net-loop`
/// reader while the usual closed-loop subset runs transfers, so the number
/// prices the event loop's readiness pass at connection scale — before the
/// event-driven front end this workload needed a thread per socket.
fn net_scale(parts: usize, idle_conns: usize) -> f64 {
    use staged_dbclient::Client;
    use staged_server::net::{self, NetConfig};

    let _ = polling::raise_nofile_limit();
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
        parts,
        0,
    )
    .unwrap();
    let t = cat.table("accounts").unwrap();
    for i in 0..ACCOUNTS {
        t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(100)])).unwrap();
    }
    cat.create_index("accounts_id", "accounts", "id").unwrap();
    cat.analyze_table("accounts").unwrap();
    let server = StagedServer::new(
        Arc::clone(&cat),
        ServerConfig {
            mode: ExecutionMode::Staged,
            partitions: parts,
            lock_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = net::serve(
        listener,
        Arc::clone(&server),
        NetConfig { max_connections: idle_conns + SESSIONS + 2, ..Default::default() },
    )
    .unwrap();
    let addr = handle.local_addr();
    let idle: Vec<Client> = (0..idle_conns)
        .map(|_| Client::connect_timeout(addr, Duration::from_secs(10)).expect("idle connect"))
        .collect();

    let rate = best_rate((SESSIONS * TRANSFERS) as f64, || {
        std::thread::scope(|scope| {
            for sid in 0..SESSIONS {
                scope.spawn(move || {
                    let mut db =
                        Client::connect_timeout(addr, Duration::from_secs(10)).expect("connect");
                    let mut state = 0x9e3779b97f4a7c15u64 ^ (sid as u64 + 1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..TRANSFERS {
                        let from = (next() % ACCOUNTS as u64) as i64;
                        let to = (next() % ACCOUNTS as u64) as i64;
                        let commit = next() % 4 != 0;
                        if db.begin().is_err() {
                            continue;
                        }
                        let part_of =
                            |id: i64| staged_storage::partition_of_value(&Value::Int(id), parts);
                        let mut stmts = [(part_of(from), from, "-"), (part_of(to), to, "+")];
                        stmts.sort_unstable();
                        let mut failed = false;
                        for (_, id, op) in stmts {
                            if db
                                .query(&format!(
                                    "UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"
                                ))
                                .is_err()
                            {
                                failed = true;
                                break;
                            }
                        }
                        let _ = if failed || !commit { db.rollback() } else { db.commit() };
                    }
                    let _ = db.quit();
                });
            }
        });
    });
    let out = server.execute_sql("SELECT SUM(bal) FROM accounts").unwrap();
    assert_eq!(
        out.rows[0].to_string(),
        format!("[{}]", ACCOUNTS * 100),
        "sum invariant broken through the idle fleet"
    );
    drop(idle);
    handle.shutdown();
    server.shutdown();
    rate
}

/// The cohort-scheduling workload (PR 5): small scan-aggregates pipelined
/// into the staged server by concurrent clients, served by gated cohorts
/// at the default batch knob on a 2-partition table (Volcano SELECT
/// execution, so the metric tracks the *pipeline* cohorts). Reports
/// statements per second through the full connect→…→disconnect pipeline;
/// the `ablation_batch` bench sweeps the knob over the same closed loop
/// (`staged_bench::drive_scan_bursts`).
fn batch_queries(parts: usize) -> f64 {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 40;
    const BURST: usize = 8;
    let catalog = mem_catalog(4096);
    load_wisconsin_table_partitioned(&catalog, "big", 100, 5, parts).unwrap();
    let server = StagedServer::new(
        Arc::clone(&catalog),
        ServerConfig {
            mode: ExecutionMode::Volcano,
            control_workers: 1,
            execute_workers: 4,
            partitions: parts,
            ..Default::default()
        },
    );
    let rate = best_rate((CLIENTS * ROUNDS * BURST) as f64, || {
        staged_bench::drive_scan_bursts(&server, CLIENTS, ROUNDS, BURST);
    });
    server.shutdown();
    rate
}

/// The recovery workload (PR 7): a fixed history — snapshot of 4096 rows
/// plus a 256-row WAL tail — restored into a fresh catalog, over and over.
/// Reports recoveries/second of the snapshot-load + tail-replay path; the
/// point of the checkpoint stage is that this number stays flat as total
/// history grows.
fn wal_recovery(parts: usize) -> f64 {
    use staged_engine::checkpoint;
    use staged_engine::dml;
    use staged_storage::{
        LogRecord, MemSegmentStore, MemSnapshotStore, SegmentStore, SnapshotStore, Wal,
    };

    const SNAPSHOT_ROWS: i64 = 4096;
    const TAIL_ROWS: i64 = 256;
    const RECOVERIES: usize = 20;

    let build_ctx = || {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        cat.create_table_partitioned(
            "r",
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]),
            parts,
            0,
        )
        .unwrap();
        cat.create_index("r_id", "r", "id").unwrap();
        ExecContext::new(cat)
    };

    // Build the history once: committed snapshot rows, checkpoint, then a
    // committed tail that recovery must replay from the log.
    let segments: Arc<dyn SegmentStore> = Arc::new(MemSegmentStore::new());
    let snapshots: Arc<dyn SnapshotStore> = Arc::new(MemSnapshotStore::new());
    let ctx = build_ctx();
    let wal = Wal::open(Arc::clone(&segments)).unwrap();
    let table = ctx.catalog.table("r").unwrap();
    let commit = |xid: u64, ids: std::ops::Range<i64>| {
        wal.append(&LogRecord::Begin { xid }).unwrap();
        let rows: Vec<Tuple> =
            ids.map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 3)])).collect();
        dml::insert_rows(&ctx, &table, rows, Some(&dml::DmlLog::wal_only(&wal, xid))).unwrap();
        wal.append(&LogRecord::Commit { xid }).unwrap();
    };
    commit(1, 0..SNAPSHOT_ROWS);
    checkpoint::checkpoint(&ctx.catalog, &wal, snapshots.as_ref()).unwrap();
    commit(2, SNAPSHOT_ROWS..SNAPSHOT_ROWS + TAIL_ROWS);
    wal.flush().unwrap();

    best_rate(RECOVERIES as f64, || {
        for _ in 0..RECOVERIES {
            let fresh = ExecContext::new(Arc::new(Catalog::new(BufferPool::new(
                Arc::new(MemDisk::new()),
                2048,
            ))));
            let (_wal, report) = checkpoint::recover(
                &fresh,
                Arc::clone(&segments),
                snapshots.as_ref(),
                staged_storage::DEFAULT_SEGMENT_PAGES,
            )
            .unwrap();
            assert_eq!(report.snapshot_rows, SNAPSHOT_ROWS as u64);
            assert_eq!(
                fresh.catalog.table("r").unwrap().heap.scan().count() as i64,
                SNAPSHOT_ROWS + TAIL_ROWS
            );
        }
    })
}

/// The HTAP workload (PR 8): a snapshot reader runs full-table
/// `BEGIN READ ONLY` aggregates while writer sessions commit transfers
/// against the same table. Reports reader scans/second under write load;
/// every scan asserts the balanced-sum invariant, so the number is also a
/// continuous consistency check. Before MVCC this mix either returned
/// torn sums (plain scans) or serialized behind the writers (2PL reads);
/// the snapshot path does neither.
fn mixed_htap(parts: usize) -> f64 {
    use std::sync::atomic::{AtomicBool, Ordering};

    const ROWS: i64 = 8192;
    const SCANS: usize = 15;
    const WRITERS: usize = 2;

    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 4096)));
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
        parts,
        0,
    )
    .unwrap();
    let t = cat.table("accounts").unwrap();
    for i in 0..ROWS {
        t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(100)])).unwrap();
    }
    cat.create_index("accounts_id", "accounts", "id").unwrap();
    cat.analyze_table("accounts").unwrap();
    let server = StagedServer::new(
        Arc::clone(&cat),
        ServerConfig {
            mode: ExecutionMode::Staged,
            partitions: parts,
            lock_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    );

    let mut best = f64::MIN;
    for _ in 0..REPS {
        let stop = AtomicBool::new(false);
        let rate = std::thread::scope(|scope| {
            for sid in 0..WRITERS {
                let server = &server;
                let stop = &stop;
                scope.spawn(move || {
                    let sess = server.session();
                    let mut state = 0x9e3779b97f4a7c15u64 ^ (sid as u64 + 1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let from = (next() % ROWS as u64) as i64;
                        let to = (next() % ROWS as u64) as i64;
                        if sess.execute_sql("BEGIN").is_err() {
                            continue;
                        }
                        let part_of =
                            |id: i64| staged_storage::partition_of_value(&Value::Int(id), parts);
                        let mut stmts = [(part_of(from), from, "-"), (part_of(to), to, "+")];
                        stmts.sort_unstable();
                        let mut failed = false;
                        for (_, id, op) in stmts {
                            if sess
                                .execute_sql(&format!(
                                    "UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"
                                ))
                                .is_err()
                            {
                                failed = true;
                                break;
                            }
                        }
                        let _ = sess.execute_sql(if failed { "ROLLBACK" } else { "COMMIT" });
                    }
                });
            }
            let sess = server.session();
            let start = Instant::now();
            for _ in 0..SCANS {
                sess.execute_sql("BEGIN READ ONLY").unwrap();
                let out = sess.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
                assert_eq!(
                    out.rows[0].to_string(),
                    format!("[{}, {ROWS}]", ROWS * 100),
                    "snapshot saw a torn transfer"
                );
                sess.execute_sql("COMMIT").unwrap();
            }
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            SCANS as f64 / elapsed.as_secs_f64()
        });
        best = best.max(rate);
    }
    server.shutdown();
    best
}

/// The replication workload (PR 9): a primary commits a fixed transfer
/// history, then a fresh replica subscribes over a real socket from LSN
/// zero and the metric clocks WAL records applied from subscription to
/// zero lag — the full ship → mirror-append → atomic-apply path of
/// DESIGN.md §15. Result-set parity (balance sum + row count) is
/// asserted on the replica before the number is accepted.
fn repl_catchup(parts: usize) -> f64 {
    use staged_server::net::{self, NetConfig};
    use staged_server::{ReplicaConfig, ReplicaServer};
    use staged_storage::MemSegmentStore;

    const ROWS: i64 = 64;
    const HISTORY: usize = 300;

    // The primary: seed in one transaction, then a committed transfer
    // history — all of it WAL-logged, all of it shipped on subscription.
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    let schema =
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]);
    cat.create_table_partitioned("accounts", schema.clone(), parts, 0).unwrap();
    let server = StagedServer::new(
        Arc::clone(&cat),
        ServerConfig {
            mode: ExecutionMode::Staged,
            partitions: parts,
            lock_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    );
    let sess = server.session();
    sess.execute_sql("BEGIN").unwrap();
    for i in 0..ROWS {
        sess.execute_sql(&format!("INSERT INTO accounts VALUES ({i}, 100)")).unwrap();
    }
    sess.execute_sql("COMMIT").unwrap();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..HISTORY {
        let from = (next() % ROWS as u64) as i64;
        let to = (next() % ROWS as u64) as i64;
        sess.execute_sql("BEGIN").unwrap();
        let part_of = |id: i64| staged_storage::partition_of_value(&Value::Int(id), parts);
        let mut stmts = [(part_of(from), from, "-"), (part_of(to), to, "+")];
        stmts.sort_unstable();
        for (_, id, op) in stmts {
            sess.execute_sql(&format!("UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"))
                .unwrap();
        }
        sess.execute_sql("COMMIT").unwrap();
    }
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = net::serve(listener, Arc::clone(&server), NetConfig::default()).unwrap();
    let addr = handle.local_addr().to_string();
    let expected = format!("[{}, {ROWS}]", ROWS * 100);

    // Each rep is one cold catch-up: fresh replica, same DDL in the same
    // creation order (table ids must align), feed from LSN zero.
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let rcat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
        rcat.create_table_partitioned("accounts", schema.clone(), parts, 0).unwrap();
        let replica = ReplicaServer::open(
            rcat,
            Arc::new(MemSegmentStore::new()),
            ReplicaConfig { partitions: parts, ..Default::default() },
        )
        .unwrap();
        let start = Instant::now();
        replica.start(addr.clone());
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let done = replica.feed_stats().applied_records > 0
                && replica.status().lag_records == 0
                && replica
                    .execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts")
                    .is_ok_and(|out| out.rows[0].to_string() == expected);
            if done {
                break;
            }
            assert!(Instant::now() < deadline, "replica never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let applied = replica.feed_stats().applied_records as f64;
        replica.shutdown();
        best = best.max(applied / elapsed);
    }
    handle.shutdown();
    server.shutdown();
    best
}

fn parse_bind(catalog: &Arc<Catalog>) -> f64 {
    let sqls: Vec<String> = (0..200)
        .map(|i| {
            format!(
                "SELECT ten, COUNT(*), SUM(unique2) FROM big \
                 WHERE unique1 BETWEEN {} AND {} GROUP BY ten",
                i,
                i + 100
            )
        })
        .collect();
    best_rate(sqls.len() as f64, || {
        for sql in &sqls {
            std::hint::black_box(plan(catalog, sql));
        }
    })
}

fn write_json(path: &str, calib: f64, metrics: &[Metric]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"bench\": \"perf_trajectory\",\n");
    s.push_str(&format!("  \"calibration_ops_per_sec\": {calib:.1},\n"));
    s.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"raw\": {:.2}, \"value\": {:.6}}}{}\n",
            m.name,
            m.unit,
            m.raw,
            m.normalized,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Minimal parser for the JSON this binary writes: extracts
/// (name, value) pairs from the metrics array.
fn read_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\": \"") else { continue };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(vpos) = line.find("\"value\": ") else { continue };
        let vtext: String = line[vpos + 9..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = vtext.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_10.json".into());
    let baseline_path = flag("--baseline");
    let gate: f64 = flag("--gate").and_then(|g| g.parse().ok()).unwrap_or(0.25);

    println!("calibrating...");
    let calib = calibrate();
    println!("calibration: {calib:.0} hash-ops/s");

    let catalog = mem_catalog(8192);
    load_wisconsin_table_partitioned(&catalog, "big", SCAN_ROWS, 5, 1).unwrap();

    let mut metrics = Vec::new();
    let mut push = |name: &'static str, unit: &'static str, raw: f64| {
        let normalized = raw / calib * 1e6; // work per million calibration ops
        println!("{name:>24}: {raw:>12.0} {unit} ({normalized:.4} normalized)");
        metrics.push(Metric { name, unit, raw, normalized });
    };
    push("volcano_scan_agg", "rows_per_sec", scan_agg(1, false));
    push("staged_scan_agg_p1", "rows_per_sec", scan_agg(1, true));
    push("staged_scan_agg_p4", "rows_per_sec", scan_agg(4, true));
    push("staged_point_lookup_p4", "lookups_per_sec", point_lookups(4));
    push("oltp_transfers_p1", "txns_per_sec", oltp_transfers(1));
    push("oltp_transfers_p4", "txns_per_sec", oltp_transfers(4));
    push("net_transfers_p2", "txns_per_sec", net_transfers(2));
    push("net_scale_p2", "txns_per_sec", net_scale(2, 1000));
    push("batch_p2", "stmts_per_sec", batch_queries(2));
    push("wal_recovery_p2", "recoveries_per_sec", wal_recovery(2));
    push("mixed_htap_p2", "scans_per_sec", mixed_htap(2));
    push("repl_catchup_p2", "records_per_sec", repl_catchup(2));
    push("parse_bind_optimize", "stmts_per_sec", parse_bind(&catalog));

    write_json(&out_path, calib, &metrics);

    if let Some(bpath) = baseline_path {
        let baseline = read_baseline(&bpath);
        let mut regressions = Vec::new();
        for (name, base_value) in &baseline {
            let Some(m) = metrics.iter().find(|m| m.name == name) else {
                println!("note: baseline metric {name} no longer produced");
                continue;
            };
            let floor = base_value * (1.0 - gate);
            let status = if m.normalized < floor { "REGRESSED" } else { "ok" };
            println!(
                "gate {name:>24}: now {:.6} vs baseline {base_value:.6} (floor {floor:.6}) {status}",
                m.normalized
            );
            if m.normalized < floor {
                regressions.push(name.clone());
            }
        }
        if !regressions.is_empty() {
            eprintln!(
                "PERF GATE FAILED: {} metric(s) regressed >{:.0}% vs {bpath}: {}",
                regressions.len(),
                gate * 100.0,
                regressions.join(", ")
            );
            std::process::exit(1);
        }
        println!("perf gate passed ({} metrics within {:.0}%)", baseline.len(), gate * 100.0);
    }
}
