//! Ablation A8: what snapshot reads buy (and cost) in an HTAP mix.
//!
//! The paper's staged pipeline keeps readers off the lock table; PR 8
//! adds the missing half — *consistency* — with MVCC snapshot scans.
//! This ablation prices that choice. One table of accounts, three reader
//! configurations at 1 and 2 partitions:
//!
//! - `quiesced plain`   — plain scans with no writers: the ceiling.
//! - `plain + writers`  — plain (non-snapshot) scans while transfer
//!   transactions commit. Lock-free but *inconsistent*: the scan may see
//!   half of a transfer, so the sum invariant cannot be asserted.
//! - `snapshot + writers` — `BEGIN READ ONLY` scans under the same write
//!   load. Consistent by construction; every scan asserts the balanced
//!   sum. The delta against row 2 is the version-overlay overhead; the
//!   delta against row 1 is the total cost of reading under write load.
//!
//! A final line reports writer throughput with a long-lived read-only
//! transaction pinned open the whole time: versions accumulate behind
//! the pin (GC cannot pass it) but writers must not slow down — readers
//! never block writers, and vice versa.
//!
//! Pass `quick` for the CI smoke run (smaller table, fewer scans).

use staged_server::types::ExecutionMode;
use staged_server::{ServerConfig, StagedServer};
use staged_storage::{
    partition_of_value, BufferPool, Catalog, Column, DataType, MemDisk, Schema, Tuple, Value,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Knobs {
    rows: i64,
    scans: usize,
    writers: usize,
    writer_secs: f64,
}

fn build_server(rows: i64, parts: usize) -> (Arc<Catalog>, Arc<StagedServer>) {
    let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 4096)));
    cat.create_table_partitioned(
        "accounts",
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("bal", DataType::Int)]),
        parts,
        0,
    )
    .unwrap();
    let t = cat.table("accounts").unwrap();
    for i in 0..rows {
        t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(100)])).unwrap();
    }
    cat.create_index("accounts_id", "accounts", "id").unwrap();
    cat.analyze_table("accounts").unwrap();
    let server = StagedServer::new(
        Arc::clone(&cat),
        ServerConfig {
            mode: ExecutionMode::Staged,
            partitions: parts,
            lock_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    );
    (cat, server)
}

/// One committed transfer between two random accounts, partitions locked
/// in canonical order (the bench measures throughput, not deadlock
/// recovery). Returns false when a statement failed and rolled back.
fn transfer(
    sess: &staged_server::StagedSession,
    parts: usize,
    rows: i64,
    next: &mut impl FnMut() -> u64,
) -> bool {
    let from = (next() % rows as u64) as i64;
    let to = (next() % rows as u64) as i64;
    if sess.execute_sql("BEGIN").is_err() {
        return false;
    }
    let mut stmts = [
        (partition_of_value(&Value::Int(from), parts), from, "-"),
        (partition_of_value(&Value::Int(to), parts), to, "+"),
    ];
    stmts.sort_unstable();
    for (_, id, op) in stmts {
        if sess
            .execute_sql(&format!("UPDATE accounts SET bal = bal {op} 1 WHERE id = {id}"))
            .is_err()
        {
            let _ = sess.execute_sql("ROLLBACK");
            return false;
        }
    }
    sess.execute_sql("COMMIT").is_ok()
}

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = 0x9e3779b97f4a7c15u64 ^ (seed + 1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Reader scans/second with `writers` transfer sessions running (0 for
/// the quiesced ceiling). `snapshot` selects the `BEGIN READ ONLY` path;
/// only then can the balanced sum be asserted.
fn reader_rate(k: &Knobs, parts: usize, writers: usize, snapshot: bool) -> f64 {
    let (_cat, server) = build_server(k.rows, parts);
    let stop = AtomicBool::new(false);
    let rate = std::thread::scope(|scope| {
        for sid in 0..writers {
            let server = &server;
            let stop = &stop;
            let rows = k.rows;
            scope.spawn(move || {
                let sess = server.session();
                let mut next = xorshift(sid as u64);
                while !stop.load(Ordering::Relaxed) {
                    transfer(&sess, parts, rows, &mut next);
                }
            });
        }
        let sess = server.session();
        let start = Instant::now();
        for _ in 0..k.scans {
            if snapshot {
                sess.execute_sql("BEGIN READ ONLY").unwrap();
            }
            let out = sess.execute_sql("SELECT SUM(bal), COUNT(*) FROM accounts").unwrap();
            if snapshot {
                assert_eq!(
                    out.rows[0].to_string(),
                    format!("[{}, {}]", k.rows * 100, k.rows),
                    "snapshot scan saw a torn transfer"
                );
                sess.execute_sql("COMMIT").unwrap();
            }
        }
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        k.scans as f64 / elapsed.as_secs_f64()
    });
    server.shutdown();
    rate
}

/// Writer transactions/second for `writer_secs` with one read-only
/// transaction held open the entire window (the worst case for GC: every
/// before-image the writers create stays reachable behind the pin).
fn writers_under_pin(k: &Knobs, parts: usize) -> (f64, u64) {
    let (cat, server) = build_server(k.rows, parts);
    let reader = server.session();
    reader.execute_sql("BEGIN READ ONLY").unwrap();
    let before = reader.execute_sql("SELECT SUM(bal) FROM accounts").unwrap();

    let committed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for sid in 0..k.writers {
            let server = &server;
            let (stop, committed) = (&stop, &committed);
            let rows = k.rows;
            scope.spawn(move || {
                let sess = server.session();
                let mut next = xorshift(100 + sid as u64);
                while !stop.load(Ordering::Relaxed) {
                    if transfer(&sess, parts, rows, &mut next) {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_secs_f64(k.writer_secs));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    // The pinned snapshot is still exactly the pre-workload state.
    let after = reader.execute_sql("SELECT SUM(bal) FROM accounts").unwrap();
    assert_eq!(after.rows[0].to_string(), before.rows[0].to_string());
    reader.execute_sql("COMMIT").unwrap();
    let dead = cat.table("accounts").unwrap().versions.stats().dead;
    drop(reader);
    server.shutdown();
    (committed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(), dead)
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let k = if quick {
        Knobs { rows: 1024, scans: 8, writers: 2, writer_secs: 0.5 }
    } else {
        Knobs { rows: 8192, scans: 30, writers: 2, writer_secs: 2.0 }
    };

    println!("A8: MVCC snapshot reads under an HTAP mix ({} rows)", k.rows);
    println!("{:<24} {:>12} {:>12}", "reader configuration", "p1 scans/s", "p2 scans/s");
    for (label, writers, snapshot) in [
        ("quiesced plain", 0usize, false),
        ("plain + writers", k.writers, false),
        ("snapshot + writers", k.writers, true),
    ] {
        let p1 = reader_rate(&k, 1, writers, snapshot);
        let p2 = reader_rate(&k, 2, writers, snapshot);
        println!("{label:<24} {p1:>12.1} {p2:>12.1}");
    }
    let (txns, dead) = writers_under_pin(&k, 2);
    println!(
        "writers under a pinned read-only txn (p2): {txns:.1} txns/s, \
         {dead} dead versions retained behind the pin"
    );
}
