//! Reproduce **Figure 2**: "% of max attainable throughput vs thread-pool
//! size" for Workload A (short I/O-bound selections) and Workload B (long
//! CPU-bound joins).
//!
//! Default mode runs the calibrated virtual-time simulator (deterministic;
//! see `staged_sim::threadpool`). Pass `--real` to also run a scaled-down
//! wall-clock version on the actual engine with a latency-simulating disk.

use staged_bench::{headline, slow_catalog};
use staged_planner::PlannerConfig;
use staged_server::ThreadedServer;
use staged_sim::threadpool::{figure2_sweep, Figure2Workload};
use staged_workload::{drive_threaded, load_wisconsin_table, WorkloadA};

fn main() {
    let sizes = [1usize, 2, 3, 5, 8, 10, 15, 20, 30, 50, 75, 100, 150, 200];
    headline("Figure 2 — simulated server (deterministic)");
    let a = figure2_sweep(Figure2Workload::A, &sizes, 7);
    let b = figure2_sweep(Figure2Workload::B, &sizes, 7);
    println!("{:>8} {:>14} {:>14}", "threads", "Workload A %", "Workload B %");
    for i in 0..sizes.len() {
        println!("{:>8} {:>14.1} {:>14.1}", sizes[i], a[i].1, b[i].1);
    }
    println!(
        "\nPaper shape: A rises until I/O fully overlaps then stays flat;\n\
         B is flat while the pool's working sets fit the cache (≤5 threads)\n\
         and degrades monotonically beyond."
    );

    if std::env::args().any(|a| a == "--real") {
        headline("Figure 2 — wall-clock, real engine (scaled down)");
        let real_sizes = [1usize, 2, 4, 8, 16, 32];
        let queries = 300;
        println!("{:>8} {:>14} {:>12}", "threads", "queries/s", "relative %");
        let mut results = Vec::new();
        for &m in &real_sizes {
            // Cold-ish cache: small pool, 200 µs per page I/O.
            let cat = slow_catalog(96, 200);
            load_wisconsin_table(&cat, "wisc", 20_000, 42).unwrap();
            let server = ThreadedServer::new(cat, m, PlannerConfig::default());
            let mut wa = WorkloadA::new("wisc", 20_000, 9);
            let secs = drive_threaded(&server, || wa.next_query(), queries, m * 4);
            server.shutdown();
            results.push((m, queries as f64 / secs));
        }
        let max = results.iter().map(|r| r.1).fold(0.0_f64, f64::max);
        for (m, x) in results {
            println!("{m:>8} {x:>14.1} {:>12.1}", 100.0 * x / max);
        }
    }
}
