//! Reproduce **Table 1**: classification of data and code references across
//! all queries (private / shared / common × data / code), measured by the
//! engine's reference instrumentation over a mixed Wisconsin workload.

use staged_bench::{headline, mem_catalog};
use staged_cachesim::tracker::{RefClass, RefTracker};
use staged_engine::context::ExecContext;
use staged_server::pipeline::{self, Exec, Parsed};
use staged_storage::wal::Wal;
use staged_workload::{load_wisconsin_table, WorkloadA, WorkloadB};
use std::sync::Arc;

fn main() {
    let catalog = mem_catalog(2048);
    load_wisconsin_table(&catalog, "wisc1", 10_000, 1).unwrap();
    load_wisconsin_table(&catalog, "wisc2", 2_000, 2).unwrap();
    let tracker = Arc::new(RefTracker::new());
    let ctx = ExecContext::new(Arc::clone(&catalog)).with_tracker(Arc::clone(&tracker));
    let wal = Wal::in_memory();

    let mut wa = WorkloadA::new("wisc1", 10_000, 11);
    let mut wb = WorkloadB::new("wisc1", "wisc2", 12);
    let mut sqls: Vec<String> = (0..40).map(|_| wa.next_query().sql).collect();
    sqls.extend((0..10).map(|_| wb.next_query().sql));

    for (i, sql) in sqls.iter().enumerate() {
        let action = match pipeline::parse_stage(sql, &catalog, Some(&tracker)).unwrap() {
            Parsed::NeedsPlan(bound) => {
                pipeline::optimize_stage(&bound, &catalog, &Default::default()).unwrap()
            }
            Parsed::Action(a) => *a,
        };
        pipeline::execute_stage(action, &ctx, &wal, i as u64, Exec::Volcano, None).unwrap();
    }

    headline("Table 1 (measured): data/code references across 50 queries");
    let snap = tracker.snapshot();
    println!("{snap}");
    println!(
        "fractions: private {:.1}%, shared {:.1}%, common {:.1}%",
        100.0 * snap.class_fraction(RefClass::Private),
        100.0 * snap.class_fraction(RefClass::Shared),
        100.0 * snap.class_fraction(RefClass::Common),
    );

    headline("Table 1 (paper, qualitative)");
    println!("{:<10} {:<44} code", "class", "data");
    println!("{:<10} {:<44} —", "PRIVATE", "query execution plan, client state, results");
    println!("{:<10} {:<44} operator-specific code", "SHARED", "tables, indices");
    println!("{:<10} {:<44} rest of DBMS code", "COMMON", "catalog, symbol table");
    println!(
        "\nReading: the measured matrix instantiates the paper's taxonomy on a live\n\
         workload — every class the paper names is populated, private code stays empty,\n\
         and shared data (table/index pages) dominates raw reference counts, which is\n\
         why batching queries per module (stage) pays off."
    );
}
