//! Ablation A4 (paper §5.4): run-time multi-query optimization via shared
//! scans. N concurrent scan-heavy queries over one table, with the fscan
//! convoy enabled and disabled; reports physical page reads and wall time.

use staged_bench::slow_catalog;
use staged_engine::context::ExecContext;
use staged_engine::staged::{EngineConfig, StagedEngine};
use staged_planner::{plan_select, PlannerConfig};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_workload::load_wisconsin_table;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n_queries = 8;
    println!("{n_queries} concurrent aggregation scans over one 40k-row table, 50 µs/page disk");
    println!("{:>14} {:>14} {:>14} {:>12}", "shared scans", "disk reads", "convoys", "time (ms)");
    for shared in [false, true] {
        // Small pool (table does not fit) + per-page latency: scans hit disk.
        let catalog = slow_catalog(64, 50);
        load_wisconsin_table(&catalog, "big", 40_000, 5).unwrap();
        let disk_reads_before = catalog.pool().disk().stats().reads;
        let ctx = ExecContext::new(Arc::clone(&catalog));
        let engine = StagedEngine::new(
            ctx,
            EngineConfig { shared_scans: shared, workers_per_stage: 2, ..Default::default() },
        );
        let plans: Vec<_> = (0..n_queries)
            .map(|i| {
                let sql = format!("SELECT COUNT(*), SUM(unique2) FROM big WHERE twenty = {i}");
                let Statement::Select(sel) = parse_statement(&sql).unwrap() else { panic!() };
                let bound = Binder::new(BindContext::new(&catalog)).bind_select(sel).unwrap();
                // Force sequential scans (no index on `twenty`).
                plan_select(&bound, &catalog, &PlannerConfig::default()).unwrap()
            })
            .collect();
        let start = Instant::now();
        // Stagger arrivals: each query starts mid-way through the previous
        // one's scan, the situation §5.4 targets ("a query that arrives at a
        // stage and finds an ongoing computation"). Without sharing each
        // straggler re-reads the table through the too-small pool; with
        // sharing it attaches to the convoy and wraps around.
        let handles: Vec<_> = plans
            .iter()
            .map(|p| {
                let h = engine.execute(p);
                std::thread::sleep(std::time::Duration::from_millis(20));
                h
            })
            .collect();
        for h in handles {
            h.collect().unwrap();
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let reads = catalog.pool().disk().stats().reads - disk_reads_before;
        let convoys =
            engine.registry.stats.groups_started.load(std::sync::atomic::Ordering::Relaxed);
        engine.shutdown();
        println!("{:>14} {reads:>14} {convoys:>14} {ms:>12.1}", if shared { "on" } else { "off" });
    }
    println!(
        "\nExpected: without sharing every query reads the table through the small\n\
         pool itself (≈ 8× the page count); with sharing one circular convoy feeds\n\
         all eight queries, cutting physical reads by nearly 8× and wall time with it."
    );
}
