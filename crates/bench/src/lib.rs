//! Shared helpers for the reproduction binaries.

use staged_storage::{BufferPool, Catalog, MemDisk};
use std::sync::Arc;

/// Print a separator headline.
pub fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// Render one numeric table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:>14}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// A fresh in-memory catalog with the given buffer-pool size (frames).
pub fn mem_catalog(frames: usize) -> Arc<Catalog> {
    Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), frames)))
}

/// A catalog whose disk charges `latency_us` per page I/O (for I/O-bound
/// experiments).
pub fn slow_catalog(frames: usize, latency_us: u64) -> Arc<Catalog> {
    let disk = MemDisk::new().with_latency(std::time::Duration::from_micros(latency_us));
    Arc::new(Catalog::new(BufferPool::new(Arc::new(disk), frames)))
}
