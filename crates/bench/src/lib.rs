//! Shared helpers for the reproduction binaries.

use staged_storage::{BufferPool, Catalog, MemDisk};
use std::sync::Arc;

/// Print a separator headline.
pub fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// Render one numeric table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:>14}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// A fresh in-memory catalog with the given buffer-pool size (frames).
pub fn mem_catalog(frames: usize) -> Arc<Catalog> {
    Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), frames)))
}

/// A catalog whose disk charges `latency_us` per page I/O (for I/O-bound
/// experiments).
pub fn slow_catalog(frames: usize, latency_us: u64) -> Arc<Catalog> {
    let disk = MemDisk::new().with_latency(std::time::Duration::from_micros(latency_us));
    Arc::new(Catalog::new(BufferPool::new(Arc::new(disk), frames)))
}

/// The PR 5 cohort-scheduling closed loop, shared by `ablation_batch` and
/// `perf_trajectory`'s `batch_p2` metric so the knob sweep and the CI
/// gate measure the *same* workload: `clients` threads each pipeline
/// `burst` small scan-aggregates into the staged server's admission
/// queue and collect the replies, `rounds` times. Returns statements per
/// second; asserts every reply carries the expected 5 groups.
pub fn drive_scan_bursts(
    server: &Arc<staged_server::StagedServer>,
    clients: usize,
    rounds: usize,
    burst: usize,
) -> f64 {
    let sql = "SELECT ten, COUNT(*), SUM(unique2) FROM big WHERE two = 0 GROUP BY ten";
    let total = (clients * rounds * burst) as f64;
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                for _ in 0..rounds {
                    let pending: Vec<_> = (0..burst).map(|_| server.submit(sql)).collect();
                    for rx in pending {
                        let out = rx.recv().expect("reply").expect("query");
                        assert_eq!(out.rows.len(), 5, "scan lost groups");
                    }
                }
            });
        }
    });
    total / start.elapsed().as_secs_f64()
}
