//! Criterion micro-benchmarks for the core components.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use staged_cachesim::{CacheConfig, CacheSim};
use staged_core::policy::Policy;
use staged_core::queue::StageQueue;
use staged_engine::context::ExecContext;
use staged_engine::volcano;
use staged_planner::{plan_select, PlannerConfig};
use staged_sim::prodline::{run_prodline, ProdlineConfig};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_storage::btree::BTree;
use staged_storage::{BufferPool, Catalog, MemDisk, PageId, Rid};
use staged_workload::load_wisconsin_table;
use std::sync::Arc;

fn bench_parser(c: &mut Criterion) {
    let sql = "SELECT t.a, COUNT(*), SUM(t.v) FROM t, u WHERE t.a = u.a AND t.b \
               BETWEEN 10 AND 90 AND u.s LIKE 'abc%' GROUP BY t.a HAVING COUNT(*) > 2 \
               ORDER BY t.a DESC LIMIT 100";
    c.bench_function("sql_parse", |b| {
        b.iter(|| parse_statement(std::hint::black_box(sql)).unwrap())
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree_insert_10k", |b| {
        b.iter_batched(
            || BTree::create(BufferPool::new(Arc::new(MemDisk::new()), 512)).unwrap(),
            |t| {
                for i in 0..10_000i64 {
                    t.insert((i * 2654435761) % 100_000, Rid::new(PageId(0), 0)).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    let tree = BTree::create(BufferPool::new(Arc::new(MemDisk::new()), 512)).unwrap();
    for i in 0..50_000i64 {
        tree.insert(i, Rid::new(PageId((i / 100) as u64), (i % 100) as u16)).unwrap();
    }
    c.bench_function("btree_point_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 50_000;
            tree.search(std::hint::black_box(k)).unwrap()
        })
    });
    c.bench_function("btree_range_100", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 49_000;
            tree.range(Some(k), Some(k + 99)).unwrap()
        })
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 128);
    let pages: Vec<PageId> = (0..64).map(|_| pool.new_page().unwrap().page_id()).collect();
    c.bench_function("bufferpool_fetch_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % pages.len();
            pool.fetch(std::hint::black_box(pages[i])).unwrap()
        })
    });
}

fn bench_queue(c: &mut Criterion) {
    c.bench_function("stage_queue_enqueue_dequeue", |b| {
        let q: StageQueue<u64> = StageQueue::new(1024);
        b.iter(|| {
            q.enqueue(1).unwrap();
            q.dequeue().unwrap()
        })
    });
}

fn bench_cachesim(c: &mut Criterion) {
    c.bench_function("cachesim_touch_16k", |b| {
        let mut sim = CacheSim::new(CacheConfig::l1_like());
        b.iter(|| sim.touch_range(0, 16 * 1024))
    });
}

fn bench_joins(c: &mut Criterion) {
    let catalog = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 2048)));
    load_wisconsin_table(&catalog, "ja", 5_000, 1).unwrap();
    load_wisconsin_table(&catalog, "jb", 5_000, 2).unwrap();
    let ctx = ExecContext::new(Arc::clone(&catalog));
    let plan_for = |cfg: &PlannerConfig| {
        let sql = "SELECT COUNT(*) FROM ja, jb WHERE ja.unique1 = jb.unique1";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let bound = Binder::new(BindContext::new(&catalog)).bind_select(sel).unwrap();
        plan_select(&bound, &catalog, cfg).unwrap()
    };
    let hash_plan = plan_for(&PlannerConfig::default());
    let merge_plan = plan_for(&PlannerConfig { enable_hash_join: false, ..Default::default() });
    let mut g = c.benchmark_group("join_5k_x_5k");
    g.sample_size(10);
    g.bench_function("hash", |b| b.iter(|| volcano::run(&hash_plan, &ctx).unwrap()));
    g.bench_function("merge", |b| b.iter(|| volcano::run(&merge_plan, &ctx).unwrap()));
    g.finish();
}

fn bench_prodline(c: &mut Criterion) {
    let mut g = c.benchmark_group("prodline_sim_60s");
    g.sample_size(10);
    for policy in [Policy::Fcfs, Policy::DGated] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let mut cfg = ProdlineConfig::figure5(policy, 0.3);
                cfg.horizon = 60.0;
                cfg.warmup = 6.0;
                run_prodline(&cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_btree,
    bench_buffer_pool,
    bench_queue,
    bench_cachesim,
    bench_joins,
    bench_prodline
);
criterion_main!(benches);
