//! # staged-wire — the text wire protocol
//!
//! The shared vocabulary of the network front end: framing limits, request
//! commands, response tags, field escaping and stable error codes. Both the
//! server (`staged-server::net`) and the client library (`staged-dbclient`)
//! depend on this crate and nothing else, so the protocol definition lives
//! in exactly one place and the client stays dependency-light.
//!
//! The protocol itself is specified in `PROTOCOL.md` at the repository
//! root; this crate is the executable form of that document. In one line:
//! newline-delimited UTF-8 text, one request per line, responses tagged by
//! their first token (`META` / `ROW` / `OK` / `ERR` / `PONG` / `BYE`), with
//! tab-separated `ROW` fields escaped so values round-trip byte-exactly.

#![deny(missing_docs)]

use std::fmt;

/// Protocol version. Servers greet connections with `HELLO <version>`;
/// clients refuse to talk to a version they do not understand.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one request or response line, in bytes (newline included).
/// Longer lines are a protocol error: the server replies `ERR PROTO` and
/// closes the connection rather than buffering without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The NULL field marker inside `ROW` lines (Postgres `COPY` convention).
pub const NULL_FIELD: &str = "\\N";

/// Stable machine-readable error codes carried on `ERR` lines.
///
/// Codes are part of the protocol: clients branch on them (e.g. retry on
/// [`ErrorCode::Overloaded`], send `ROLLBACK` on [`ErrorCode::TxnAborted`])
/// and must never need to parse the human-readable message that follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The statement could not be parsed, bound or planned.
    Sql,
    /// The statement failed during execution (storage, expression
    /// evaluation, lock timeout, …).
    Exec,
    /// The session's transaction was aborted server-side; every statement
    /// is refused until the client acknowledges with `COMMIT`/`ROLLBACK`.
    TxnAborted,
    /// The statement writes inside a `BEGIN READ ONLY` transaction; only
    /// reads are allowed until `COMMIT`/`ROLLBACK`.
    ReadOnly,
    /// The server shed the request (admission queue or connection limit).
    Overloaded,
    /// The server is shutting down.
    Shutdown,
    /// Unknown prepared-statement name.
    UnknownPrepared,
    /// The request line violated the wire protocol itself.
    Proto,
}

impl ErrorCode {
    /// The code's wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Sql => "SQL",
            ErrorCode::Exec => "EXEC",
            ErrorCode::TxnAborted => "TXN_ABORTED",
            ErrorCode::ReadOnly => "READ_ONLY",
            ErrorCode::Overloaded => "OVERLOADED",
            ErrorCode::Shutdown => "SHUTDOWN",
            ErrorCode::UnknownPrepared => "UNKNOWN_PREPARED",
            ErrorCode::Proto => "PROTO",
        }
    }

    /// Parse a wire spelling back into a code.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "SQL" => ErrorCode::Sql,
            "EXEC" => ErrorCode::Exec,
            "TXN_ABORTED" => ErrorCode::TxnAborted,
            "READ_ONLY" => ErrorCode::ReadOnly,
            "OVERLOADED" => ErrorCode::Overloaded,
            "SHUTDOWN" => ErrorCode::Shutdown,
            "UNKNOWN_PREPARED" => ErrorCode::UnknownPrepared,
            "PROTO" => ErrorCode::Proto,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `PING` — liveness probe, answered `PONG` by the network layer
    /// without entering the statement pipeline.
    Ping,
    /// `QUIT` — orderly goodbye; the server answers `BYE` and closes.
    Quit,
    /// `STATS` — per-stage monitor snapshot as a result set.
    Stats,
    /// `CHECKPOINT` — quiesce writers, snapshot the database, truncate
    /// the WAL below the snapshot's LSN. Answered `OK` with a
    /// `CHECKPOINT …` message once the checkpoint stage finishes.
    Checkpoint,
    /// `QUERY <sql>` (or the `BEGIN`/`COMMIT`/`ROLLBACK` shorthands) — run
    /// one SQL statement under the connection's session.
    Query(String),
}

/// Parse one request line into a [`Command`].
///
/// The command word is case-insensitive; everything after `QUERY ` is the
/// SQL text, verbatim. `BEGIN`, `BEGIN READ ONLY`, `COMMIT` and `ROLLBACK`
/// are accepted as bare commands and normalised to the equivalent `QUERY`;
/// `READ ONLY` is the only argument `BEGIN` accepts.
///
/// ```
/// use staged_wire::{parse_command, Command};
/// assert_eq!(parse_command("PING").unwrap(), Command::Ping);
/// assert_eq!(
///     parse_command("query SELECT 1 + 1").unwrap(),
///     Command::Query("SELECT 1 + 1".into())
/// );
/// assert_eq!(parse_command("BEGIN").unwrap(), Command::Query("BEGIN".into()));
/// assert!(parse_command("FLY me to the moon").is_err());
/// ```
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (word, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i + 1..].trim_start()),
        None => (line, ""),
    };
    let upper = word.to_ascii_uppercase();
    match upper.as_str() {
        "BEGIN" if rest.eq_ignore_ascii_case("READ ONLY") => {
            Ok(Command::Query("BEGIN READ ONLY".into()))
        }
        "PING" | "QUIT" | "STATS" | "CHECKPOINT" | "BEGIN" | "COMMIT" | "ROLLBACK"
            if !rest.is_empty() =>
        {
            Err(format!("{upper} takes no argument"))
        }
        "PING" => Ok(Command::Ping),
        "QUIT" => Ok(Command::Quit),
        "STATS" => Ok(Command::Stats),
        "CHECKPOINT" => Ok(Command::Checkpoint),
        "BEGIN" | "COMMIT" | "ROLLBACK" => Ok(Command::Query(upper)),
        "QUERY" if rest.is_empty() => Err("QUERY requires a SQL statement".into()),
        "QUERY" => Ok(Command::Query(rest.to_string())),
        "" => Err("empty command".into()),
        other => Err(format!("unknown command {other}")),
    }
}

/// Escape one `ROW` field so tabs, newlines and backslashes in the value
/// survive line-based framing. The inverse is [`unescape_field`].
pub fn escape_field(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_field`]. Unknown escapes are a protocol error.
pub fn unescape_field(wire: &str) -> Result<String, String> {
    let mut out = String::with_capacity(wire.len());
    let mut chars = wire.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape \\{other}")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Escape the free-text trailer of `OK`/`ERR` lines (newlines only; tabs
/// are fine inside a message). The inverse is [`unescape_message`].
pub fn escape_message(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

/// Undo [`escape_message`]. Lenient where [`unescape_field`] is strict:
/// an unrecognised escape passes through verbatim, because a mangled
/// human-readable trailer must never stop a client from surfacing the
/// error it decorates.
pub fn unescape_message(wire: &str) -> String {
    let mut out = String::with_capacity(wire.len());
    let mut chars = wire.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_case_insensitively() {
        assert_eq!(parse_command("ping\r\n").unwrap(), Command::Ping);
        assert_eq!(parse_command("Quit").unwrap(), Command::Quit);
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("checkpoint").unwrap(), Command::Checkpoint);
        assert_eq!(parse_command("commit").unwrap(), Command::Query("COMMIT".into()));
        assert_eq!(
            parse_command("begin read only").unwrap(),
            Command::Query("BEGIN READ ONLY".into())
        );
        assert_eq!(
            parse_command("QUERY SELECT * FROM t").unwrap(),
            Command::Query("SELECT * FROM t".into())
        );
    }

    #[test]
    fn malformed_commands_are_rejected() {
        assert!(parse_command("").is_err());
        assert!(parse_command("QUERY").is_err());
        assert!(parse_command("PING now").is_err());
        assert!(parse_command("CHECKPOINT now").is_err());
        assert!(parse_command("BEGIN work").is_err());
        assert!(parse_command("BEGIN READ").is_err());
        assert!(parse_command("EXPLODE").is_err());
    }

    #[test]
    fn field_escaping_round_trips() {
        for raw in ["", "plain", "tab\there", "nl\nthere", "back\\slash", "\r\n\t\\", "\\N"] {
            let wire = escape_field(raw);
            assert_eq!(unescape_field(&wire).unwrap(), raw);
        }
    }

    #[test]
    fn escaped_fields_never_contain_framing_bytes() {
        for raw in ["tab\there", "nl\nthere", "cr\rthere"] {
            let wire = escape_field(raw);
            assert!(!wire.contains('\t'));
            assert!(!wire.contains('\n'));
            assert!(!wire.contains('\r'));
        }
    }

    #[test]
    fn bad_escapes_are_errors() {
        assert!(unescape_field("\\x").is_err());
        assert!(unescape_field("trailing\\").is_err());
    }

    #[test]
    fn message_escaping_round_trips() {
        for raw in ["plain", "two\nlines", "back\\slash", "cr\rhere", "tab\tstays", ""] {
            assert_eq!(unescape_message(&escape_message(raw)), raw);
        }
        // Lenient decoding: unknown escapes pass through, never error.
        assert_eq!(unescape_message("odd \\x end\\"), "odd \\x end\\");
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Sql,
            ErrorCode::Exec,
            ErrorCode::TxnAborted,
            ErrorCode::ReadOnly,
            ErrorCode::Overloaded,
            ErrorCode::Shutdown,
            ErrorCode::UnknownPrepared,
            ErrorCode::Proto,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("NOPE"), None);
    }
}
