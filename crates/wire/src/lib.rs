//! # staged-wire — the text wire protocol
//!
//! The shared vocabulary of the network front end: framing limits, request
//! commands, response tags, field escaping and stable error codes. Both the
//! server (`staged-server::net`) and the client library (`staged-dbclient`)
//! depend on this crate and nothing else, so the protocol definition lives
//! in exactly one place and the client stays dependency-light.
//!
//! The protocol itself is specified in `PROTOCOL.md` at the repository
//! root; this crate is the executable form of that document. In one line:
//! newline-delimited UTF-8 text, one request per line, responses tagged by
//! their first token (`META` / `ROW` / `OK` / `ERR` / `PONG` / `BYE`), with
//! tab-separated `ROW` fields escaped so values round-trip byte-exactly.

#![deny(missing_docs)]

use std::fmt;

/// Protocol version. Servers greet connections with `HELLO <version>`;
/// clients refuse to talk to a version they do not understand.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one request or response line, in bytes (newline included).
/// Longer lines are a protocol error: the server replies `ERR PROTO` and
/// closes the connection rather than buffering without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The NULL field marker inside `ROW` lines (Postgres `COPY` convention).
pub const NULL_FIELD: &str = "\\N";

/// Stable machine-readable error codes carried on `ERR` lines.
///
/// Codes are part of the protocol: clients branch on them (e.g. retry on
/// [`ErrorCode::Overloaded`], send `ROLLBACK` on [`ErrorCode::TxnAborted`])
/// and must never need to parse the human-readable message that follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The statement could not be parsed, bound or planned.
    Sql,
    /// The statement failed during execution (storage, expression
    /// evaluation, lock timeout, …).
    Exec,
    /// The session's transaction was aborted server-side; every statement
    /// is refused until the client acknowledges with `COMMIT`/`ROLLBACK`.
    TxnAborted,
    /// The statement writes inside a `BEGIN READ ONLY` transaction; only
    /// reads are allowed until `COMMIT`/`ROLLBACK`.
    ReadOnly,
    /// The server shed the request (admission queue or connection limit).
    Overloaded,
    /// The server is shutting down.
    Shutdown,
    /// Unknown prepared-statement name.
    UnknownPrepared,
    /// The request line violated the wire protocol itself.
    Proto,
    /// The statement writes on a read-only replica. Replicas apply shipped
    /// WAL from their primary and refuse all local writes; retry the
    /// statement against the primary.
    ReadOnlyReplica,
}

impl ErrorCode {
    /// The code's wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Sql => "SQL",
            ErrorCode::Exec => "EXEC",
            ErrorCode::TxnAborted => "TXN_ABORTED",
            ErrorCode::ReadOnly => "READ_ONLY",
            ErrorCode::Overloaded => "OVERLOADED",
            ErrorCode::Shutdown => "SHUTDOWN",
            ErrorCode::UnknownPrepared => "UNKNOWN_PREPARED",
            ErrorCode::Proto => "PROTO",
            ErrorCode::ReadOnlyReplica => "READ_ONLY_REPLICA",
        }
    }

    /// Parse a wire spelling back into a code.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "SQL" => ErrorCode::Sql,
            "EXEC" => ErrorCode::Exec,
            "TXN_ABORTED" => ErrorCode::TxnAborted,
            "READ_ONLY" => ErrorCode::ReadOnly,
            "OVERLOADED" => ErrorCode::Overloaded,
            "SHUTDOWN" => ErrorCode::Shutdown,
            "UNKNOWN_PREPARED" => ErrorCode::UnknownPrepared,
            "PROTO" => ErrorCode::Proto,
            "READ_ONLY_REPLICA" => ErrorCode::ReadOnlyReplica,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `PING` — liveness probe, answered `PONG` by the network layer
    /// without entering the statement pipeline.
    Ping,
    /// `QUIT` — orderly goodbye; the server answers `BYE` and closes.
    Quit,
    /// `STATS` — per-stage monitor snapshot as a result set.
    Stats,
    /// `CHECKPOINT` — quiesce writers, snapshot the database, truncate
    /// the WAL below the snapshot's LSN. Answered `OK` with a
    /// `CHECKPOINT …` message once the checkpoint stage finishes.
    Checkpoint,
    /// `QUERY <sql>` (or the `BEGIN`/`COMMIT`/`ROLLBACK` shorthands) — run
    /// one SQL statement under the connection's session.
    Query(String),
    /// `REPLICATE <segment:offset>` — turn this connection into a WAL
    /// shipping feed. The server streams `WALREC` lines for every
    /// committed record at or above the given LSN, punctuated by `WALEOF`
    /// watermarks; the client sends `ACK <lsn>` lines upstream. The
    /// connection never returns to request/response framing.
    Replicate {
        /// Resume segment (the replica's durable applied LSN).
        segment: u64,
        /// Resume offset within the segment.
        offset: u64,
    },
    /// `SUBSCRIBE <table> [WHERE <predicate>]` — turn this connection into
    /// a change feed: after the `OK`, every transaction that commits a
    /// change to `table` (optionally filtered by the predicate) is streamed
    /// as `CHANGE` lines, in commit order, whole transactions at a time.
    /// Only `UNSUBSCRIBE`, `PING` and `QUIT` are accepted while subscribed.
    Subscribe {
        /// The table to watch.
        table: String,
        /// Optional `WHERE` predicate source text (without the keyword),
        /// bound against the table's columns server-side.
        predicate: Option<String>,
    },
    /// `UNSUBSCRIBE` — end the connection's change feed and return to
    /// request/response framing. Answered `OK UNSUBSCRIBE`; `CHANGE` lines
    /// already in flight may still arrive before the `OK`.
    Unsubscribe,
}

/// Parse one request line into a [`Command`].
///
/// The command word is case-insensitive; everything after `QUERY ` is the
/// SQL text, verbatim. `BEGIN`, `BEGIN READ ONLY`, `COMMIT` and `ROLLBACK`
/// are accepted as bare commands and normalised to the equivalent `QUERY`;
/// `READ ONLY` is the only argument `BEGIN` accepts.
///
/// ```
/// use staged_wire::{parse_command, Command};
/// assert_eq!(parse_command("PING").unwrap(), Command::Ping);
/// assert_eq!(
///     parse_command("query SELECT 1 + 1").unwrap(),
///     Command::Query("SELECT 1 + 1".into())
/// );
/// assert_eq!(parse_command("BEGIN").unwrap(), Command::Query("BEGIN".into()));
/// assert!(parse_command("FLY me to the moon").is_err());
/// ```
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (word, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i + 1..].trim_start()),
        None => (line, ""),
    };
    let upper = word.to_ascii_uppercase();
    match upper.as_str() {
        "BEGIN" if rest.eq_ignore_ascii_case("READ ONLY") => {
            Ok(Command::Query("BEGIN READ ONLY".into()))
        }
        "PING" | "QUIT" | "STATS" | "CHECKPOINT" | "BEGIN" | "COMMIT" | "ROLLBACK"
            if !rest.is_empty() =>
        {
            Err(format!("{upper} takes no argument"))
        }
        "PING" => Ok(Command::Ping),
        "QUIT" => Ok(Command::Quit),
        "STATS" => Ok(Command::Stats),
        "CHECKPOINT" => Ok(Command::Checkpoint),
        "BEGIN" | "COMMIT" | "ROLLBACK" => Ok(Command::Query(upper)),
        "QUERY" if rest.is_empty() => Err("QUERY requires a SQL statement".into()),
        "QUERY" => Ok(Command::Query(rest.to_string())),
        "REPLICATE" if rest.is_empty() => {
            Err("REPLICATE requires a from-LSN (segment:offset)".into())
        }
        "REPLICATE" => {
            let (segment, offset) = parse_lsn(rest)?;
            Ok(Command::Replicate { segment, offset })
        }
        "SUBSCRIBE" if rest.is_empty() => Err("SUBSCRIBE requires a table name".into()),
        "SUBSCRIBE" => {
            let (table, tail) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i + 1..].trim_start()),
                None => (rest, ""),
            };
            if tail.is_empty() {
                return Ok(Command::Subscribe { table: table.to_string(), predicate: None });
            }
            let (kw, pred) = match tail.find(char::is_whitespace) {
                Some(i) => (&tail[..i], tail[i + 1..].trim_start()),
                None => (tail, ""),
            };
            if !kw.eq_ignore_ascii_case("WHERE") || pred.is_empty() {
                return Err("SUBSCRIBE takes a table name and an optional WHERE clause".into());
            }
            Ok(Command::Subscribe { table: table.to_string(), predicate: Some(pred.to_string()) })
        }
        "UNSUBSCRIBE" if !rest.is_empty() => Err("UNSUBSCRIBE takes no argument".into()),
        "UNSUBSCRIBE" => Ok(Command::Unsubscribe),
        "" => Err("empty command".into()),
        other => Err(format!("unknown command {other}")),
    }
}

/// Escape one `ROW` field so tabs, newlines and backslashes in the value
/// survive line-based framing. The inverse is [`unescape_field`].
pub fn escape_field(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_field`]. Unknown escapes are a protocol error.
pub fn unescape_field(wire: &str) -> Result<String, String> {
    let mut out = String::with_capacity(wire.len());
    let mut chars = wire.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape \\{other}")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Escape the free-text trailer of `OK`/`ERR` lines (newlines only; tabs
/// are fine inside a message). The inverse is [`unescape_message`].
pub fn escape_message(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

/// Undo [`escape_message`]. Lenient where [`unescape_field`] is strict:
/// an unrecognised escape passes through verbatim, because a mangled
/// human-readable trailer must never stop a client from surfacing the
/// error it decorates.
pub fn unescape_message(wire: &str) -> String {
    let mut out = String::with_capacity(wire.len());
    let mut chars = wire.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Format an LSN for the wire: `segment:offset` (matches the storage
/// crate's `Lsn` display form, so both sides print the same spelling).
pub fn format_lsn(segment: u64, offset: u64) -> String {
    format!("{segment}:{offset}")
}

/// Parse a wire LSN (`segment:offset`) into its two parts.
pub fn parse_lsn(s: &str) -> Result<(u64, u64), String> {
    let (seg, off) = s.split_once(':').ok_or_else(|| format!("bad LSN {s:?} (want seg:off)"))?;
    let segment = seg.parse::<u64>().map_err(|_| format!("bad LSN segment {seg:?}"))?;
    let offset = off.parse::<u64>().map_err(|_| format!("bad LSN offset {off:?}"))?;
    Ok((segment, offset))
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 (RFC 4648, `=` padded). WAL record payloads are binary;
/// base64 keeps `WALREC` lines inside the protocol's printable-text,
/// newline-delimited framing without escaping games.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = u32::from(b[0]) << 16 | u32::from(b[1]) << 8 | u32::from(b[2]);
        out.push(BASE64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { BASE64_ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Undo [`base64_encode`]. Rejects bad characters, bad length and
/// misplaced padding — a corrupted `WALREC` payload must fail loudly, not
/// decode to garbage bytes.
pub fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("misplaced base64 padding".into());
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            let v = match c {
                b'A'..=b'Z' => c - b'A',
                b'a'..=b'z' => c - b'a' + 26,
                b'0'..=b'9' => c - b'0' + 52,
                b'+' => 62,
                b'/' => 63,
                _ => return Err(format!("bad base64 byte {c:#04x}")),
            };
            n = n << 6 | u32::from(v);
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// One downstream frame of the replication feed (primary → replica).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// `WALREC <lsn> <base64-payload>` — one WAL record at that LSN.
    Record {
        /// Segment part of the record's LSN.
        segment: u64,
        /// Offset part of the record's LSN.
        offset: u64,
        /// The record's encoded bytes (see `LogRecord::to_bytes`).
        payload: Vec<u8>,
    },
    /// `WALEOF <lsn>` — watermark: everything below `lsn` has been
    /// shipped; the feed is idle until the next commit.
    Eof {
        /// Segment part of the watermark LSN.
        segment: u64,
        /// Offset part of the watermark LSN.
        offset: u64,
    },
}

/// Build a `WALREC` line (no trailing newline).
pub fn encode_walrec(segment: u64, offset: u64, payload: &[u8]) -> String {
    format!("WALREC {} {}", format_lsn(segment, offset), base64_encode(payload))
}

/// Build a `WALEOF` watermark line (no trailing newline).
pub fn encode_waleof(segment: u64, offset: u64) -> String {
    format!("WALEOF {}", format_lsn(segment, offset))
}

/// Build the upstream `ACK` line a replica sends once records at or below
/// the LSN are durable and applied (no trailing newline).
pub fn encode_ack(segment: u64, offset: u64) -> String {
    format!("ACK {}", format_lsn(segment, offset))
}

/// Parse the LSN out of an upstream `ACK` line.
pub fn parse_ack(line: &str) -> Result<(u64, u64), String> {
    let rest = line
        .trim_end_matches(['\r', '\n'])
        .strip_prefix("ACK ")
        .ok_or_else(|| format!("expected ACK line, got {line:?}"))?;
    parse_lsn(rest.trim())
}

/// The kind of row change a `CHANGE` line carries. An SQL `UPDATE`
/// surfaces as a `DELETE` of the old row followed by an `INSERT` of the
/// new one, mirroring how the storage layer logs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeOp {
    /// A row was inserted.
    Insert,
    /// A row was deleted.
    Delete,
}

impl ChangeOp {
    /// The op's wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChangeOp::Insert => "INSERT",
            ChangeOp::Delete => "DELETE",
        }
    }

    /// Parse a wire spelling back into an op.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "INSERT" => Some(ChangeOp::Insert),
            "DELETE" => Some(ChangeOp::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for ChangeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parsed `CHANGE` line of a subscription feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Change {
    /// The table the change happened in.
    pub table: String,
    /// Whether the row was inserted or deleted.
    pub op: ChangeOp,
    /// The row's fields, decoded; `None` is SQL NULL. Fields use the same
    /// encoding as `ROW` result lines.
    pub fields: Vec<Option<String>>,
}

/// Build a `CHANGE <table> <op> <fields…>` line (no trailing newline).
/// Fields are tab-separated and escaped exactly like `ROW` result fields;
/// `None` encodes as the NULL marker.
pub fn encode_change(table: &str, op: ChangeOp, fields: &[Option<String>]) -> String {
    let mut out = format!("CHANGE {table} {op}");
    for f in fields {
        out.push('\t');
        match f {
            Some(v) => out.push_str(&escape_field(v)),
            None => out.push_str(NULL_FIELD),
        }
    }
    out
}

/// Parse one subscription-feed `CHANGE` line built by [`encode_change`].
pub fn parse_change(line: &str) -> Result<Change, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let rest = line
        .strip_prefix("CHANGE ")
        .ok_or_else(|| format!("expected CHANGE line, got {line:?}"))?;
    // Header is space-separated up to the first tab; fields follow.
    let (header, tail) = match rest.find('\t') {
        Some(i) => (&rest[..i], Some(&rest[i + 1..])),
        None => (rest, None),
    };
    let (table, op_word) =
        header.split_once(' ').ok_or_else(|| format!("bad CHANGE header {header:?}"))?;
    let op = ChangeOp::parse(op_word.trim()).ok_or_else(|| format!("bad CHANGE op {op_word:?}"))?;
    let mut fields = Vec::new();
    if let Some(tail) = tail {
        for f in tail.split('\t') {
            if f == NULL_FIELD {
                fields.push(None);
            } else {
                fields.push(Some(unescape_field(f)?));
            }
        }
    }
    Ok(Change { table: table.to_string(), op, fields })
}

/// Parse one downstream replication-feed line into a [`ReplFrame`].
pub fn parse_repl_frame(line: &str) -> Result<ReplFrame, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("WALREC ") {
        let (lsn, b64) = rest.split_once(' ').ok_or_else(|| format!("bad WALREC line {line:?}"))?;
        let (segment, offset) = parse_lsn(lsn)?;
        let payload = base64_decode(b64)?;
        Ok(ReplFrame::Record { segment, offset, payload })
    } else if let Some(rest) = line.strip_prefix("WALEOF ") {
        let (segment, offset) = parse_lsn(rest.trim())?;
        Ok(ReplFrame::Eof { segment, offset })
    } else {
        Err(format!("unexpected replication frame {line:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_case_insensitively() {
        assert_eq!(parse_command("ping\r\n").unwrap(), Command::Ping);
        assert_eq!(parse_command("Quit").unwrap(), Command::Quit);
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("checkpoint").unwrap(), Command::Checkpoint);
        assert_eq!(parse_command("commit").unwrap(), Command::Query("COMMIT".into()));
        assert_eq!(
            parse_command("begin read only").unwrap(),
            Command::Query("BEGIN READ ONLY".into())
        );
        assert_eq!(
            parse_command("QUERY SELECT * FROM t").unwrap(),
            Command::Query("SELECT * FROM t".into())
        );
        assert_eq!(
            parse_command("replicate 3:128").unwrap(),
            Command::Replicate { segment: 3, offset: 128 }
        );
    }

    #[test]
    fn malformed_commands_are_rejected() {
        assert!(parse_command("").is_err());
        assert!(parse_command("QUERY").is_err());
        assert!(parse_command("PING now").is_err());
        assert!(parse_command("CHECKPOINT now").is_err());
        assert!(parse_command("BEGIN work").is_err());
        assert!(parse_command("BEGIN READ").is_err());
        assert!(parse_command("EXPLODE").is_err());
        assert!(parse_command("REPLICATE").is_err());
        assert!(parse_command("REPLICATE soon").is_err());
        assert!(parse_command("REPLICATE 1:2:3").is_err());
    }

    #[test]
    fn base64_round_trips() {
        let cases: &[&[u8]] =
            &[b"", b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar", b"\x00\xff"];
        for raw in cases {
            let enc = base64_encode(raw);
            assert_eq!(base64_decode(&enc).unwrap(), *raw, "case {raw:?}");
        }
        // Known vectors (RFC 4648 §10).
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        // Every byte value survives.
        let all: Vec<u8> = (0..=255u8).collect();
        assert_eq!(base64_decode(&base64_encode(&all)).unwrap(), all);
    }

    #[test]
    fn bad_base64_is_rejected() {
        assert!(base64_decode("abc").is_err()); // length not 4k
        assert!(base64_decode("ab=c").is_err()); // padding inside a chunk
        assert!(base64_decode("a===").is_err()); // too much padding
        assert!(base64_decode("Zm9v YQ==").is_err()); // bad byte
        assert!(base64_decode("Zm==AAAA").is_err()); // padding not in last chunk
    }

    #[test]
    fn repl_frames_round_trip() {
        let rec = encode_walrec(2, 4096, b"\x01\x02\xff");
        assert_eq!(
            parse_repl_frame(&rec).unwrap(),
            ReplFrame::Record { segment: 2, offset: 4096, payload: vec![1, 2, 255] }
        );
        let eof = encode_waleof(7, 0);
        assert_eq!(parse_repl_frame(&eof).unwrap(), ReplFrame::Eof { segment: 7, offset: 0 });
        assert_eq!(parse_ack(&encode_ack(7, 8)).unwrap(), (7, 8));
        assert!(parse_repl_frame("WALREC 1:2").is_err());
        assert!(parse_repl_frame("NOPE 1:2").is_err());
        assert!(parse_ack("WALEOF 1:2").is_err());
        assert_eq!(parse_lsn(&format_lsn(9, 10)).unwrap(), (9, 10));
        assert!(parse_lsn("9").is_err());
        assert!(parse_lsn("a:b").is_err());
    }

    #[test]
    fn subscribe_commands_parse() {
        assert_eq!(
            parse_command("SUBSCRIBE accounts").unwrap(),
            Command::Subscribe { table: "accounts".into(), predicate: None }
        );
        assert_eq!(
            parse_command("subscribe accounts where bal > 100 AND id < 7").unwrap(),
            Command::Subscribe {
                table: "accounts".into(),
                predicate: Some("bal > 100 AND id < 7".into())
            }
        );
        assert_eq!(parse_command("UNSUBSCRIBE").unwrap(), Command::Unsubscribe);
        assert!(parse_command("SUBSCRIBE").is_err());
        assert!(parse_command("SUBSCRIBE t WHERE").is_err());
        assert!(parse_command("SUBSCRIBE t HAVING x").is_err());
        assert!(parse_command("UNSUBSCRIBE t").is_err());
    }

    #[test]
    fn change_lines_round_trip() {
        let line = encode_change(
            "accounts",
            ChangeOp::Insert,
            &[Some("1".into()), None, Some("tab\there".into())],
        );
        assert_eq!(line, "CHANGE accounts INSERT\t1\t\\N\ttab\\there");
        assert_eq!(
            parse_change(&line).unwrap(),
            Change {
                table: "accounts".into(),
                op: ChangeOp::Insert,
                fields: vec![Some("1".into()), None, Some("tab\there".into())],
            }
        );
        // Zero-column rows keep the header-only form.
        let bare = encode_change("t", ChangeOp::Delete, &[]);
        assert_eq!(parse_change(&bare).unwrap().fields, Vec::<Option<String>>::new());
        assert!(parse_change("ROW 1").is_err());
        assert!(parse_change("CHANGE accounts UPSERT\t1").is_err());
        assert!(parse_change("CHANGE accounts").is_err());
        for op in [ChangeOp::Insert, ChangeOp::Delete] {
            assert_eq!(ChangeOp::parse(op.as_str()), Some(op));
        }
        assert_eq!(ChangeOp::parse("MERGE"), None);
    }

    #[test]
    fn field_escaping_round_trips() {
        for raw in ["", "plain", "tab\there", "nl\nthere", "back\\slash", "\r\n\t\\", "\\N"] {
            let wire = escape_field(raw);
            assert_eq!(unescape_field(&wire).unwrap(), raw);
        }
    }

    #[test]
    fn escaped_fields_never_contain_framing_bytes() {
        for raw in ["tab\there", "nl\nthere", "cr\rthere"] {
            let wire = escape_field(raw);
            assert!(!wire.contains('\t'));
            assert!(!wire.contains('\n'));
            assert!(!wire.contains('\r'));
        }
    }

    #[test]
    fn bad_escapes_are_errors() {
        assert!(unescape_field("\\x").is_err());
        assert!(unescape_field("trailing\\").is_err());
    }

    #[test]
    fn message_escaping_round_trips() {
        for raw in ["plain", "two\nlines", "back\\slash", "cr\rhere", "tab\tstays", ""] {
            assert_eq!(unescape_message(&escape_message(raw)), raw);
        }
        // Lenient decoding: unknown escapes pass through, never error.
        assert_eq!(unescape_message("odd \\x end\\"), "odd \\x end\\");
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Sql,
            ErrorCode::Exec,
            ErrorCode::TxnAborted,
            ErrorCode::ReadOnly,
            ErrorCode::Overloaded,
            ErrorCode::Shutdown,
            ErrorCode::UnknownPrepared,
            ErrorCode::Proto,
            ErrorCode::ReadOnlyReplica,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("NOPE"), None);
    }
}
