//! Execution context shared by operators.

use staged_cachesim::tracker::{RefClass, RefKind, RefTracker};
use staged_storage::{Catalog, PAGE_SIZE};
use std::sync::Arc;

/// Everything an executing operator needs: the catalog (and through it the
/// buffer pool) plus optional Table-1 reference instrumentation.
#[derive(Clone)]
pub struct ExecContext {
    /// The catalog.
    pub catalog: Arc<Catalog>,
    /// Optional memory-reference tracker (paper Table 1).
    pub tracker: Option<Arc<RefTracker>>,
    /// Hash partitions for tables created through this context's DDL path
    /// (scoped here, not on the shared catalog, so two servers over one
    /// catalog can use different partitioning).
    pub ddl_partitions: usize,
}

impl ExecContext {
    /// Context without instrumentation.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self { catalog, tracker: None, ddl_partitions: 1 }
    }

    /// Attach a reference tracker.
    pub fn with_tracker(mut self, tracker: Arc<RefTracker>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Set the partition count for DDL-created tables.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.ddl_partitions = partitions.max(1);
        self
    }

    /// Record a *shared* data reference (table/index pages: any query may
    /// touch them, different queries touch different parts).
    pub fn note_page_ref(&self) {
        if let Some(t) = &self.tracker {
            t.record(RefClass::Shared, RefKind::Data, PAGE_SIZE as u64);
        }
    }

    /// Record a *private* data reference (intermediate results, sort runs,
    /// hash tables: exclusive to one query).
    pub fn note_private_bytes(&self, bytes: u64) {
        if let Some(t) = &self.tracker {
            t.record(RefClass::Private, RefKind::Data, bytes);
        }
    }

    /// Record a *common* code reference (an operator entry: engine driver
    /// code executed by every query).
    pub fn note_module_entry(&self, code_footprint: u64) {
        if let Some(t) = &self.tracker {
            t.record(RefClass::Common, RefKind::Code, code_footprint);
        }
    }

    /// Record a *shared* code reference (operator-specific algorithm code,
    /// e.g. the hash-join inner loop — Table 1 classifies operator code as
    /// shared).
    pub fn note_operator_code(&self, code_footprint: u64) {
        if let Some(t) = &self.tracker {
            t.record(RefClass::Shared, RefKind::Code, code_footprint);
        }
    }

    /// Record a *common* data reference (catalog/statistics lookups).
    pub fn note_catalog_ref(&self, bytes: u64) {
        if let Some(t) = &self.tracker {
            t.record(RefClass::Common, RefKind::Data, bytes);
        }
    }
}
