//! Engine errors.

use staged_sql::SqlError;
use staged_storage::StorageError;
use std::fmt;

/// Result alias for execution.
pub type EngineResult<T> = Result<T, EngineError>;

/// An execution-time error.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Storage layer failed.
    Storage(StorageError),
    /// Front-end error surfaced at run time.
    Sql(SqlError),
    /// Expression evaluation failed (type error, division by zero, …).
    Eval(String),
    /// Transaction-state misuse (BEGIN inside a transaction, COMMIT with
    /// none active, operations on an already-finished xid, …) or a commit
    /// whose log write failed and was rolled back. Lock timeouts surface
    /// as [`crate::txn::LockError`] at the lock table and are reported by
    /// the servers.
    Txn(String),
    /// Internal invariant violated.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::Txn(m) => write!(f, "transaction error: {m}"),
            EngineError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}
