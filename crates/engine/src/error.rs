//! Engine errors.

use staged_sql::SqlError;
use staged_storage::StorageError;
use std::fmt;

/// Result alias for execution.
pub type EngineResult<T> = Result<T, EngineError>;

/// An execution-time error.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Storage layer failed.
    Storage(StorageError),
    /// Front-end error surfaced at run time.
    Sql(SqlError),
    /// Expression evaluation failed (type error, division by zero, …).
    Eval(String),
    /// Transaction-state misuse (BEGIN inside a transaction, COMMIT with
    /// none active, operations on an already-finished xid, …) or a commit
    /// whose log write failed and was rolled back. Lock timeouts surface
    /// as [`crate::txn::LockError`] at the lock table and are reported by
    /// the servers.
    Txn(String),
    /// Internal invariant violated.
    Internal(String),
}

impl EngineError {
    /// Stable machine-readable code for this error class. The servers embed
    /// it in client-facing messages and the network front end maps it onto
    /// the wire-level `ERR` code space (see `PROTOCOL.md`): `SQL` errors
    /// keep the `SQL` wire code, everything else surfaces as `EXEC` with
    /// this finer-grained code preserved in the message.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::Storage(_) => "STORAGE",
            EngineError::Sql(_) => "SQL",
            EngineError::Eval(_) => "EVAL",
            EngineError::Txn(_) => "TXN",
            EngineError::Internal(_) => "INTERNAL",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::Txn(m) => write!(f, "transaction error: {m}"),
            EngineError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_stable_code() {
        let cases = [
            (EngineError::Eval("x".into()), "EVAL"),
            (EngineError::Txn("x".into()), "TXN"),
            (EngineError::Internal("x".into()), "INTERNAL"),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code);
        }
    }
}
