//! Tuple batches: the "pages of tuples" exchanged between execution-engine
//! stages (paper §4.3: "page-based data exchange using a producer-consumer
//! type of operator/stage communication").

use staged_storage::Tuple;

/// A page of tuples flowing between stages. The capacity is self-tuning
/// knob (c) of paper §4.4: "the page size for exchanging intermediate
/// results among the execution engine stages".
#[derive(Debug, Clone, Default)]
pub struct TupleBatch {
    tuples: Vec<Tuple>,
}

impl TupleBatch {
    /// An empty batch with the given capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self { tuples: Vec::with_capacity(cap) }
    }

    /// Wrap existing tuples.
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        Self { tuples }
    }

    /// Add a tuple.
    pub fn push(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Borrow the tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consume into the tuple vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::Value;

    #[test]
    fn batch_accumulates() {
        let mut b = TupleBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(Tuple::new(vec![Value::Int(1)]));
        b.push(Tuple::new(vec![Value::Int(2)]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.into_tuples().len(), 2);
    }
}
