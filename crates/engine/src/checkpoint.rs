//! Checkpointing and checkpointed recovery.
//!
//! A checkpoint is: quiesce writers (take every partition lock), rotate
//! the WAL to a fresh segment, capture a [`Snapshot`] of every table and
//! index, save it atomically, then delete the log segments below the
//! rotation point. Recovery is the inverse: restore the snapshot, replay
//! only the WAL *tail* at or after the snapshot's LSN, repair the log
//! tail, and carry on. The servers run [`checkpoint`] from a dedicated
//! `checkpoint` stage of the staged runtime (the paper's architecture
//! treats maintenance work as just another stage with a queue and
//! monitors), but every step is exposed here as a plain function so crash
//! torture tests can kill the protocol between any two steps.
//!
//! Crash safety falls out of the step order — each step leaves a state
//! recovery handles:
//!
//! 1. crash after *rotate*, before *save*: the old snapshot (or none) is
//!    loaded, and the whole surviving log replays — rotation only added a
//!    segment boundary.
//! 2. crash after *save*, before *truncate*: the new snapshot loads and
//!    replay starts at its LSN, skipping the stale segments that were due
//!    for deletion.
//! 3. crash mid-*truncate*: deletion proceeds oldest-first, so the
//!    surviving segments are still contiguous from some id up; the ones
//!    below the checkpoint LSN are ignored by tail replay anyway.

use crate::context::ExecContext;
use crate::dml::apply_records;
use crate::error::{EngineError, EngineResult};
use crate::txn::{LockKey, LockMode, LockTable, TxnManager};
use staged_storage::snapshot::Snapshot;
use staged_storage::wal::{Lsn, Wal};
use staged_storage::{Catalog, SegmentStore, SnapshotStore, StorageError, VacuumStats};
use std::sync::Arc;
use std::time::Duration;

/// The reserved transaction id the checkpointer owns locks under. It is
/// never handed to a real transaction (xids count up from 1), and it
/// deliberately never writes `Begin`/`Commit` records — a checkpoint is
/// not a transaction, it just needs the writers parked.
pub const CHECKPOINT_XID: u64 = u64::MAX;

/// What a completed checkpoint did (reported on the wire as the
/// `CHECKPOINT` command's result).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointOutcome {
    /// The snapshot's anchor: recovery replays the log from here.
    pub lsn: Lsn,
    /// Tables captured.
    pub tables: usize,
    /// Rows captured.
    pub rows: u64,
    /// Sealed segments deleted from below the checkpoint LSN.
    pub segments_deleted: u64,
}

/// What a recovery pass found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Rows restored from the snapshot (0 when no snapshot existed).
    pub snapshot_rows: u64,
    /// Log records applied from the tail.
    pub replayed: u64,
    /// Where tail replay started ([`Lsn::ZERO`] without a snapshot).
    pub checkpoint_lsn: Lsn,
    /// Damage found at the end of the usable log, if any. Everything up
    /// to the damage point was applied; a cleanly torn tail (the normal
    /// crash shape) reports `None`.
    pub corruption: Option<StorageError>,
}

/// Every partition lock in the catalog, in the deterministic (sorted)
/// order the lock table wants — the checkpoint's quiesce set.
pub fn quiesce_keys(catalog: &Catalog) -> Vec<LockKey> {
    let mut keys = Vec::new();
    for table in catalog.list_tables() {
        for p in 0..table.partitions() {
            keys.push(LockKey::new(table.id.0, p as u32));
        }
    }
    keys.sort_unstable();
    keys
}

/// Holds the checkpoint's locks; releases them all on drop, so an error
/// anywhere in the checkpoint path cannot leave the database frozen.
pub struct QuiesceGuard<'a> {
    locks: &'a LockTable,
}

impl Drop for QuiesceGuard<'_> {
    fn drop(&mut self) {
        self.locks.release_all(CHECKPOINT_XID);
    }
}

/// Park the writers: exclusively lock every partition of every table as
/// [`CHECKPOINT_XID`], waiting up to `timeout` for in-flight transactions
/// to drain. In-flight writers hold their locks until commit/abort
/// (strict 2PL), so once this returns the heap and indexes are still.
pub fn quiesce<'a>(
    locks: &'a LockTable,
    catalog: &Catalog,
    timeout: Duration,
) -> EngineResult<QuiesceGuard<'a>> {
    let mut keys = quiesce_keys(catalog);
    // The guard is constructed first so a timeout mid-acquisition releases
    // the partial set on the error path.
    let guard = QuiesceGuard { locks };
    locks
        .lock_all(CHECKPOINT_XID, &mut keys, LockMode::Exclusive, timeout)
        .map_err(|e| EngineError::Txn(format!("checkpoint could not quiesce writers: {e:?}")))?;
    Ok(guard)
}

/// Steps 1–2 of a checkpoint, under locks the *caller* already holds:
/// flush and rotate the WAL, then capture a snapshot anchored at the new
/// segment's start. Exposed separately so torture tests can crash between
/// capture and save.
pub fn snapshot_catalog(catalog: &Catalog, wal: &Wal) -> EngineResult<(Lsn, Snapshot)> {
    wal.flush()?;
    let lsn = wal.rotate()?;
    let snap = Snapshot::capture(catalog, lsn)?;
    Ok((lsn, snap))
}

/// A full checkpoint under locks the caller already holds (see
/// [`quiesce`]): snapshot, save atomically, truncate the log below the
/// snapshot's LSN. On any error the log is left intact — at worst a
/// saved snapshot goes unused until the next attempt.
pub fn checkpoint(
    catalog: &Catalog,
    wal: &Wal,
    snapshots: &dyn SnapshotStore,
) -> EngineResult<CheckpointOutcome> {
    checkpoint_with_floor(catalog, wal, snapshots, None)
}

/// [`checkpoint`] with a truncation floor: segments at or above
/// `min(floor, snapshot LSN)` survive. Replication supplies the minimum
/// LSN acknowledged by a connected replica as the floor, so a lagging
/// replica's unshipped history is never deleted out from under it — the
/// checkpoint itself (snapshot anchor, recovery point) is unaffected,
/// only log retention is.
pub fn checkpoint_with_floor(
    catalog: &Catalog,
    wal: &Wal,
    snapshots: &dyn SnapshotStore,
    floor: Option<Lsn>,
) -> EngineResult<CheckpointOutcome> {
    let (lsn, snap) = snapshot_catalog(catalog, wal)?;
    snapshots.save(&snap.encode())?;
    let truncate_at = match floor {
        Some(f) => f.min(lsn),
        None => lsn,
    };
    let segments_deleted = wal.truncate_below(truncate_at)?;
    Ok(CheckpointOutcome {
        lsn,
        tables: snap.tables.len(),
        rows: snap.row_count(),
        segments_deleted,
    })
}

/// Garbage-collect every table's MVCC version overlay. Must run while the
/// caller holds the quiesce set (see [`quiesce`]): with no DML in flight,
/// a transaction absent from [`TxnManager::active_xids`] is guaranteed
/// finished — not mid-commit — so its leftover `Pending` stamps are dead
/// and reapable. Timestamp-based reclamation is bounded by the oracle's
/// oldest pinned snapshot; the position-dependent moves (rollback anchor
/// collapses) additionally require that *no* snapshot is pinned at all.
/// Long-running `BEGIN READ ONLY` sessions therefore delay GC, never
/// correctness.
pub fn vacuum(catalog: &Catalog, mgr: &TxnManager) -> VacuumStats {
    let (min_ts, pins_empty) = mgr.oracle().min_active();
    let live = mgr.active_xids();
    let mut total = VacuumStats::default();
    for table in catalog.list_tables() {
        total.add(table.versions.vacuum(min_ts, pins_empty, &live));
    }
    total
}

/// Checkpointed recovery into an *empty* catalog: load the latest
/// snapshot (if any), restore it, replay only the WAL tail at or after
/// its LSN through [`apply_records`] — with the snapshot's old→new
/// address maps, so tail records referring to snapshotted rows resolve —
/// then open (and thereby tail-repair) the WAL for new appends.
///
/// The log is read with the tolerant store readers *before* the WAL is
/// opened: a cleanly torn tail ends replay silently, while corruption in
/// front of valid data is reported in the [`RecoveryReport`] after the
/// intact prefix has been applied. This function never panics on log
/// damage.
pub fn recover(
    ctx: &ExecContext,
    segments: Arc<dyn SegmentStore>,
    snapshots: &dyn SnapshotStore,
    segment_pages: u64,
) -> EngineResult<(Wal, RecoveryReport)> {
    let (mut maps, checkpoint_lsn, snapshot_rows) = match snapshots.load()? {
        Some(bytes) => {
            let snap = Snapshot::decode(&bytes)?;
            let maps = snap.restore(&ctx.catalog)?;
            (maps, snap.lsn, snap.row_count())
        }
        None => (Default::default(), Lsn::ZERO, 0),
    };
    let (records, corruption) = Wal::read_store_from(segments.as_ref(), checkpoint_lsn);
    let replayed = apply_records(ctx, &records, &mut maps.rids, &maps.tables)?;
    let wal = Wal::open_with_segment_pages(segments, segment_pages)?;
    // Only committed — visible-to-everyone — data survives a crash, so the
    // recovered overlay is empty. (The catalog object may persist across a
    // simulated crash in tests; reset makes the overlay state follow the
    // data, not the object lifetime.)
    for table in ctx.catalog.list_tables() {
        table.versions.reset();
    }
    Ok((wal, RecoveryReport { snapshot_rows, replayed, checkpoint_lsn, corruption }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dml::{insert_rows, DmlLog};
    use staged_storage::wal::LogRecord;
    use staged_storage::{
        BufferPool, Column, DataType, MemDisk, MemSegmentStore, MemSnapshotStore, Schema, Tuple,
        Value,
    };

    fn fresh_ctx() -> ExecContext {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
        ExecContext::new(Arc::new(Catalog::new(pool)))
    }

    fn ctx_with_table(partitions: usize) -> ExecContext {
        let ctx = fresh_ctx();
        ctx.catalog
            .create_table_partitioned(
                "t",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
                partitions,
                0,
            )
            .unwrap();
        ctx.catalog.create_index("t_id", "t", "id").unwrap();
        ctx
    }

    fn committed_insert(ctx: &ExecContext, wal: &Wal, xid: u64, ids: std::ops::Range<i64>) {
        let t = ctx.catalog.table("t").unwrap();
        wal.append(&LogRecord::Begin { xid }).unwrap();
        let rows: Vec<Tuple> =
            ids.map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 10)])).collect();
        insert_rows(ctx, &t, rows, Some(&DmlLog::wal_only(wal, xid))).unwrap();
        wal.append(&LogRecord::Commit { xid }).unwrap();
    }

    fn ids_of(ctx: &ExecContext) -> Vec<i64> {
        let t = ctx.catalog.table("t").unwrap();
        let mut ids: Vec<i64> =
            t.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn checkpoint_then_recover_replays_only_the_tail() {
        let segments = Arc::new(MemSegmentStore::new());
        let snapshots = MemSnapshotStore::new();
        let ctx = ctx_with_table(2);
        let wal = Wal::open_with_segment_pages(segments.clone(), 1).unwrap();

        committed_insert(&ctx, &wal, 1, 0..50);
        let outcome = checkpoint(&ctx.catalog, &wal, &snapshots).unwrap();
        assert_eq!(outcome.rows, 50);
        assert!(outcome.segments_deleted >= 1, "history must be truncated");
        committed_insert(&ctx, &wal, 2, 50..60);
        drop(wal);

        let ctx2 = fresh_ctx();
        let (_, report) = recover(&ctx2, segments.clone(), &snapshots, 1).unwrap();
        assert_eq!(report.snapshot_rows, 50);
        assert!(report.corruption.is_none());
        assert_eq!(report.checkpoint_lsn, outcome.lsn);
        assert_eq!(ids_of(&ctx2), (0..60).collect::<Vec<i64>>());
        // The index came back through the snapshot too.
        let t = ctx2.catalog.table("t").unwrap();
        let ix = ctx2.catalog.index_on(t.id, 0).unwrap();
        assert_eq!(ix.search(55).unwrap().len(), 1);
    }

    #[test]
    fn tail_delete_of_a_snapshotted_row_applies_through_the_rid_map() {
        let segments = Arc::new(MemSegmentStore::new());
        let snapshots = MemSnapshotStore::new();
        let ctx = ctx_with_table(2);
        let wal = Wal::open_with_segment_pages(segments.clone(), 1).unwrap();

        committed_insert(&ctx, &wal, 1, 0..20);
        checkpoint(&ctx.catalog, &wal, &snapshots).unwrap();
        // Post-checkpoint: delete a row that only the snapshot knows.
        let t = ctx.catalog.table("t").unwrap();
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        crate::dml::delete_rows(
            &ctx,
            &t,
            &Some(staged_sql::ast::Expr::binary(
                staged_sql::ast::Expr::Column(staged_sql::ast::ColumnRef {
                    table: None,
                    name: "id".into(),
                    index: Some(0),
                }),
                staged_sql::ast::BinOp::Eq,
                staged_sql::ast::Expr::int(7),
            )),
            Some(&DmlLog::wal_only(&wal, 2)),
        )
        .unwrap();
        wal.append(&LogRecord::Commit { xid: 2 }).unwrap();
        drop(wal);

        let ctx2 = fresh_ctx();
        let (_, report) = recover(&ctx2, segments, &snapshots, 1).unwrap();
        assert!(report.corruption.is_none());
        let expected: Vec<i64> = (0..20).filter(|i| *i != 7).collect();
        assert_eq!(ids_of(&ctx2), expected, "snapshotted row must be deletable from the tail");
        let t2 = ctx2.catalog.table("t").unwrap();
        let ix = ctx2.catalog.index_on(t2.id, 0).unwrap();
        assert!(ix.search(7).unwrap().is_empty(), "index entry of the deleted row must go");
    }

    #[test]
    fn truncation_floor_holds_back_history_for_lagging_replicas() {
        let segments = Arc::new(MemSegmentStore::new());
        let snapshots = MemSnapshotStore::new();
        let ctx = ctx_with_table(1);
        let wal = Wal::open_with_segment_pages(segments.clone(), 1).unwrap();
        committed_insert(&ctx, &wal, 1, 0..50);
        // A replica that has acked nothing pins the whole log.
        let held = checkpoint_with_floor(&ctx.catalog, &wal, &snapshots, Some(Lsn::ZERO)).unwrap();
        assert_eq!(held.segments_deleted, 0, "floor at ZERO must retain every segment");
        // Once the replica catches up (floor at the log tail), retention
        // reverts to the checkpoint LSN and history is reclaimed.
        committed_insert(&ctx, &wal, 2, 50..60);
        let tail = wal.next_lsn();
        let free = checkpoint_with_floor(&ctx.catalog, &wal, &snapshots, Some(tail)).unwrap();
        assert!(free.segments_deleted >= 1, "caught-up floor must not block truncation");
    }

    #[test]
    fn recover_without_any_snapshot_is_plain_redo() {
        let segments = Arc::new(MemSegmentStore::new());
        let snapshots = MemSnapshotStore::new();
        let ctx = ctx_with_table(1);
        let wal = Wal::open(segments.clone()).unwrap();
        committed_insert(&ctx, &wal, 1, 0..10);
        drop(wal);

        // Recovery re-creates the DDL (as the servers do), then replays.
        let ctx2 = ctx_with_table(1);
        let (_, report) = recover(&ctx2, segments, &snapshots, DEFAULT_PAGES).unwrap();
        assert_eq!(report.snapshot_rows, 0);
        assert_eq!(report.checkpoint_lsn, Lsn::ZERO);
        assert_eq!(ids_of(&ctx2), (0..10).collect::<Vec<i64>>());
    }

    const DEFAULT_PAGES: u64 = staged_storage::DEFAULT_SEGMENT_PAGES;

    #[test]
    fn quiesce_locks_every_partition_and_releases_on_drop() {
        let ctx = ctx_with_table(4);
        let locks = LockTable::new();
        {
            let _guard = quiesce(&locks, &ctx.catalog, Duration::from_millis(100)).unwrap();
            assert_eq!(locks.held_by(CHECKPOINT_XID), 4);
            // A writer cannot sneak in while the checkpoint holds the set.
            assert!(!locks.try_lock(1, LockKey::new(0, 0), LockMode::Exclusive));
        }
        assert_eq!(locks.held_by(CHECKPOINT_XID), 0, "guard must release on drop");
        assert!(locks.try_lock(1, LockKey::new(0, 0), LockMode::Exclusive));
    }

    #[test]
    fn quiesce_times_out_against_a_stuck_writer_and_leaves_nothing_held() {
        let ctx = ctx_with_table(4);
        let locks = LockTable::new();
        assert!(locks.try_lock(7, LockKey::new(0, 2), LockMode::Exclusive));
        let err = quiesce(&locks, &ctx.catalog, Duration::from_millis(20));
        assert!(err.is_err());
        assert_eq!(locks.held_by(CHECKPOINT_XID), 0, "partial quiesce must be released");
        locks.release_all(7);
    }
}
