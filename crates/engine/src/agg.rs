//! Aggregate accumulators, shared by the Volcano and staged engines.

use crate::error::{EngineError, EngineResult};
use staged_planner::AggSpec;
use staged_sql::ast::AggFunc;
use staged_storage::{Tuple, Value};
use std::collections::{HashMap, HashSet};

/// Running state of one aggregate.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    seen: HashSet<Vec<u8>>,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh accumulator for a spec.
    pub fn new(spec: &AggSpec) -> Self {
        Self {
            func: spec.func,
            distinct: spec.distinct,
            seen: HashSet::new(),
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            min: None,
            max: None,
        }
    }

    /// Feed one input value (already evaluated; `Null` for `COUNT(*)` rows
    /// is passed as `Some(non-null)` by the caller — see `update_star`).
    pub fn update(&mut self, v: &Value) -> EngineResult<()> {
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs
        }
        if self.distinct {
            let mut key = Vec::new();
            v.encode(&mut key);
            if !self.seen.insert(key) {
                return Ok(());
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.sum_i = self
                        .sum_i
                        .checked_add(*i)
                        .ok_or_else(|| EngineError::Eval("SUM overflow".into()))?;
                    self.sum_f += *i as f64;
                }
                Value::Float(f) => {
                    self.saw_float = true;
                    self.sum_f += f;
                }
                other => {
                    return Err(EngineError::Eval(format!("SUM/AVG over {other}")));
                }
            },
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Feed a `COUNT(*)` row (no argument, NULLs still count).
    pub fn update_star(&mut self) {
        self.count += 1;
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.sum_f)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Combines partially-aggregated rows into final aggregate values — the
/// merge half of two-phase (partition-parallel) aggregation, shared by the
/// Volcano `MergeAggExec` and the staged `MergeAggTask`.
///
/// Input rows have the layout `group values ⧺ partial values`, where the
/// partial columns follow [`staged_planner::plan::partial_agg_specs`]'s expansion
/// of the final aggregate list (COUNT/SUM/MIN/MAX → one column, AVG → SUM
/// then COUNT). Combination reuses [`Accumulator`]s: partial COUNTs are
/// summed, partial SUMs summed, partial MIN/MAX re-minimized/-maximized.
pub struct AggMerger {
    group_len: usize,
    aggs: Vec<AggSpec>,
    groups: Vec<(Vec<Value>, Vec<Accumulator>)>,
    index: HashMap<Vec<u8>, usize>,
}

impl AggMerger {
    /// A merger for `aggs` final aggregates under `group_len` group keys.
    pub fn new(group_len: usize, aggs: Vec<AggSpec>) -> Self {
        Self { group_len, aggs, groups: Vec::new(), index: HashMap::new() }
    }

    /// One combine accumulator per *partial* column.
    fn combine_accs(&self) -> Vec<Accumulator> {
        let mut accs = Vec::new();
        for a in &self.aggs {
            let acc = |func| Accumulator::new(&AggSpec { func, arg: None, distinct: false });
            match a.func {
                // Final COUNT = sum of partial counts.
                AggFunc::Count | AggFunc::Sum => accs.push(acc(AggFunc::Sum)),
                AggFunc::Min => accs.push(acc(AggFunc::Min)),
                AggFunc::Max => accs.push(acc(AggFunc::Max)),
                // AVG carries (partial sum, partial count).
                AggFunc::Avg => {
                    accs.push(acc(AggFunc::Sum));
                    accs.push(acc(AggFunc::Sum));
                }
            }
        }
        accs
    }

    /// Absorb one partially-aggregated row.
    pub fn absorb(&mut self, t: &Tuple) -> EngineResult<()> {
        let vals = t.values();
        if vals.len() < self.group_len {
            return Err(EngineError::Internal("short partial-aggregate row".into()));
        }
        let key_vals = &vals[..self.group_len];
        let mut key_bytes = Vec::new();
        for v in key_vals {
            v.encode(&mut key_bytes);
        }
        let slot = match self.index.get(&key_bytes) {
            Some(&s) => s,
            None => {
                self.groups.push((key_vals.to_vec(), self.combine_accs()));
                self.index.insert(key_bytes, self.groups.len() - 1);
                self.groups.len() - 1
            }
        };
        let accs = &mut self.groups[slot].1;
        if vals.len() != self.group_len + accs.len() {
            return Err(EngineError::Internal(format!(
                "partial-aggregate row has {} columns, expected {}",
                vals.len(),
                self.group_len + accs.len()
            )));
        }
        for (acc, v) in accs.iter_mut().zip(&vals[self.group_len..]) {
            acc.update(v)?;
        }
        Ok(())
    }

    /// Finish every group: `group values ⧺ final aggregate values`.
    pub fn finish(mut self) -> Vec<Tuple> {
        // Global aggregation over zero partial rows still yields one row
        // (cannot normally happen — every partial emits its global row —
        // but keep the semantics aligned with HashAggregate).
        if self.groups.is_empty() && self.group_len == 0 {
            self.groups.push((Vec::new(), self.combine_accs()));
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for (mut vals, accs) in self.groups {
            let mut c = 0usize;
            for a in &self.aggs {
                match a.func {
                    AggFunc::Count => {
                        // Sum of partial counts; an all-skipped sum is NULL,
                        // which COUNT semantics map back to 0.
                        let v = accs[c].finish();
                        vals.push(Value::Int(v.as_int().unwrap_or(0)));
                        c += 1;
                    }
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        vals.push(accs[c].finish());
                        c += 1;
                    }
                    AggFunc::Avg => {
                        let sum = accs[c].finish();
                        let count = accs[c + 1].finish().as_int().unwrap_or(0);
                        vals.push(if count == 0 {
                            Value::Null
                        } else {
                            Value::Float(sum.as_float().unwrap_or(0.0) / count as f64)
                        });
                        c += 2;
                    }
                }
            }
            out.push(Tuple::new(vals));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(func: AggFunc, distinct: bool) -> AggSpec {
        AggSpec { func, arg: None, distinct }
    }

    #[test]
    fn count_sum_avg_min_max() {
        let mut c = Accumulator::new(&spec(AggFunc::Count, false));
        let mut s = Accumulator::new(&spec(AggFunc::Sum, false));
        let mut a = Accumulator::new(&spec(AggFunc::Avg, false));
        let mut mn = Accumulator::new(&spec(AggFunc::Min, false));
        let mut mx = Accumulator::new(&spec(AggFunc::Max, false));
        for i in 1..=4i64 {
            for acc in [&mut c, &mut s, &mut a, &mut mn, &mut mx] {
                acc.update(&Value::Int(i)).unwrap();
            }
        }
        assert_eq!(c.finish(), Value::Int(4));
        assert_eq!(s.finish(), Value::Int(10));
        assert_eq!(a.finish(), Value::Float(2.5));
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(4));
    }

    #[test]
    fn nulls_are_skipped_but_count_star_counts() {
        let mut c = Accumulator::new(&spec(AggFunc::Count, false));
        c.update(&Value::Null).unwrap();
        c.update(&Value::Int(1)).unwrap();
        assert_eq!(c.finish(), Value::Int(1));
        let mut star = Accumulator::new(&spec(AggFunc::Count, false));
        star.update_star();
        star.update_star();
        assert_eq!(star.finish(), Value::Int(2));
    }

    #[test]
    fn distinct_dedups() {
        let mut s = Accumulator::new(&spec(AggFunc::Sum, true));
        for v in [1, 2, 2, 3, 3, 3] {
            s.update(&Value::Int(v)).unwrap();
        }
        assert_eq!(s.finish(), Value::Int(6));
    }

    #[test]
    fn empty_input_yields_null_or_zero() {
        assert_eq!(Accumulator::new(&spec(AggFunc::Count, false)).finish(), Value::Int(0));
        assert_eq!(Accumulator::new(&spec(AggFunc::Sum, false)).finish(), Value::Null);
        assert_eq!(Accumulator::new(&spec(AggFunc::Avg, false)).finish(), Value::Null);
        assert_eq!(Accumulator::new(&spec(AggFunc::Min, false)).finish(), Value::Null);
    }

    #[test]
    fn sum_switches_to_float_when_needed() {
        let mut s = Accumulator::new(&spec(AggFunc::Sum, false));
        s.update(&Value::Int(1)).unwrap();
        s.update(&Value::Float(0.5)).unwrap();
        assert_eq!(s.finish(), Value::Float(1.5));
    }

    #[test]
    fn merger_combines_partial_states_per_group() {
        // Final aggs: COUNT(*), SUM(x), MIN(x), AVG(x) → partial layout
        // count | sum | min | avg-sum | avg-count after one group column.
        let aggs = vec![
            spec(AggFunc::Count, false),
            spec(AggFunc::Sum, false),
            spec(AggFunc::Min, false),
            spec(AggFunc::Avg, false),
        ];
        let mut m = AggMerger::new(1, aggs);
        // Partition 1: group 7 saw rows {1, 3}; partition 2: group 7 saw {5}.
        m.absorb(&Tuple::new(vec![
            Value::Int(7),
            Value::Int(2),
            Value::Int(4),
            Value::Int(1),
            Value::Int(4),
            Value::Int(2),
        ]))
        .unwrap();
        m.absorb(&Tuple::new(vec![
            Value::Int(7),
            Value::Int(1),
            Value::Int(5),
            Value::Int(5),
            Value::Int(5),
            Value::Int(1),
        ]))
        .unwrap();
        let rows = m.finish();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].values(),
            &[Value::Int(7), Value::Int(3), Value::Int(9), Value::Int(1), Value::Float(3.0)]
        );
    }

    #[test]
    fn merger_global_aggregate_handles_empty_partials() {
        let aggs =
            vec![spec(AggFunc::Count, false), spec(AggFunc::Sum, false), spec(AggFunc::Avg, false)];
        let mut m = AggMerger::new(0, aggs);
        // Two partitions, both empty: each partial emits COUNT 0, SUM NULL,
        // AVG partials (NULL, 0).
        for _ in 0..2 {
            m.absorb(&Tuple::new(vec![Value::Int(0), Value::Null, Value::Null, Value::Int(0)]))
                .unwrap();
        }
        let rows = m.finish();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values(), &[Value::Int(0), Value::Null, Value::Null]);
    }

    #[test]
    fn min_max_over_strings() {
        let mut mn = Accumulator::new(&spec(AggFunc::Min, false));
        let mut mx = Accumulator::new(&spec(AggFunc::Max, false));
        for s in ["pear", "apple", "zucchini"] {
            mn.update(&Value::Str(s.into())).unwrap();
            mx.update(&Value::Str(s.into())).unwrap();
        }
        assert_eq!(mn.finish(), Value::Str("apple".into()));
        assert_eq!(mx.finish(), Value::Str("zucchini".into()));
    }
}
