//! Aggregate accumulators, shared by the Volcano and staged engines.

use crate::error::{EngineError, EngineResult};
use staged_planner::AggSpec;
use staged_sql::ast::AggFunc;
use staged_storage::Value;
use std::collections::HashSet;

/// Running state of one aggregate.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    seen: HashSet<Vec<u8>>,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh accumulator for a spec.
    pub fn new(spec: &AggSpec) -> Self {
        Self {
            func: spec.func,
            distinct: spec.distinct,
            seen: HashSet::new(),
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            min: None,
            max: None,
        }
    }

    /// Feed one input value (already evaluated; `Null` for `COUNT(*)` rows
    /// is passed as `Some(non-null)` by the caller — see `update_star`).
    pub fn update(&mut self, v: &Value) -> EngineResult<()> {
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs
        }
        if self.distinct {
            let mut key = Vec::new();
            v.encode(&mut key);
            if !self.seen.insert(key) {
                return Ok(());
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.sum_i = self.sum_i.checked_add(*i).ok_or_else(|| {
                        EngineError::Eval("SUM overflow".into())
                    })?;
                    self.sum_f += *i as f64;
                }
                Value::Float(f) => {
                    self.saw_float = true;
                    self.sum_f += f;
                }
                other => {
                    return Err(EngineError::Eval(format!("SUM/AVG over {other}")));
                }
            },
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Feed a `COUNT(*)` row (no argument, NULLs still count).
    pub fn update_star(&mut self) {
        self.count += 1;
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.sum_f)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(func: AggFunc, distinct: bool) -> AggSpec {
        AggSpec { func, arg: None, distinct }
    }

    #[test]
    fn count_sum_avg_min_max() {
        let mut c = Accumulator::new(&spec(AggFunc::Count, false));
        let mut s = Accumulator::new(&spec(AggFunc::Sum, false));
        let mut a = Accumulator::new(&spec(AggFunc::Avg, false));
        let mut mn = Accumulator::new(&spec(AggFunc::Min, false));
        let mut mx = Accumulator::new(&spec(AggFunc::Max, false));
        for i in 1..=4i64 {
            for acc in [&mut c, &mut s, &mut a, &mut mn, &mut mx] {
                acc.update(&Value::Int(i)).unwrap();
            }
        }
        assert_eq!(c.finish(), Value::Int(4));
        assert_eq!(s.finish(), Value::Int(10));
        assert_eq!(a.finish(), Value::Float(2.5));
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(4));
    }

    #[test]
    fn nulls_are_skipped_but_count_star_counts() {
        let mut c = Accumulator::new(&spec(AggFunc::Count, false));
        c.update(&Value::Null).unwrap();
        c.update(&Value::Int(1)).unwrap();
        assert_eq!(c.finish(), Value::Int(1));
        let mut star = Accumulator::new(&spec(AggFunc::Count, false));
        star.update_star();
        star.update_star();
        assert_eq!(star.finish(), Value::Int(2));
    }

    #[test]
    fn distinct_dedups() {
        let mut s = Accumulator::new(&spec(AggFunc::Sum, true));
        for v in [1, 2, 2, 3, 3, 3] {
            s.update(&Value::Int(v)).unwrap();
        }
        assert_eq!(s.finish(), Value::Int(6));
    }

    #[test]
    fn empty_input_yields_null_or_zero() {
        assert_eq!(Accumulator::new(&spec(AggFunc::Count, false)).finish(), Value::Int(0));
        assert_eq!(Accumulator::new(&spec(AggFunc::Sum, false)).finish(), Value::Null);
        assert_eq!(Accumulator::new(&spec(AggFunc::Avg, false)).finish(), Value::Null);
        assert_eq!(Accumulator::new(&spec(AggFunc::Min, false)).finish(), Value::Null);
    }

    #[test]
    fn sum_switches_to_float_when_needed() {
        let mut s = Accumulator::new(&spec(AggFunc::Sum, false));
        s.update(&Value::Int(1)).unwrap();
        s.update(&Value::Float(0.5)).unwrap();
        assert_eq!(s.finish(), Value::Float(1.5));
    }

    #[test]
    fn min_max_over_strings() {
        let mut mn = Accumulator::new(&spec(AggFunc::Min, false));
        let mut mx = Accumulator::new(&spec(AggFunc::Max, false));
        for s in ["pear", "apple", "zucchini"] {
            mn.update(&Value::Str(s.into())).unwrap();
            mx.update(&Value::Str(s.into())).unwrap();
        }
        assert_eq!(mn.finish(), Value::Str("apple".into()));
        assert_eq!(mx.finish(), Value::Str("zucchini".into()));
    }
}
