//! # staged-engine — the relational execution engine
//!
//! Two complete implementations of the same physical plans:
//!
//! * [`volcano`] — classic pull-based iterators (open/next/close). This is
//!   the *monolithic baseline*: the whole query executes as one call chain
//!   on the calling thread, exactly the work-centric model whose cache
//!   behaviour §3.1 of the paper criticizes.
//! * [`staged`] — the paper's staged execution engine (§4.1.2, §4.3):
//!   operators are packets queued at stages (fscan, iscan, sort, join,
//!   aggregate, send), activated bottom-up, exchanging **pages of tuples**
//!   through bounded producer/consumer buffers; a task that cannot proceed
//!   requeues itself ("a stage thread that cannot momentarily continue
//!   execution enqueues the current packet in the same stage's queue").
//!   Scans of the same table can be **shared** (§5.4 multi-query
//!   optimization): a circular scan multicasts pages to every concurrent
//!   reader.
//!
//! Both engines share [`expr`] (expression evaluation), [`agg`] (aggregate
//! accumulators) and [`dml`] (INSERT/UPDATE/DELETE with WAL logging), so
//! differential tests can compare them tuple-for-tuple.

#![deny(missing_docs)]

pub mod agg;
pub mod batch;
pub mod checkpoint;
pub mod context;
pub mod dml;
pub mod error;
pub mod expr;
pub mod staged;
pub mod txn;
pub mod volcano;

pub use batch::TupleBatch;
pub use context::ExecContext;
pub use error::{EngineError, EngineResult};
