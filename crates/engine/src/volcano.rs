//! Pull-based (Volcano) execution: the monolithic baseline engine.
//!
//! `build` compiles a [`PhysicalPlan`] into a tree of [`Executor`]s; the
//! whole query then runs as one call chain on the calling thread — the
//! work-centric execution model of §3.1 whose cache behaviour the staged
//! design improves on. Correctness-wise both engines are equivalent and the
//! integration tests diff them query-by-query.

use crate::agg::{Accumulator, AggMerger};
use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval, eval_predicate};
use staged_planner::{AggSpec, PhysicalPlan};
use staged_sql::ast::Expr;
use staged_storage::catalog::{IndexInfo, TableInfo};
use staged_storage::{Rid, StorageResult, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A pull-based operator.
pub trait Executor {
    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self) -> EngineResult<Option<Tuple>>;
}

/// Compile a physical plan into an executor tree.
pub fn build(plan: &PhysicalPlan, ctx: &ExecContext) -> EngineResult<Box<dyn Executor>> {
    Ok(match plan {
        PhysicalPlan::SeqScan { table, predicate, snapshot } => {
            ctx.note_module_entry(4096);
            let mut scan = table.heap.scan();
            if let Some(view) = snapshot {
                scan = scan.with_snapshot(Arc::clone(&table.versions), *view);
            }
            Box::new(SeqScanExec { ctx: ctx.clone(), scan, predicate: predicate.clone() })
        }
        PhysicalPlan::PartitionScan { table, partition, predicate, snapshot } => {
            ctx.note_module_entry(4096);
            let mut scan = table.heap.scan_partition(*partition);
            if let Some(view) = snapshot {
                scan = scan.with_snapshot(Arc::clone(&table.versions), *view);
            }
            Box::new(SeqScanExec { ctx: ctx.clone(), scan, predicate: predicate.clone() })
        }
        PhysicalPlan::Exchange { inputs } => {
            // The Volcano equivalent of the staged engine's parallel merge:
            // a *sequential* union over the same partial plans, so the
            // differential tests compare identical plan shapes.
            let children = inputs.iter().map(|i| build(i, ctx)).collect::<EngineResult<_>>()?;
            Box::new(ExchangeExec { children, cur: 0 })
        }
        PhysicalPlan::MergeAggregate { inputs, group_by_len, aggs } => {
            ctx.note_operator_code(4096);
            let children = inputs.iter().map(|i| build(i, ctx)).collect::<EngineResult<_>>()?;
            Box::new(MergeAggExec {
                inputs: Some(children),
                merger: Some(AggMerger::new(*group_by_len, aggs.clone())),
                results: Vec::new(),
                pos: 0,
            })
        }
        PhysicalPlan::IndexScan { table, index, lo, hi, predicate, .. } => {
            ctx.note_module_entry(4096);
            Box::new(IndexScanExec::new(
                ctx.clone(),
                Arc::clone(table),
                Arc::clone(index),
                *lo,
                *hi,
                predicate.clone(),
            ))
        }
        PhysicalPlan::Filter { input, predicate } => {
            Box::new(FilterExec { input: build(input, ctx)?, predicate: predicate.clone() })
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            Box::new(ProjectExec { input: build(input, ctx)?, exprs: exprs.clone() })
        }
        PhysicalPlan::NestedLoopJoin { left, right, predicate } => {
            ctx.note_operator_code(8192);
            Box::new(NestedLoopJoinExec {
                ctx: ctx.clone(),
                left: build(left, ctx)?,
                right: build(right, ctx)?,
                predicate: predicate.clone(),
                inner: None,
                outer: None,
                inner_pos: 0,
            })
        }
        PhysicalPlan::HashJoin { left, right, keys, residual } => {
            ctx.note_operator_code(8192);
            Box::new(HashJoinExec {
                ctx: ctx.clone(),
                left: Some(build(left, ctx)?),
                right: build(right, ctx)?,
                keys: keys.clone(),
                residual: residual.clone(),
                table: HashMap::new(),
                pending: Vec::new(),
            })
        }
        PhysicalPlan::MergeJoin { left, right, keys, residual } => {
            ctx.note_operator_code(8192);
            Box::new(MergeJoinExec::new(
                ctx.clone(),
                build(left, ctx)?,
                build(right, ctx)?,
                keys.clone(),
                residual.clone(),
            ))
        }
        PhysicalPlan::Sort { input, keys } => {
            ctx.note_operator_code(4096);
            Box::new(SortExec {
                ctx: ctx.clone(),
                input: Some(build(input, ctx)?),
                keys: keys.clone(),
                sorted: Vec::new(),
                pos: 0,
            })
        }
        PhysicalPlan::HashAggregate { input, group_by, aggs } => {
            ctx.note_operator_code(4096);
            Box::new(HashAggExec {
                ctx: ctx.clone(),
                input: Some(build(input, ctx)?),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                results: Vec::new(),
                pos: 0,
            })
        }
        PhysicalPlan::Distinct { input } => Box::new(DistinctExec {
            input: build(input, ctx)?,
            seen: std::collections::HashSet::new(),
        }),
        PhysicalPlan::Limit { input, n } => {
            Box::new(LimitExec { input: build(input, ctx)?, remaining: *n })
        }
    })
}

/// Run a plan to completion, collecting all output tuples.
pub fn run(plan: &PhysicalPlan, ctx: &ExecContext) -> EngineResult<Vec<Tuple>> {
    let mut exec = build(plan, ctx)?;
    let mut out = Vec::new();
    while let Some(t) = exec.next()? {
        out.push(t);
    }
    Ok(out)
}

struct SeqScanExec<I> {
    ctx: ExecContext,
    scan: I,
    predicate: Option<Expr>,
}

impl<I: Iterator<Item = StorageResult<(Rid, Tuple)>>> Executor for SeqScanExec<I> {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        for item in self.scan.by_ref() {
            let (_, tuple) = item?;
            self.ctx.note_page_ref();
            match &self.predicate {
                Some(p) if !eval_predicate(p, &tuple)? => continue,
                _ => return Ok(Some(tuple)),
            }
        }
        Ok(None)
    }
}

/// Sequential union over partition-partial plans.
struct ExchangeExec {
    children: Vec<Box<dyn Executor>>,
    cur: usize,
}

impl Executor for ExchangeExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        while self.cur < self.children.len() {
            if let Some(t) = self.children[self.cur].next()? {
                return Ok(Some(t));
            }
            self.cur += 1;
        }
        Ok(None)
    }
}

/// Drain every partial-aggregation input, combine the partial states, then
/// emit final rows.
struct MergeAggExec {
    inputs: Option<Vec<Box<dyn Executor>>>,
    merger: Option<AggMerger>,
    results: Vec<Tuple>,
    pos: usize,
}

impl Executor for MergeAggExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if let Some(mut inputs) = self.inputs.take() {
            let mut merger = self.merger.take().expect("merger set at build");
            for input in inputs.iter_mut() {
                while let Some(t) = input.next()? {
                    merger.absorb(&t)?;
                }
            }
            self.results = merger.finish();
        }
        if self.pos < self.results.len() {
            self.pos += 1;
            Ok(Some(self.results[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

struct IndexScanExec {
    ctx: ExecContext,
    table: Arc<TableInfo>,
    rids: Vec<staged_storage::Rid>,
    pos: usize,
    predicate: Option<Expr>,
    err: Option<EngineError>,
}

impl IndexScanExec {
    fn new(
        ctx: ExecContext,
        table: Arc<TableInfo>,
        index: Arc<IndexInfo>,
        lo: Option<i64>,
        hi: Option<i64>,
        predicate: Option<Expr>,
    ) -> Self {
        // A probe pinning the hash-key column only needs that partition's
        // tree.
        let pruned = table.pruned_partition(index.column, lo, hi);
        let (rids, err) = match index.range_in(pruned, lo, hi) {
            Ok(pairs) => (pairs.into_iter().map(|(_, r)| r).collect(), None),
            Err(e) => (Vec::new(), Some(EngineError::Storage(e))),
        };
        ctx.note_page_ref(); // index traversal touches shared index pages
        Self { ctx, table, rids, pos: 0, predicate, err }
    }
}

impl Executor for IndexScanExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        while self.pos < self.rids.len() {
            let rid = self.rids[self.pos];
            self.pos += 1;
            self.ctx.note_page_ref();
            let tuple = self.table.heap.get(rid)?;
            match &self.predicate {
                Some(p) if !eval_predicate(p, &tuple)? => continue,
                _ => return Ok(Some(tuple)),
            }
        }
        Ok(None)
    }
}

struct FilterExec {
    input: Box<dyn Executor>,
    predicate: Expr,
}

impl Executor for FilterExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            if eval_predicate(&self.predicate, &t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

struct ProjectExec {
    input: Box<dyn Executor>,
    exprs: Vec<Expr>,
}

impl Executor for ProjectExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        match self.input.next()? {
            Some(t) => {
                let vals =
                    self.exprs.iter().map(|e| eval(e, &t)).collect::<EngineResult<Vec<_>>>()?;
                Ok(Some(Tuple::new(vals)))
            }
            None => Ok(None),
        }
    }
}

/// Block nested-loop join: the inner input is materialized once.
struct NestedLoopJoinExec {
    ctx: ExecContext,
    left: Box<dyn Executor>,
    right: Box<dyn Executor>,
    predicate: Option<Expr>,
    inner: Option<Vec<Tuple>>,
    outer: Option<Tuple>,
    inner_pos: usize,
}

impl Executor for NestedLoopJoinExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if self.inner.is_none() {
            let mut inner = Vec::new();
            while let Some(t) = self.right.next()? {
                self.ctx.note_private_bytes(t.encoded_len() as u64);
                inner.push(t);
            }
            self.inner = Some(inner);
        }
        loop {
            if self.outer.is_none() {
                self.outer = self.left.next()?;
                self.inner_pos = 0;
                if self.outer.is_none() {
                    return Ok(None);
                }
            }
            let outer = self.outer.as_ref().expect("outer set above");
            let inner = self.inner.as_ref().expect("inner materialized");
            while self.inner_pos < inner.len() {
                let joined = outer.concat(&inner[self.inner_pos]);
                self.inner_pos += 1;
                match &self.predicate {
                    Some(p) if !eval_predicate(p, &joined)? => continue,
                    _ => return Ok(Some(joined)),
                }
            }
            self.outer = None;
        }
    }
}

/// Encode join/group keys byte-wise; `None` when any key is NULL (SQL
/// equality never matches NULLs).
fn encode_key(exprs: &[&Expr], tuple: &Tuple) -> EngineResult<Option<Vec<u8>>> {
    let mut out = Vec::new();
    for e in exprs {
        let v = eval(e, tuple)?;
        if v.is_null() {
            return Ok(None);
        }
        // Normalize Int/Float so 1 = 1.0 joins match.
        match v {
            Value::Int(i) => Value::Float(i as f64).encode(&mut out),
            other => other.encode(&mut out),
        }
    }
    Ok(Some(out))
}

struct HashJoinExec {
    ctx: ExecContext,
    left: Option<Box<dyn Executor>>,
    right: Box<dyn Executor>,
    keys: Vec<(Expr, Expr)>,
    residual: Option<Expr>,
    table: HashMap<Vec<u8>, Vec<Tuple>>,
    pending: Vec<Tuple>,
}

impl Executor for HashJoinExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        // Build phase.
        if let Some(mut left) = self.left.take() {
            let key_exprs: Vec<&Expr> = self.keys.iter().map(|(l, _)| l).collect();
            while let Some(t) = left.next()? {
                self.ctx.note_private_bytes(t.encoded_len() as u64);
                if let Some(k) = encode_key(&key_exprs, &t)? {
                    self.table.entry(k).or_default().push(t);
                }
            }
        }
        loop {
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            let Some(probe) = self.right.next()? else {
                return Ok(None);
            };
            let key_exprs: Vec<&Expr> = self.keys.iter().map(|(_, r)| r).collect();
            let Some(k) = encode_key(&key_exprs, &probe)? else {
                continue;
            };
            if let Some(matches) = self.table.get(&k) {
                for m in matches {
                    let joined = m.concat(&probe);
                    match &self.residual {
                        Some(p) if !eval_predicate(p, &joined)? => continue,
                        _ => self.pending.push(joined),
                    }
                }
            }
        }
    }
}

struct MergeJoinExec {
    ctx: ExecContext,
    left: Option<Box<dyn Executor>>,
    right: Option<Box<dyn Executor>>,
    keys: (Expr, Expr),
    residual: Option<Expr>,
    output: Vec<Tuple>,
    pos: usize,
    done: bool,
}

impl MergeJoinExec {
    fn new(
        ctx: ExecContext,
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        keys: (Expr, Expr),
        residual: Option<Expr>,
    ) -> Self {
        Self {
            ctx,
            left: Some(left),
            right: Some(right),
            keys,
            residual,
            output: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    /// Sort-merge both inputs and materialize the join output.
    fn compute(&mut self) -> EngineResult<()> {
        let mut lrows = Vec::new();
        let mut rrows = Vec::new();
        if let Some(mut l) = self.left.take() {
            while let Some(t) = l.next()? {
                self.ctx.note_private_bytes(t.encoded_len() as u64);
                let k = eval(&self.keys.0, &t)?;
                if !k.is_null() {
                    lrows.push((k, t));
                }
            }
        }
        if let Some(mut r) = self.right.take() {
            while let Some(t) = r.next()? {
                self.ctx.note_private_bytes(t.encoded_len() as u64);
                let k = eval(&self.keys.1, &t)?;
                if !k.is_null() {
                    rrows.push((k, t));
                }
            }
        }
        lrows.sort_by(|a, b| a.0.total_cmp(&b.0));
        rrows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (mut i, mut j) = (0, 0);
        while i < lrows.len() && j < rrows.len() {
            match lrows[i].0.sql_cmp(&rrows[j].0) {
                Some(std::cmp::Ordering::Less) => i += 1,
                Some(std::cmp::Ordering::Greater) => j += 1,
                Some(std::cmp::Ordering::Equal) => {
                    // Emit the cross product of the two equal-key groups.
                    let key = lrows[i].0.clone();
                    let li0 = i;
                    while i < lrows.len()
                        && lrows[i].0.sql_cmp(&key) == Some(std::cmp::Ordering::Equal)
                    {
                        i += 1;
                    }
                    let rj0 = j;
                    while j < rrows.len()
                        && rrows[j].0.sql_cmp(&key) == Some(std::cmp::Ordering::Equal)
                    {
                        j += 1;
                    }
                    for (_, lt) in &lrows[li0..i] {
                        for (_, rt) in &rrows[rj0..j] {
                            let joined = lt.concat(rt);
                            match &self.residual {
                                Some(p) if !eval_predicate(p, &joined)? => continue,
                                _ => self.output.push(joined),
                            }
                        }
                    }
                }
                None => {
                    return Err(EngineError::Eval("incomparable merge-join keys".into()));
                }
            }
        }
        Ok(())
    }
}

impl Executor for MergeJoinExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if !self.done {
            self.compute()?;
            self.done = true;
        }
        if self.pos < self.output.len() {
            self.pos += 1;
            Ok(Some(self.output[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

struct SortExec {
    ctx: ExecContext,
    input: Option<Box<dyn Executor>>,
    keys: Vec<(Expr, bool)>,
    sorted: Vec<Tuple>,
    pos: usize,
}

/// Sort tuples by key expressions (stable; NULLs first on ASC).
pub fn sort_tuples(rows: &mut [Tuple], keys: &[(Expr, bool)]) -> EngineResult<()> {
    // Precompute key values to avoid re-evaluating during comparisons.
    let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(rows.len());
    for t in rows.iter() {
        let ks = keys.iter().map(|(e, _)| eval(e, t)).collect::<EngineResult<Vec<_>>>()?;
        keyed.push((ks, t.clone()));
    }
    keyed.sort_by(|a, b| {
        for (idx, (_, asc)) in keys.iter().enumerate() {
            let ord = a.0[idx].total_cmp(&b.0[idx]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    for (slot, (_, t)) in rows.iter_mut().zip(keyed) {
        *slot = t;
    }
    Ok(())
}

impl Executor for SortExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if let Some(mut input) = self.input.take() {
            while let Some(t) = input.next()? {
                self.ctx.note_private_bytes(t.encoded_len() as u64);
                self.sorted.push(t);
            }
            sort_tuples(&mut self.sorted, &self.keys)?;
        }
        if self.pos < self.sorted.len() {
            self.pos += 1;
            Ok(Some(self.sorted[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

struct HashAggExec {
    ctx: ExecContext,
    input: Option<Box<dyn Executor>>,
    group_by: Vec<Expr>,
    aggs: Vec<AggSpec>,
    results: Vec<Tuple>,
    pos: usize,
}

impl HashAggExec {
    fn compute(&mut self, mut input: Box<dyn Executor>) -> EngineResult<()> {
        // Group key (raw values for output) → accumulators. Insertion order
        // is preserved for deterministic output before any Sort above.
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut saw_row = false;
        while let Some(t) = input.next()? {
            saw_row = true;
            self.ctx.note_private_bytes(t.encoded_len() as u64);
            let mut key_bytes = Vec::new();
            let mut key_vals = Vec::with_capacity(self.group_by.len());
            for g in &self.group_by {
                let v = eval(g, &t)?;
                v.encode(&mut key_bytes);
                key_vals.push(v);
            }
            let slot = match index.get(&key_bytes) {
                Some(&s) => s,
                None => {
                    let accs = self.aggs.iter().map(Accumulator::new).collect();
                    groups.push((key_vals, accs));
                    index.insert(key_bytes, groups.len() - 1);
                    groups.len() - 1
                }
            };
            for (acc, spec) in groups[slot].1.iter_mut().zip(&self.aggs) {
                match &spec.arg {
                    Some(a) => acc.update(&eval(a, &t)?)?,
                    None => acc.update_star(),
                }
            }
        }
        // Global aggregation over zero rows still yields one row.
        if !saw_row && self.group_by.is_empty() {
            let accs: Vec<Accumulator> = self.aggs.iter().map(Accumulator::new).collect();
            groups.push((Vec::new(), accs));
        }
        for (key_vals, accs) in groups {
            let mut vals = key_vals;
            vals.extend(accs.iter().map(Accumulator::finish));
            self.results.push(Tuple::new(vals));
        }
        Ok(())
    }
}

impl Executor for HashAggExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if let Some(input) = self.input.take() {
            self.compute(input)?;
        }
        if self.pos < self.results.len() {
            self.pos += 1;
            Ok(Some(self.results[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

struct DistinctExec {
    input: Box<dyn Executor>,
    seen: std::collections::HashSet<Vec<u8>>,
}

impl Executor for DistinctExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            if self.seen.insert(t.encode()) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

struct LimitExec {
    input: Box<dyn Executor>,
    remaining: u64,
}

impl Executor for LimitExec {
    fn next(&mut self) -> EngineResult<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(t) => {
                self.remaining -= 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }
}
