//! Expression evaluation over tuples.
//!
//! SQL three-valued logic: comparisons with NULL yield NULL; `WHERE`
//! treats NULL as false. Arithmetic propagates NULL and reports overflow
//! and division by zero as errors.

use crate::error::{EngineError, EngineResult};
use staged_sql::ast::{BinOp, Expr, UnaryOp};
use staged_storage::{Tuple, Value};

/// Evaluate `expr` against `tuple` (column indexes must be bound).
pub fn eval(expr: &Expr, tuple: &Tuple) -> EngineResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => {
            let idx = c
                .index
                .ok_or_else(|| EngineError::Internal(format!("unbound column {}", c.name)))?;
            tuple
                .values()
                .get(idx)
                .cloned()
                .ok_or_else(|| EngineError::Internal(format!("column {idx} out of arity")))
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, tuple)?;
            match (op, v) {
                (_, Value::Null) => Ok(Value::Null),
                (UnaryOp::Neg, Value::Int(i)) => i
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or_else(|| EngineError::Eval("integer overflow".into())),
                (UnaryOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (op, v) => Err(EngineError::Eval(format!("cannot apply {op:?} to {v}"))),
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, tuple),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, tuple)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between { expr, lo, hi, negated } => {
            let v = eval(expr, tuple)?;
            let lo = eval(lo, tuple)?;
            let hi = eval(hi, tuple)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a.is_ge() && b.is_le();
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, tuple)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, tuple)?;
                match v.sql_cmp(&w) {
                    Some(o) if o.is_eq() => return Ok(Value::Bool(!*negated)),
                    None => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, tuple)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                other => Err(EngineError::Eval(format!("LIKE on non-string {other}"))),
            }
        }
        Expr::Agg { .. } => {
            Err(EngineError::Internal("bare aggregate reached the evaluator".into()))
        }
    }
}

/// Evaluate a predicate: NULL counts as false (SQL WHERE semantics).
pub fn eval_predicate(expr: &Expr, tuple: &Tuple) -> EngineResult<bool> {
    match eval(expr, tuple)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(EngineError::Eval(format!("predicate evaluated to {other}"))),
    }
}

fn eval_binary(left: &Expr, op: BinOp, right: &Expr, tuple: &Tuple) -> EngineResult<Value> {
    // AND/OR use three-valued logic with short circuiting.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, tuple)?;
        let l3 = to_tri(&l)?;
        match (op, l3) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval(right, tuple)?;
        let r3 = to_tri(&r)?;
        return Ok(match (op, l3, r3) {
            (BinOp::And, Some(true), Some(true)) => Value::Bool(true),
            (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Value::Bool(false),
            (BinOp::Or, Some(false), Some(false)) => Value::Bool(false),
            (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Value::Bool(true),
            _ => Value::Null,
        });
    }
    let l = eval(left, tuple)?;
    let r = eval(right, tuple)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let Some(ord) = l.sql_cmp(&r) else {
            return Err(EngineError::Eval(format!("cannot compare {l} with {r}")));
        };
        let b = match op {
            BinOp::Eq => ord.is_eq(),
            BinOp::NotEq => !ord.is_eq(),
            BinOp::Lt => ord.is_lt(),
            BinOp::LtEq => ord.is_le(),
            BinOp::Gt => ord.is_gt(),
            BinOp::GtEq => ord.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic.
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(EngineError::Eval("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(EngineError::Eval("modulo by zero".into()));
                    }
                    a.checked_rem(*b)
                }
                _ => unreachable!("non-arithmetic handled above"),
            };
            v.map(Value::Int).ok_or_else(|| EngineError::Eval("integer overflow".into()))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
                return Err(EngineError::Eval(format!("arithmetic on {l} and {r}")));
            };
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(EngineError::Eval("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(EngineError::Eval("modulo by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

fn to_tri(v: &Value) -> EngineResult<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(EngineError::Eval(format!("boolean operator on {other}"))),
    }
}

/// SQL LIKE with `%` (any run) and `_` (any char); case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Try every split point (including empty).
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_sql::ast::ColumnRef;

    fn col(i: usize) -> Expr {
        Expr::Column(ColumnRef { table: None, name: format!("#{i}"), index: Some(i) })
    }

    fn row(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let t = row(vec![Value::Int(6), Value::Float(1.5)]);
        let e = Expr::binary(col(0), BinOp::Mul, Expr::int(7));
        assert_eq!(eval(&e, &t).unwrap(), Value::Int(42));
        let e = Expr::binary(col(0), BinOp::Add, col(1));
        assert_eq!(eval(&e, &t).unwrap(), Value::Float(7.5));
        let e = Expr::binary(col(0), BinOp::GtEq, Expr::int(6));
        assert_eq!(eval(&e, &t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_and_overflow_are_errors() {
        let t = row(vec![Value::Int(1)]);
        assert!(eval(&Expr::binary(col(0), BinOp::Div, Expr::int(0)), &t).is_err());
        assert!(eval(&Expr::binary(col(0), BinOp::Mod, Expr::int(0)), &t).is_err());
        let big = Expr::binary(Expr::int(i64::MAX), BinOp::Add, Expr::int(1));
        assert!(eval(&big, &t).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let t = row(vec![Value::Null, Value::Bool(true), Value::Bool(false)]);
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        let e = Expr::binary(col(0), BinOp::And, col(2));
        assert_eq!(eval(&e, &t).unwrap(), Value::Bool(false));
        let e = Expr::binary(col(0), BinOp::And, col(1));
        assert_eq!(eval(&e, &t).unwrap(), Value::Null);
        // NULL OR TRUE = TRUE.
        let e = Expr::binary(col(0), BinOp::Or, col(1));
        assert_eq!(eval(&e, &t).unwrap(), Value::Bool(true));
        // Comparisons with NULL are NULL, and predicates treat that as false.
        let e = Expr::binary(col(0), BinOp::Eq, Expr::int(1));
        assert_eq!(eval(&e, &t).unwrap(), Value::Null);
        assert!(!eval_predicate(&e, &t).unwrap());
    }

    #[test]
    fn in_list_null_semantics() {
        let t = row(vec![Value::Int(5)]);
        let e = Expr::InList {
            expr: Box::new(col(0)),
            list: vec![Expr::int(1), Expr::Literal(Value::Null)],
            negated: false,
        };
        // 5 IN (1, NULL) → NULL (unknown).
        assert_eq!(eval(&e, &t).unwrap(), Value::Null);
        let e = Expr::InList {
            expr: Box::new(col(0)),
            list: vec![Expr::int(5), Expr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_is_inclusive() {
        let t = row(vec![Value::Int(5)]);
        let e = Expr::Between {
            expr: Box::new(col(0)),
            lo: Box::new(Expr::int(5)),
            hi: Box::new(Expr::int(9)),
            negated: false,
        };
        assert_eq!(eval(&e, &t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("wisconsin", "wis%"));
        assert!(like_match("wisconsin", "%sin"));
        assert!(like_match("wisconsin", "%con%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("a%b", "a%b")); // literal traversal still matches
    }
}
