//! DML execution: INSERT, UPDATE, DELETE with index maintenance and WAL
//! logging (the "end Xaction" work of the paper's disconnect stage).

use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval, eval_predicate};
use crate::txn::{TxnManager, Undo};
use staged_planner::{plan_table_filter, PhysicalPlan, PlannerConfig};
use staged_sql::ast::Expr;
use staged_storage::catalog::TableInfo;
use staged_storage::wal::{LogRecord, Lsn, Wal};
use staged_storage::{Rid, Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Where a DML statement's changes are recorded: the WAL (redo), and —
/// when the statement runs inside a transaction — the transaction
/// manager's undo log (rollback). Passing `None` to the DML entry points
/// skips logging entirely (bulk loads, tests).
pub struct DmlLog<'a> {
    /// The write-ahead log.
    pub wal: &'a Wal,
    /// Transaction the records belong to.
    pub xid: u64,
    /// Undo-log sink; `None` for unmanaged (bare-WAL) callers.
    pub txn: Option<&'a TxnManager>,
}

impl<'a> DmlLog<'a> {
    /// WAL-only logging (no in-memory undo), as used before the
    /// transaction subsystem existed.
    pub fn wal_only(wal: &'a Wal, xid: u64) -> Self {
        Self { wal, xid, txn: None }
    }

    /// Full transactional logging: WAL plus the manager's undo log.
    pub fn txn(wal: &'a Wal, xid: u64, txn: &'a TxnManager) -> Self {
        Self { wal, xid, txn: Some(txn) }
    }

    fn note_undo(&self, undo: Undo) {
        if let Some(mgr) = self.txn {
            mgr.record_undo(self.xid, undo);
        }
    }

    /// The xid to register MVCC version notes under: statements running
    /// under the transaction manager version their changes; bare-WAL
    /// callers (bulk loads, recovery replay) do not — their rows are
    /// immediately visible to everyone, which is correct because those
    /// paths run without concurrent readers.
    fn versioned(&self) -> Option<u64> {
        self.txn.map(|_| self.xid)
    }
}

/// Insert fully-evaluated rows; returns the number inserted.
pub fn insert_rows(
    ctx: &ExecContext,
    table: &Arc<TableInfo>,
    rows: Vec<Tuple>,
    log: Option<&DmlLog<'_>>,
) -> EngineResult<u64> {
    let indexes = ctx.catalog.indexes_for(table.id);
    let mut n = 0;
    for row in rows {
        table.schema.validate(&row)?;
        let (part, rid) = match log.and_then(|l| l.versioned()) {
            // Versioned insert: register the rid in the overlay from inside
            // the page latch, so no reader can decode the row before its
            // Pending stamp exists.
            Some(xid) => {
                table.heap.insert_routed_with(&row, |rid| table.versions.note_insert(rid, xid))?
            }
            None => table.heap.insert_routed(&row)?,
        };
        ctx.note_page_ref();
        for ix in &indexes {
            if let Some(k) = row.get(ix.column).as_int() {
                ix.insert(part, k, rid)?;
            }
        }
        if let Some(log) = log {
            log.wal.append(&LogRecord::Insert {
                xid: log.xid,
                table: table.id.0,
                rid,
                bytes: row.encode(),
            })?;
            log.note_undo(Undo::Insert { table: table.id.0, rid });
        }
        n += 1;
    }
    Ok(n)
}

/// Collect the rids matching a (table-locally bound) predicate, using an
/// index when the planner finds one profitable.
pub fn matching_rids(
    ctx: &ExecContext,
    table: &Arc<TableInfo>,
    predicate: &Option<Expr>,
) -> EngineResult<Vec<(Rid, Tuple)>> {
    let plan = plan_table_filter(table, predicate.clone(), &ctx.catalog, &PlannerConfig::default());
    let mut out = Vec::new();
    match &plan {
        PhysicalPlan::IndexScan { index, lo, hi, predicate: residual, .. } => {
            let pruned = table.pruned_partition(index.column, *lo, *hi);
            for (_, rid) in index.range_in(pruned, *lo, *hi)? {
                ctx.note_page_ref();
                let t = table.heap.get(rid)?;
                if match residual {
                    Some(p) => eval_predicate(p, &t)?,
                    None => true,
                } {
                    out.push((rid, t));
                }
            }
        }
        // A pruned partition scan (predicate pins the hash key): DML only
        // has to read the one partition that can hold matches. The scan
        // keeps the full predicate, so hash collisions are filtered here.
        PhysicalPlan::PartitionScan { partition, predicate: pruned_pred, .. } => {
            for item in table.heap.scan_partition(*partition) {
                let (rid, t) = item?;
                ctx.note_page_ref();
                if match pruned_pred {
                    Some(p) => eval_predicate(p, &t)?,
                    None => true,
                } {
                    out.push((rid, t));
                }
            }
        }
        _ => {
            for item in table.heap.scan() {
                let (rid, t) = item?;
                ctx.note_page_ref();
                if match predicate {
                    Some(p) => eval_predicate(p, &t)?,
                    None => true,
                } {
                    out.push((rid, t));
                }
            }
        }
    }
    Ok(out)
}

/// Delete matching rows; returns the number deleted.
pub fn delete_rows(
    ctx: &ExecContext,
    table: &Arc<TableInfo>,
    predicate: &Option<Expr>,
    log: Option<&DmlLog<'_>>,
) -> EngineResult<u64> {
    let victims = matching_rids(ctx, table, predicate)?;
    let indexes = ctx.catalog.indexes_for(table.id);
    let mut n = 0;
    for (rid, row) in victims {
        let part = table.heap.partition_of(&row);
        let before = row.encode();
        // Register the dead version *before* the heap delete: a reader
        // either still sees the live row (and deduplicates against the
        // dead copy) or misses it and finds the dead version — never
        // neither.
        if let Some(xid) = log.and_then(|l| l.versioned()) {
            table.versions.note_delete(rid, before.clone(), xid);
        }
        table.heap.delete(rid)?;
        for ix in &indexes {
            if let Some(k) = row.get(ix.column).as_int() {
                ix.delete(part, k, rid)?;
            }
        }
        if let Some(log) = log {
            log.wal.append(&LogRecord::Delete {
                xid: log.xid,
                table: table.id.0,
                rid,
                before: before.clone(),
            })?;
            log.note_undo(Undo::Delete { table: table.id.0, rid, before });
        }
        n += 1;
    }
    Ok(n)
}

/// Update matching rows with SET assignments (column index, expression over
/// the table layout); returns the number updated.
pub fn update_rows(
    ctx: &ExecContext,
    table: &Arc<TableInfo>,
    sets: &[(usize, Expr)],
    predicate: &Option<Expr>,
    log: Option<&DmlLog<'_>>,
) -> EngineResult<u64> {
    let victims = matching_rids(ctx, table, predicate)?;
    let indexes = ctx.catalog.indexes_for(table.id);
    let mut n = 0;
    for (rid, old) in victims {
        let mut vals: Vec<Value> = old.values().to_vec();
        for (col, e) in sets {
            if *col >= vals.len() {
                return Err(EngineError::Internal(format!("SET column {col} out of range")));
            }
            vals[*col] = eval(e, &old)?;
        }
        let new = Tuple::new(vals);
        table.schema.validate(&new)?;
        let old_part = table.heap.partition_of(&old);
        let new_part = table.heap.partition_of(&new);
        let before = old.encode();
        // An update is delete + insert, versioned the same way: old image
        // becomes a dead version, new image gets a Pending stamp.
        if let Some(xid) = log.and_then(|l| l.versioned()) {
            table.versions.note_delete(rid, before.clone(), xid);
        }
        table.heap.delete(rid)?;
        let new_rid = match log.and_then(|l| l.versioned()) {
            Some(xid) => {
                table.heap.insert_routed_with(&new, |r| table.versions.note_insert(r, xid))?.1
            }
            None => table.heap.insert(&new)?,
        };
        for ix in &indexes {
            if let Some(k) = old.get(ix.column).as_int() {
                ix.delete(old_part, k, rid)?;
            }
            if let Some(k) = new.get(ix.column).as_int() {
                ix.insert(new_part, k, new_rid)?;
            }
        }
        if let Some(log) = log {
            log.wal.append(&LogRecord::Delete {
                xid: log.xid,
                table: table.id.0,
                rid,
                before: before.clone(),
            })?;
            log.wal.append(&LogRecord::Insert {
                xid: log.xid,
                table: table.id.0,
                rid: new_rid,
                bytes: new.encode(),
            })?;
            // Forward order Delete-then-Insert; rollback walks the undo log
            // in reverse, so it removes the new image before restoring the
            // old one.
            log.note_undo(Undo::Delete { table: table.id.0, rid, before });
            log.note_undo(Undo::Insert { table: table.id.0, rid: new_rid });
        }
        n += 1;
    }
    Ok(n)
}

/// Replay a stream of WAL records belonging to *committed* transactions
/// into the catalog. A first pass over `records` collects the xids with a
/// `Commit` record; the replay pass skips every record of an uncommitted
/// or aborted transaction, so a crash between `Begin` and `Commit` erases
/// that transaction entirely. Inserts re-route through the hash
/// partitioner and rebuild per-partition index entries.
///
/// Addresses in the log are *capture-time* addresses: `table_map`
/// translates table ids (identity where absent) and `rid_map` translates
/// rids. Checkpointed recovery seeds both from
/// [`RestoreMaps`](staged_storage::snapshot::RestoreMaps), which is what
/// lets a tail-replayed `Delete` find a row that was restored from the
/// snapshot rather than inserted during replay; plain full-log redo starts
/// them empty. The maps are keyed by the ids *written in the log*, and
/// `rid_map` is extended as inserts replay.
///
/// Returns the number of records applied.
pub fn apply_records(
    ctx: &ExecContext,
    records: &[(Lsn, LogRecord)],
    rid_map: &mut HashMap<(u32, Rid), Rid>,
    table_map: &HashMap<u32, u32>,
) -> EngineResult<u64> {
    let committed: HashSet<u64> = records
        .iter()
        .filter_map(|(_, r)| match r {
            LogRecord::Commit { xid } => Some(*xid),
            _ => None,
        })
        .collect();
    let mut applied = 0u64;
    for (_, rec) in records {
        if !committed.contains(&rec.xid()) {
            continue;
        }
        match rec {
            LogRecord::Insert { table, rid, bytes, .. } => {
                let target = table_map.get(table).copied().unwrap_or(*table);
                let info = ctx.catalog.table_by_id(staged_storage::catalog::TableId(target))?;
                let row = Tuple::decode(bytes)?;
                let (part, new_rid) = info.heap.insert_routed(&row)?;
                for ix in ctx.catalog.indexes_for(info.id) {
                    if let Some(k) = row.get(ix.column).as_int() {
                        ix.insert(part, k, new_rid)?;
                    }
                }
                rid_map.insert((*table, *rid), new_rid);
                applied += 1;
            }
            LogRecord::Delete { table, rid, .. } => {
                let target = table_map.get(table).copied().unwrap_or(*table);
                let info = ctx.catalog.table_by_id(staged_storage::catalog::TableId(target))?;
                let new_rid = match rid_map.remove(&(*table, *rid)) {
                    Some(r) => r,
                    // A delete of a row whose insert predates the log's
                    // start (and isn't in a seeded snapshot map); nothing
                    // to redo.
                    None => continue,
                };
                let row = info.heap.get(new_rid)?;
                let part = info.heap.partition_of(&row);
                info.heap.delete(new_rid)?;
                for ix in ctx.catalog.indexes_for(info.id) {
                    if let Some(k) = row.get(ix.column).as_int() {
                        ix.delete(part, k, new_rid)?;
                    }
                }
                applied += 1;
            }
            LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. } => {}
        }
    }
    Ok(applied)
}

/// Redo recovery over the *whole* log: strict read (any corruption is an
/// error, never a panic), then [`apply_records`] with empty address maps
/// into the catalog's (freshly re-created, empty) tables. Checkpointed
/// recovery lives in [`crate::checkpoint::recover`], which replays only
/// the tail above the snapshot LSN.
///
/// Returns the number of records applied.
pub fn redo(ctx: &ExecContext, wal: &Wal) -> EngineResult<u64> {
    let records = wal.read_all()?;
    let mut rid_map = HashMap::new();
    apply_records(ctx, &records, &mut rid_map, &HashMap::new())
}

/// Apply the records of *one committed transaction* with MVCC version
/// tracking — the replica apply path. Unlike [`apply_records`] (whose
/// bare inserts are instantly visible, fine for offline recovery but a
/// torn read waiting to happen under live readers), every heap change is
/// stamped Pending under the transaction's xid while it lands, and
/// visibility flips atomically through the catalog's commit oracle —
/// the same discipline `TxnManager::commit` follows. Snapshot sessions
/// pinned on a replica therefore see the whole transaction or none of it.
///
/// `records` must be the complete record run of a single transaction
/// (its `Begin`/`Commit` markers are tolerated and skipped); `rid_map`
/// translates primary rids to local rids exactly as in [`apply_records`]
/// and is extended as inserts land.
///
/// Returns the number of records applied.
pub fn apply_versioned_txn(
    ctx: &ExecContext,
    records: &[LogRecord],
    rid_map: &mut HashMap<(u32, Rid), Rid>,
) -> EngineResult<u64> {
    let Some(xid) = records.first().map(|r| r.xid()) else {
        return Ok(0);
    };
    let mut touched: HashMap<u32, Arc<TableInfo>> = HashMap::new();
    let mut applied = 0u64;
    for rec in records {
        if rec.xid() != xid {
            return Err(EngineError::Internal(format!(
                "apply_versioned_txn: mixed xids {xid} and {}",
                rec.xid()
            )));
        }
        match rec {
            LogRecord::Insert { table, rid, bytes, .. } => {
                let info = ctx.catalog.table_by_id(staged_storage::catalog::TableId(*table))?;
                let row = Tuple::decode(bytes)?;
                let (part, new_rid) =
                    info.heap.insert_routed_with(&row, |r| info.versions.note_insert(r, xid))?;
                for ix in ctx.catalog.indexes_for(info.id) {
                    if let Some(k) = row.get(ix.column).as_int() {
                        ix.insert(part, k, new_rid)?;
                    }
                }
                rid_map.insert((*table, *rid), new_rid);
                touched.insert(*table, info);
                applied += 1;
            }
            LogRecord::Delete { table, rid, before, .. } => {
                let info = ctx.catalog.table_by_id(staged_storage::catalog::TableId(*table))?;
                let new_rid = match rid_map.remove(&(*table, *rid)) {
                    Some(r) => r,
                    None => continue,
                };
                let row = info.heap.get(new_rid)?;
                let part = info.heap.partition_of(&row);
                // Dead version registered before the heap delete, so a
                // concurrent snapshot reader either still sees the live
                // row or finds the dead version — never neither.
                info.versions.note_delete(new_rid, before.clone(), xid);
                info.heap.delete(new_rid)?;
                for ix in ctx.catalog.indexes_for(info.id) {
                    if let Some(k) = row.get(ix.column).as_int() {
                        ix.delete(part, k, new_rid)?;
                    }
                }
                touched.insert(*table, info);
                applied += 1;
            }
            LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. } => {}
        }
    }
    // The atomic visibility flip: inside the oracle's publish section, so
    // a reader's snapshot either predates the whole transaction or covers
    // all of it.
    ctx.catalog.oracle().commit(|ts| {
        for info in touched.values() {
            info.versions.commit(xid, ts);
        }
    });
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_sql::ast::{BinOp, ColumnRef};
    use staged_storage::{BufferPool, Catalog, Column, DataType, MemDisk, PageId, Schema};

    fn setup() -> (ExecContext, Arc<TableInfo>) {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
        let catalog = Arc::new(Catalog::new(pool));
        let t = catalog
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
            )
            .unwrap();
        catalog.create_index("t_id", "t", "id").unwrap();
        (ExecContext::new(catalog), t)
    }

    fn col(i: usize) -> Expr {
        Expr::Column(ColumnRef { table: None, name: format!("#{i}"), index: Some(i) })
    }

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)])).collect()
    }

    #[test]
    fn insert_maintains_index() {
        let (ctx, t) = setup();
        assert_eq!(insert_rows(&ctx, &t, rows(100), None).unwrap(), 100);
        let ix = ctx.catalog.index_on(t.id, 0).unwrap();
        assert_eq!(ix.search(42).unwrap().len(), 1);
        assert_eq!(t.heap.count().unwrap(), 100);
    }

    #[test]
    fn delete_with_predicate_uses_index_and_cleans_it() {
        let (ctx, t) = setup();
        insert_rows(&ctx, &t, rows(100), None).unwrap();
        ctx.catalog.analyze_table("t").unwrap();
        let pred = Some(Expr::binary(col(0), BinOp::Eq, Expr::int(7)));
        assert_eq!(delete_rows(&ctx, &t, &pred, None).unwrap(), 1);
        let ix = ctx.catalog.index_on(t.id, 0).unwrap();
        assert!(ix.search(7).unwrap().is_empty());
        assert_eq!(t.heap.count().unwrap(), 99);
    }

    #[test]
    fn update_rewrites_values_and_index() {
        let (ctx, t) = setup();
        insert_rows(&ctx, &t, rows(10), None).unwrap();
        let pred = Some(Expr::binary(col(0), BinOp::Eq, Expr::int(3)));
        let sets = vec![
            (0usize, Expr::int(333)),
            (1usize, Expr::binary(col(1), BinOp::Add, Expr::int(1))),
        ];
        assert_eq!(update_rows(&ctx, &t, &sets, &pred, None).unwrap(), 1);
        let ix = ctx.catalog.index_on(t.id, 0).unwrap();
        assert!(ix.search(3).unwrap().is_empty());
        let hits = ix.search(333).unwrap();
        assert_eq!(hits.len(), 1);
        let row = t.heap.get(hits[0]).unwrap();
        assert_eq!(row.values(), &[Value::Int(333), Value::Int(7)]);
    }

    #[test]
    fn partitioned_dml_maintains_per_partition_indexes() {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
        let catalog = Arc::new(Catalog::new(pool));
        let t = catalog
            .create_table_partitioned(
                "t",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
                4,
                0,
            )
            .unwrap();
        catalog.create_index("t_id", "t", "id").unwrap();
        let ctx = ExecContext::new(Arc::clone(&catalog));
        insert_rows(&ctx, &t, rows(100), None).unwrap();
        ctx.catalog.analyze_table("t").unwrap();
        let ix = ctx.catalog.index_on(t.id, 0).unwrap();
        // Keyed delete prunes to one partition and cleans its tree.
        let pred = Some(Expr::binary(col(0), BinOp::Eq, Expr::int(7)));
        assert_eq!(delete_rows(&ctx, &t, &pred, None).unwrap(), 1);
        assert!(ix.search(7).unwrap().is_empty());
        // Keyed update moves the row (and its index entry) to the new
        // key's partition.
        let pred = Some(Expr::binary(col(0), BinOp::Eq, Expr::int(9)));
        let sets = vec![(0usize, Expr::int(900))];
        assert_eq!(update_rows(&ctx, &t, &sets, &pred, None).unwrap(), 1);
        assert!(ix.search(9).unwrap().is_empty());
        let p = staged_storage::partition_of_value(&Value::Int(900), 4);
        assert_eq!(ix.btree_for(p).search(900).unwrap().len(), 1);
        assert_eq!(t.heap.count().unwrap(), 99);
    }

    #[test]
    fn schema_violations_are_rejected() {
        let (ctx, t) = setup();
        let bad = vec![Tuple::new(vec![Value::Str("no".into()), Value::Int(0)])];
        assert!(insert_rows(&ctx, &t, bad, None).is_err());
    }

    #[test]
    fn wal_records_dml() {
        let (ctx, t) = setup();
        let wal = Wal::in_memory();
        let log = DmlLog::wal_only(&wal, 9);
        insert_rows(&ctx, &t, rows(3), Some(&log)).unwrap();
        delete_rows(&ctx, &t, &None, Some(&log)).unwrap();
        wal.flush().unwrap();
        let recs = wal.read_all().unwrap();
        let inserts = recs.iter().filter(|(_, r)| matches!(r, LogRecord::Insert { .. })).count();
        let deletes = recs.iter().filter(|(_, r)| matches!(r, LogRecord::Delete { .. })).count();
        assert_eq!(inserts, 3);
        assert_eq!(deletes, 3);
        // Delete records carry the before-image of what they destroyed.
        for (_, r) in &recs {
            if let LogRecord::Delete { before, .. } = r {
                let row = Tuple::decode(before).unwrap();
                assert_eq!(row.values().len(), 2);
            }
        }
    }

    #[test]
    fn versioned_apply_lands_rows_and_advances_the_oracle() {
        let (ctx, t) = setup();
        let row = |i: i64| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]).encode();
        let recs = vec![
            LogRecord::Begin { xid: 7 },
            LogRecord::Insert { xid: 7, table: t.id.0, rid: Rid::new(PageId(1), 0), bytes: row(1) },
            LogRecord::Insert { xid: 7, table: t.id.0, rid: Rid::new(PageId(1), 1), bytes: row(2) },
            LogRecord::Delete {
                xid: 7,
                table: t.id.0,
                rid: Rid::new(PageId(1), 0),
                before: row(1),
            },
            LogRecord::Commit { xid: 7 },
        ];
        let before_ts = ctx.catalog.oracle().latest();
        let mut rid_map = HashMap::new();
        assert_eq!(apply_versioned_txn(&ctx, &recs, &mut rid_map).unwrap(), 3);
        assert_eq!(t.heap.count().unwrap(), 1);
        assert!(ctx.catalog.oracle().latest() > before_ts, "commit must advance the oracle");
        // The surviving row is fully committed: no Pending stamps remain.
        assert_eq!(t.versions.stats().pending_txns, 0);
        // Mixed xids in one run are a caller bug, not silently applied.
        let mixed = vec![LogRecord::Begin { xid: 1 }, LogRecord::Commit { xid: 2 }];
        assert!(apply_versioned_txn(&ctx, &mixed, &mut rid_map).is_err());
    }

    #[test]
    fn redo_skips_uncommitted_and_aborted_transactions() {
        let (ctx, t) = setup();
        let wal = Wal::in_memory();
        // xid 1 commits, xid 2 aborts, xid 3 crashes mid-flight.
        wal.append(&LogRecord::Begin { xid: 1 }).unwrap();
        insert_rows(&ctx, &t, rows(5), Some(&DmlLog::wal_only(&wal, 1))).unwrap();
        wal.append(&LogRecord::Commit { xid: 1 }).unwrap();
        wal.append(&LogRecord::Begin { xid: 2 }).unwrap();
        let aborted: Vec<Tuple> =
            (100..105).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0)])).collect();
        insert_rows(&ctx, &t, aborted, Some(&DmlLog::wal_only(&wal, 2))).unwrap();
        wal.append(&LogRecord::Abort { xid: 2 }).unwrap();
        wal.append(&LogRecord::Begin { xid: 3 }).unwrap();
        let inflight: Vec<Tuple> =
            (200..203).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0)])).collect();
        insert_rows(&ctx, &t, inflight, Some(&DmlLog::wal_only(&wal, 3))).unwrap();
        wal.flush().unwrap();

        let (ctx2, t2) = setup();
        let applied = redo(&ctx2, &wal).unwrap();
        assert_eq!(applied, 5, "only xid 1's records replay");
        let ids: Vec<i64> = t2.heap.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
        assert_eq!(ids.len(), 5);
        assert!(ids.iter().all(|i| *i < 5), "uncommitted rows leaked into redo: {ids:?}");
    }
}
