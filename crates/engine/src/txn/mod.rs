//! The transaction subsystem: a transaction manager over a partition-
//! granular lock table, giving the staged server its lock-manager stage.
//!
//! Design (DESIGN.md §9):
//! - **Strict two-phase locking.** DML acquires exclusive locks on the
//!   partitions it writes (whole table = all partitions) before touching
//!   the heap, and holds them until commit/abort. Deadlocks resolve by
//!   timeout-abort in [`lock::LockTable`].
//! - **Undo via before-images.** Every WAL-logged heap change also pushes
//!   an [`Undo`] entry into the transaction's in-memory undo log; `ROLLBACK`
//!   replays it in reverse, restoring heap *and* per-partition index state.
//! - **Atomic commit.** `COMMIT` appends a `Commit` record, which forces
//!   the log to disk; redo recovery ([`crate::dml::redo`]) replays only
//!   transactions whose commit record is durable, so a crash between
//!   `Begin` and `Commit` erases the transaction.

pub mod lock;

pub use lock::{LockError, LockKey, LockMode, LockTable};

use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use parking_lot::Mutex;
use staged_storage::catalog::TableId;
use staged_storage::wal::{LogRecord, Wal};
use staged_storage::{CommitOracle, Rid, Tuple};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One entry of a transaction's in-memory undo log.
#[derive(Debug, Clone)]
pub enum Undo {
    /// The transaction inserted a row at `rid`; undo deletes it (and its
    /// index entries).
    Insert {
        /// Table the row went into.
        table: u32,
        /// Where it landed.
        rid: Rid,
    },
    /// The transaction deleted a row; undo re-inserts the before-image
    /// (re-routed through the hash partitioner, indexes restored).
    Delete {
        /// Table the row was removed from.
        table: u32,
        /// Where it lived when the transaction deleted it. Undo may
        /// re-insert it elsewhere; the rollback keeps a remap so earlier
        /// undo entries referencing this rid still find the row.
        rid: Rid,
        /// Encoded before-image.
        before: Vec<u8>,
    },
}

#[derive(Default)]
struct TxnState {
    undo: Vec<Undo>,
}

/// The transaction manager: xid allocation, per-transaction undo logs, and
/// the shared [`LockTable`]. One instance per server (both engines of a
/// server share it, so their transactions interleave correctly).
#[derive(Default)]
pub struct TxnManager {
    locks: LockTable,
    next_xid: AtomicU64,
    active: Mutex<HashMap<u64, TxnState>>,
    oracle: Arc<CommitOracle>,
}

impl TxnManager {
    /// A fresh manager; xids start at 1 (0 is the "no transaction" xid).
    pub fn new() -> Self {
        Self::with_oracle(CommitOracle::new())
    }

    /// A fresh manager stamping commits against an existing `oracle` —
    /// use the catalog's so every manager over the same tables shares
    /// one commit clock (see `Catalog::oracle`).
    pub fn with_oracle(oracle: Arc<CommitOracle>) -> Self {
        Self {
            locks: LockTable::new(),
            next_xid: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
            oracle,
        }
    }

    /// The lock table (the lock-manager stage's data structure).
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The commit-timestamp oracle. Readers pin snapshots here; commits
    /// advance it.
    pub fn oracle(&self) -> &Arc<CommitOracle> {
        &self.oracle
    }

    /// Start a transaction: allocate an xid and log `Begin`.
    pub fn begin(&self, wal: &Wal) -> EngineResult<u64> {
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        self.active.lock().insert(xid, TxnState::default());
        wal.append(&LogRecord::Begin { xid })?;
        Ok(xid)
    }

    /// True while `xid` is live (begun, not yet committed/aborted).
    pub fn is_active(&self, xid: u64) -> bool {
        self.active.lock().contains_key(&xid)
    }

    /// Number of live transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// The xids of every live transaction (the version GC's liveness set;
    /// only meaningful while writers are quiesced, since a transaction can
    /// begin the instant the lock drops).
    pub fn active_xids(&self) -> HashSet<u64> {
        self.active.lock().keys().copied().collect()
    }

    /// Append an undo entry to a live transaction (no-op for finished or
    /// unknown xids, so non-transactional callers can pass xid 0).
    pub fn record_undo(&self, xid: u64, undo: Undo) {
        if let Some(state) = self.active.lock().get_mut(&xid) {
            state.undo.push(undo);
        }
    }

    /// Commit: force the `Commit` record to the log disk (the atomic
    /// commit point), then release every lock. If the commit record cannot
    /// be made durable the transaction rolls back instead — in-memory
    /// state must never show effects that recovery would erase.
    pub fn commit(&self, xid: u64, ctx: &ExecContext, wal: &Wal) -> EngineResult<()> {
        let state = self.active.lock().remove(&xid);
        let Some(state) = state else {
            return Err(EngineError::Txn(format!("commit of unknown xid {xid}")));
        };
        match wal.append(&LogRecord::Commit { xid }) {
            Ok(_) => {
                // Publish the transaction's versions: allocate the commit
                // timestamp and flip its Pending overlay entries inside the
                // oracle's critical section, *before* releasing locks —
                // once another writer can touch these partitions, readers
                // must already agree on what this transaction changed.
                let tables = touched_tables(&state.undo);
                if !tables.is_empty() {
                    self.oracle.commit(|ts| {
                        for t in &tables {
                            if let Ok(info) = ctx.catalog.table_by_id(TableId(*t)) {
                                info.versions.commit(xid, ts);
                            }
                        }
                    });
                }
                self.locks.release_all(xid);
                Ok(())
            }
            Err(e) => {
                let undo_res = self.apply_undo(&state.undo, ctx);
                self.drop_version_pendings(xid, &state.undo, ctx);
                self.locks.release_all(xid);
                undo_res?;
                Err(EngineError::Txn(format!("commit of xid {xid} failed, rolled back: {e}")))
            }
        }
    }

    /// Roll back: apply the undo log in reverse (restoring heap contents
    /// and per-partition index entries), log `Abort`, release locks.
    /// Returns the number of undo entries applied.
    pub fn rollback(&self, xid: u64, ctx: &ExecContext, wal: &Wal) -> EngineResult<u64> {
        let state = self.active.lock().remove(&xid);
        let Some(state) = state else {
            return Err(EngineError::Txn(format!("rollback of unknown xid {xid}")));
        };
        let result = self.apply_undo(&state.undo, ctx);
        self.drop_version_pendings(xid, &state.undo, ctx);
        // Locks release and the Abort record land even if an undo step
        // failed — a wedged lock table would be strictly worse.
        let wal_res = wal.append(&LogRecord::Abort { xid }).and_then(|_| wal.flush());
        self.locks.release_all(xid);
        let applied = result?;
        wal_res?;
        Ok(applied)
    }

    fn apply_undo(&self, undo: &[Undo], ctx: &ExecContext) -> EngineResult<u64> {
        // When a transaction touches the same logical row more than once
        // (update then delete), the row's rid at undo time differs from
        // the rid recorded earlier: undoing the delete re-inserts the row
        // wherever the heap has space. The remap tracks those moves so
        // older undo entries still resolve to the live copy.
        let mut remap: HashMap<(u32, Rid), Rid> = HashMap::new();
        let mut applied = 0u64;
        for entry in undo.iter().rev() {
            match entry {
                Undo::Insert { table, rid } => {
                    let rid = remap.remove(&(*table, *rid)).unwrap_or(*rid);
                    let info = ctx.catalog.table_by_id(TableId(*table))?;
                    let row = info.heap.get(rid)?;
                    let part = info.heap.partition_of(&row);
                    info.heap.delete(rid)?;
                    for ix in ctx.catalog.indexes_for(info.id) {
                        if let Some(k) = row.get(ix.column).as_int() {
                            ix.delete(part, k, rid)?;
                        }
                    }
                }
                Undo::Delete { table, rid, before } => {
                    let info = ctx.catalog.table_by_id(TableId(*table))?;
                    let row = Tuple::decode(before)?;
                    // Re-insert the before-image, anchoring the new copy to
                    // the dead version at the old rid: the twin stays
                    // invisible (a concurrent snapshot scan may already
                    // have passed its page) and readers keep finding the
                    // row through the dead version until GC collapses the
                    // pair.
                    let old = *rid;
                    let versions = Arc::clone(&info.versions);
                    let (part, new_rid) =
                        info.heap.insert_routed_with(&row, |nr| versions.note_restore(old, nr))?;
                    for ix in ctx.catalog.indexes_for(info.id) {
                        if let Some(k) = row.get(ix.column).as_int() {
                            ix.insert(part, k, new_rid)?;
                        }
                    }
                    if new_rid != *rid {
                        remap.insert((*table, *rid), new_rid);
                    }
                }
            }
            applied += 1;
        }
        Ok(applied)
    }

    /// After undo, drop the aborted transaction's flip handles in every
    /// overlay it touched. The overlay entries themselves stay (see
    /// [`staged_storage::VersionStore::abort`]); GC reaps them.
    fn drop_version_pendings(&self, xid: u64, undo: &[Undo], ctx: &ExecContext) {
        for t in touched_tables(undo) {
            if let Ok(info) = ctx.catalog.table_by_id(TableId(t)) {
                info.versions.abort(xid);
            }
        }
    }
}

/// Unique table ids appearing in an undo log.
fn touched_tables(undo: &[Undo]) -> Vec<u32> {
    let mut tables: Vec<u32> = undo
        .iter()
        .map(|u| match u {
            Undo::Insert { table, .. } | Undo::Delete { table, .. } => *table,
        })
        .collect();
    tables.sort_unstable();
    tables.dedup();
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dml::{self, DmlLog};
    use staged_sql::ast::{BinOp, ColumnRef, Expr};
    use staged_storage::{BufferPool, Catalog, Column, DataType, MemDisk, Schema, Value};
    use std::sync::Arc;

    fn setup(parts: usize) -> (ExecContext, Arc<staged_storage::catalog::TableInfo>, Wal) {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 256);
        let catalog = Arc::new(Catalog::new(pool));
        let t = catalog
            .create_table_partitioned(
                "t",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
                parts,
                0,
            )
            .unwrap();
        catalog.create_index("t_id", "t", "id").unwrap();
        (ExecContext::new(catalog), t, Wal::in_memory())
    }

    fn rows(lo: i64, hi: i64) -> Vec<Tuple> {
        (lo..hi).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 10)])).collect()
    }

    fn content(t: &staged_storage::catalog::TableInfo) -> Vec<Vec<Vec<u8>>> {
        (0..t.heap.partitions())
            .map(|p| {
                let mut v: Vec<Vec<u8>> =
                    t.heap.scan_partition(p).map(|r| r.unwrap().1.encode()).collect();
                v.sort();
                v
            })
            .collect()
    }

    fn eq_pred(col: usize, v: i64) -> Option<Expr> {
        Some(Expr::binary(
            Expr::Column(ColumnRef { table: None, name: format!("#{col}"), index: Some(col) }),
            BinOp::Eq,
            Expr::int(v),
        ))
    }

    #[test]
    fn rollback_restores_heap_and_indexes_across_partition_counts() {
        for parts in [1usize, 2, 4] {
            let (ctx, t, wal) = setup(parts);
            let mgr = TxnManager::new();
            let base = mgr.begin(&wal).unwrap();
            dml::insert_rows(&ctx, &t, rows(0, 40), Some(&DmlLog::txn(&wal, base, &mgr))).unwrap();
            mgr.commit(base, &ctx, &wal).unwrap();
            let before = content(&t);

            let xid = mgr.begin(&wal).unwrap();
            let log = DmlLog::txn(&wal, xid, &mgr);
            dml::insert_rows(&ctx, &t, rows(100, 120), Some(&log)).unwrap();
            dml::delete_rows(&ctx, &t, &eq_pred(0, 7), Some(&log)).unwrap();
            dml::update_rows(&ctx, &t, &[(1, Expr::int(-1))], &eq_pred(0, 9), Some(&log)).unwrap();
            assert_ne!(content(&t), before, "txn must have visibly mutated the table");

            let undone = mgr.rollback(xid, &ctx, &wal).unwrap();
            assert!(undone >= 23, "insert 20 + delete 1 + update 2, got {undone}");
            assert_eq!(content(&t), before, "{parts}-partition rollback not byte-identical");
            // Index state restored too.
            let ix = ctx.catalog.index_on(t.id, 0).unwrap();
            assert_eq!(ix.search(7).unwrap().len(), 1, "deleted row's index entry restored");
            assert!(ix.search(100).unwrap().is_empty(), "inserted row's index entry removed");
            assert_eq!(mgr.locks().held_by(xid), 0);
            assert!(!mgr.is_active(xid));
        }
    }

    #[test]
    fn commit_releases_locks_and_forces_flush() {
        let (ctx, _t, wal) = setup(1);
        let mgr = TxnManager::new();
        let xid = mgr.begin(&wal).unwrap();
        assert!(mgr.locks().try_lock(xid, LockKey::new(0, 0), LockMode::Exclusive));
        mgr.commit(xid, &ctx, &wal).unwrap();
        assert_eq!(mgr.locks().held_by(xid), 0);
        assert!(!mgr.is_active(xid));
        assert!(wal.committed_xids().unwrap().contains(&xid));
        // Double-commit is a loud error, not corruption.
        assert!(matches!(mgr.commit(xid, &ctx, &wal), Err(EngineError::Txn(_))));
    }

    #[test]
    fn rollback_of_unknown_xid_errors() {
        let (ctx, _t, wal) = setup(1);
        let mgr = TxnManager::new();
        assert!(matches!(mgr.rollback(99, &ctx, &wal), Err(EngineError::Txn(_))));
    }

    #[test]
    fn record_undo_ignores_finished_xids() {
        let (ctx, _t, wal) = setup(1);
        let mgr = TxnManager::new();
        let xid = mgr.begin(&wal).unwrap();
        mgr.commit(xid, &ctx, &wal).unwrap();
        mgr.record_undo(
            xid,
            Undo::Insert { table: 0, rid: Rid::new(staged_storage::PageId(0), 0) },
        );
        assert_eq!(mgr.active_count(), 0);
    }
}
