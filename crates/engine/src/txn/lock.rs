//! The lock table behind the lock-manager stage.
//!
//! The paper's Figure 3 names the lock manager as a first-class stage of a
//! staged OLTP engine. This table is its data structure: strict two-phase
//! locking at *partition* granularity. A lock unit is one hash partition of
//! one table; a whole-table lock is simply the set of all its partition
//! locks, acquired in sorted order. Keeping the unit uniform avoids the
//! intention-lock lattice while still letting transactions that touch
//! disjoint partitions proceed in parallel.
//!
//! Deadlocks are resolved by timeout-abort: a request that cannot be
//! granted within its deadline returns [`LockError::Timeout`] and the
//! caller aborts the transaction, releasing everything it held.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One lockable unit: a hash partition of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockKey {
    /// Table id (`TableId.0`).
    pub table: u32,
    /// Partition index within the table.
    pub partition: u32,
}

impl LockKey {
    /// A key for one partition of a table.
    pub fn new(table: u32, partition: u32) -> Self {
        Self { table, partition }
    }
}

/// Lock modes. Shared locks are compatible with each other; exclusive
/// locks are compatible with nothing (except locks of the same owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Read lock.
    Shared,
    /// Write lock.
    Exclusive,
}

/// Why a lock request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The deadline passed while waiting (presumed deadlock).
    Timeout(LockKey),
}

#[derive(Default)]
struct LockState {
    /// Current owners; all `Shared`, or exactly one `Exclusive`.
    owners: Vec<(u64, LockMode)>,
}

impl LockState {
    fn grantable(&self, xid: u64, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                self.owners.iter().all(|(o, m)| *o == xid || *m == LockMode::Shared)
            }
            LockMode::Exclusive => self.owners.iter().all(|(o, _)| *o == xid),
        }
    }

    fn grant(&mut self, xid: u64, mode: LockMode) {
        match self.owners.iter_mut().find(|(o, _)| *o == xid) {
            Some(entry) => {
                // Re-acquisition; upgrade S→X in place when requested.
                if mode == LockMode::Exclusive {
                    entry.1 = LockMode::Exclusive;
                }
            }
            None => self.owners.push((xid, mode)),
        }
    }
}

#[derive(Default)]
struct TableInnerState {
    locks: HashMap<LockKey, LockState>,
    /// Reverse map: which keys each transaction holds (for release_all).
    held: HashMap<u64, Vec<LockKey>>,
}

/// The lock table: a map of partition locks plus a condvar the waiters
/// park on. One condvar for the whole table is coarse but matches the
/// scale of the stage (lock hold times are statement-sized).
#[derive(Default)]
pub struct LockTable {
    inner: Mutex<TableInnerState>,
    released: Condvar,
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to acquire `key` in `mode` for `xid` without waiting. Returns
    /// `true` on grant (idempotent for locks already held).
    pub fn try_lock(&self, xid: u64, key: LockKey, mode: LockMode) -> bool {
        let mut inner = self.inner.lock();
        let state = inner.locks.entry(key).or_default();
        if !state.grantable(xid, mode) {
            return false;
        }
        let newly = !state.owners.iter().any(|(o, _)| *o == xid);
        state.grant(xid, mode);
        if newly {
            inner.held.entry(xid).or_default().push(key);
        }
        true
    }

    /// Acquire `key` in `mode` for `xid`, waiting up to the `deadline`.
    /// This is the *sequential* acquisition path used by the Volcano
    /// engine; the staged lock stage uses [`try_lock`](Self::try_lock) and
    /// requeues its packet instead of blocking a stage worker.
    pub fn lock_until(
        &self,
        xid: u64,
        key: LockKey,
        mode: LockMode,
        deadline: Instant,
    ) -> Result<(), LockError> {
        let mut inner = self.inner.lock();
        loop {
            let state = inner.locks.entry(key).or_default();
            if state.grantable(xid, mode) {
                let newly = !state.owners.iter().any(|(o, _)| *o == xid);
                state.grant(xid, mode);
                if newly {
                    inner.held.entry(xid).or_default().push(key);
                }
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(LockError::Timeout(key));
            }
            let res = self.released.wait_for(&mut inner, deadline - now);
            if res.timed_out() {
                // Fall through: one last grantability check above, then the
                // deadline test fails the request.
            }
        }
    }

    /// Acquire a set of keys in deterministic (sorted) order with one
    /// overall timeout. Partial acquisitions are *kept* on timeout — the
    /// caller is aborting the transaction anyway and `release_all` cleans
    /// up; keeping them is what strict 2PL requires on success paths.
    pub fn lock_all(
        &self,
        xid: u64,
        keys: &mut Vec<LockKey>,
        mode: LockMode,
        timeout: Duration,
    ) -> Result<(), LockError> {
        keys.sort_unstable();
        keys.dedup();
        let deadline = Instant::now() + timeout;
        for key in keys.iter() {
            self.lock_until(xid, *key, mode, deadline)?;
        }
        Ok(())
    }

    /// Release every lock `xid` holds and wake all waiters. Idempotent.
    pub fn release_all(&self, xid: u64) {
        let mut inner = self.inner.lock();
        if let Some(keys) = inner.held.remove(&xid) {
            for key in keys {
                if let Some(state) = inner.locks.get_mut(&key) {
                    state.owners.retain(|(o, _)| *o != xid);
                    if state.owners.is_empty() {
                        inner.locks.remove(&key);
                    }
                }
            }
        }
        drop(inner);
        self.released.notify_all();
    }

    /// Number of locks currently held by `xid`.
    pub fn held_by(&self, xid: u64) -> usize {
        self.inner.lock().held.get(&xid).map_or(0, Vec::len)
    }

    /// Total number of granted locks (diagnostics).
    pub fn total_held(&self) -> usize {
        self.inner.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(t: u32, p: u32) -> LockKey {
        LockKey::new(t, p)
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let lt = LockTable::new();
        assert!(lt.try_lock(1, k(0, 0), LockMode::Shared));
        assert!(lt.try_lock(2, k(0, 0), LockMode::Shared));
        assert!(!lt.try_lock(3, k(0, 0), LockMode::Exclusive));
        lt.release_all(1);
        assert!(!lt.try_lock(3, k(0, 0), LockMode::Exclusive), "xid 2 still holds S");
        lt.release_all(2);
        assert!(lt.try_lock(3, k(0, 0), LockMode::Exclusive));
        assert!(!lt.try_lock(1, k(0, 0), LockMode::Shared), "X blocks S");
    }

    #[test]
    fn reacquisition_and_upgrade_are_idempotent() {
        let lt = LockTable::new();
        assert!(lt.try_lock(7, k(1, 0), LockMode::Shared));
        assert!(lt.try_lock(7, k(1, 0), LockMode::Shared));
        assert_eq!(lt.held_by(7), 1);
        // Sole owner may upgrade in place.
        assert!(lt.try_lock(7, k(1, 0), LockMode::Exclusive));
        assert!(!lt.try_lock(8, k(1, 0), LockMode::Shared));
        // Upgrade with another reader present must wait.
        assert!(lt.try_lock(7, k(1, 1), LockMode::Shared));
        assert!(lt.try_lock(8, k(1, 1), LockMode::Shared));
        assert!(!lt.try_lock(7, k(1, 1), LockMode::Exclusive));
    }

    #[test]
    fn disjoint_partitions_do_not_conflict() {
        let lt = LockTable::new();
        assert!(lt.try_lock(1, k(0, 0), LockMode::Exclusive));
        assert!(lt.try_lock(2, k(0, 1), LockMode::Exclusive));
        assert!(lt.try_lock(3, k(1, 0), LockMode::Exclusive));
        assert_eq!(lt.total_held(), 3);
    }

    #[test]
    fn lock_until_times_out_when_held_elsewhere() {
        let lt = LockTable::new();
        assert!(lt.try_lock(1, k(0, 0), LockMode::Exclusive));
        let start = Instant::now();
        let res =
            lt.lock_until(2, k(0, 0), LockMode::Shared, Instant::now() + Duration::from_millis(30));
        assert_eq!(res, Err(LockError::Timeout(k(0, 0))));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waiter_is_woken_by_release() {
        let lt = std::sync::Arc::new(LockTable::new());
        assert!(lt.try_lock(1, k(0, 0), LockMode::Exclusive));
        let lt2 = std::sync::Arc::clone(&lt);
        let waiter = std::thread::spawn(move || {
            lt2.lock_until(2, k(0, 0), LockMode::Exclusive, Instant::now() + Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        lt.release_all(1);
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert_eq!(lt.held_by(2), 1);
    }

    #[test]
    fn lock_all_sorts_and_dedups() {
        let lt = LockTable::new();
        let mut keys = vec![k(0, 3), k(0, 1), k(0, 3), k(0, 0)];
        lt.lock_all(5, &mut keys, LockMode::Exclusive, Duration::from_millis(50)).unwrap();
        assert_eq!(keys, vec![k(0, 0), k(0, 1), k(0, 3)]);
        assert_eq!(lt.held_by(5), 3);
        lt.release_all(5);
        assert_eq!(lt.held_by(5), 0);
        assert_eq!(lt.total_held(), 0);
    }
}
